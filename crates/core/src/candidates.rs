//! Candidate-host enumeration (`GetCandidates`, Alg. 1 line 5) and
//! utility scoring (`GetUsage` + `GetHeuristic`, lines 7–9).

use ostro_datacenter::HostId;
use ostro_model::NodeId;

use crate::heuristic::lower_bound_mbps;
use crate::placement::SearchStats;
use crate::search::{Ctx, Path, NO_GROUP};

/// A candidate host together with the utilities the objective needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct ScoredCandidate {
    pub host: HostId,
    /// Hop-weighted Mbps added by this node's edges to placed neighbors.
    pub added_ubw: u64,
    /// Accumulated utility u\* of the child path.
    pub u_star: f64,
    /// u\* plus the heuristic lower bound — the A\* f-value.
    pub u_total: f64,
}

/// All hosts passing the capacity, diversity, and symmetry screens for
/// placing `node` next on `path` (per-edge bandwidth feasibility is
/// checked during scoring, and definitively at materialization).
pub(crate) fn feasible_hosts(ctx: &Ctx<'_>, path: &Path<'_>, node: NodeId) -> Vec<HostId> {
    feasible_hosts_counted(ctx, path, node).0
}

/// Like [`feasible_hosts`] but also reports how many otherwise-valid
/// hosts the §III-B3 symmetry floor excluded.
pub(crate) fn feasible_hosts_counted(
    ctx: &Ctx<'_>,
    path: &Path<'_>,
    node: NodeId,
) -> (Vec<HostId>, u64) {
    if let Some(pinned) = ctx.pinned[node.index()] {
        let hosts = if admits(ctx, path, node, pinned) { vec![pinned] } else { Vec::new() };
        return (hosts, 0);
    }
    let min_host = symmetry_floor(ctx, path, node);
    let mut skipped = 0;
    let hosts = ctx
        .infra
        .hosts()
        .iter()
        .map(|h| h.id())
        .filter(|&h| {
            if !admits(ctx, path, node, h) {
                return false;
            }
            if (h.index() as u32) < min_host {
                skipped += 1;
                return false;
            }
            true
        })
        .collect();
    (hosts, skipped)
}

/// Capacity, NIC-headroom, and diversity screen for one (node, host)
/// pair.
fn admits(ctx: &Ctx<'_>, path: &Path<'_>, node: NodeId, host: HostId) -> bool {
    let req = ctx.topo.node(node).requirements();
    if !req.fits_within(&path.overlay.available(host)) {
        return false;
    }
    // Bandwidth admission control: the host's NIC must be able to
    // carry (a) every incident edge of this node that is not already
    // co-located here, now or in the future, plus (b) the bandwidth
    // already promised to residents' still-unplaced edges. Without
    // this screen a one-shot search can park nodes on a host whose
    // NIC then saturates, stranding residents' future edges — a
    // dead-end the paper's testbed never triggers but Table IV's
    // 100 Mbps-headroom hosts do.
    let mut off_host_mbps = 0u64;
    let mut promised_to_node_mbps = 0u64;
    for &(neighbor, bw) in ctx.topo.neighbors(node) {
        if path.assignment[neighbor.index()] == Some(host) {
            // A co-located resident's promise to us becomes void.
            promised_to_node_mbps += bw.as_mbps();
        } else {
            off_host_mbps += bw.as_mbps();
        }
    }
    let promised = path.promised_nic(host).saturating_sub(promised_to_node_mbps);
    let nic_avail = path.overlay.link_available(ostro_datacenter::LinkRef::HostNic(host)).as_mbps();
    if off_host_mbps + promised > nic_avail {
        return false;
    }
    // Latency bounds: a bounded link to an already-placed neighbor
    // forces this node into the same infrastructure unit.
    for &(neighbor, proximity) in ctx.topo.proximity_bounds(node) {
        if let Some(neighbor_host) = path.assignment[neighbor.index()] {
            if !ctx.infra.within(host, neighbor_host, proximity) {
                return false;
            }
        }
    }
    for &zone_id in ctx.topo.zones_of(node) {
        let zone = ctx.topo.zone(zone_id);
        for &member in zone.members() {
            if member == node {
                continue;
            }
            if let Some(member_host) = path.assignment[member.index()] {
                if !ctx.infra.satisfies_diversity(host, member_host, zone.level()) {
                    return false;
                }
            }
        }
    }
    true
}

/// §III-B3 symmetry reduction: interchangeable zone siblings must be
/// assigned hosts in strictly increasing order, so `node` may only go
/// to hosts above the last-placed sibling's.
fn symmetry_floor(ctx: &Ctx<'_>, path: &Path<'_>, node: NodeId) -> u32 {
    let group = ctx.sym_group[node.index()];
    if group == NO_GROUP {
        return 0;
    }
    let mut floor = 0;
    for other in ctx.topo.nodes() {
        let oid = other.id();
        if oid != node && ctx.sym_group[oid.index()] == group {
            if let Some(h) = path.assignment[oid.index()] {
                floor = floor.max(h.index() as u32 + 1);
            }
        }
    }
    floor
}

/// Scores every candidate: child accumulated utility plus heuristic
/// lower bound. Candidates whose per-edge bandwidth probe fails are
/// dropped. Runs on the context's persistent worker pool when the
/// request allows and the candidate set is large (the paper's "EG
/// computes the utility in parallel").
///
/// The output order — and therefore every downstream decision — is
/// identical at any thread count: chunk results are concatenated in
/// chunk order, which reproduces the serial host order exactly.
pub(crate) fn score_candidates(
    ctx: &Ctx<'_>,
    path: &Path<'_>,
    node: NodeId,
    hosts: &[HostId],
    stats: &mut SearchStats,
) -> Vec<ScoredCandidate> {
    const PARALLEL_THRESHOLD: usize = 96;
    stats.heuristic_evals += hosts.len() as u64;
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    if !ctx.parallel || hosts.len() < PARALLEL_THRESHOLD || threads < 2 {
        return hosts.iter().filter_map(|&h| score_one(ctx, path, node, h)).collect();
    }
    let pool = ctx.pool.get_or_init(|| crate::pool::ScoringPool::new(threads.min(16)));
    let chunk_size = hosts.len().div_ceil(pool.threads());
    let chunks: Vec<&[HostId]> = hosts.chunks(chunk_size).collect();
    let results: Vec<std::sync::Mutex<Vec<ScoredCandidate>>> =
        chunks.iter().map(|_| std::sync::Mutex::new(Vec::new())).collect();
    pool.run(chunks.len(), &|i| {
        let scored: Vec<ScoredCandidate> =
            chunks[i].iter().filter_map(|&h| score_one(ctx, path, node, h)).collect();
        *results[i].lock().unwrap() = scored;
    });
    results.into_iter().flat_map(|slot| slot.into_inner().unwrap()).collect()
}

fn score_one(
    ctx: &Ctx<'_>,
    path: &Path<'_>,
    node: NodeId,
    host: HostId,
) -> Option<ScoredCandidate> {
    let added_ubw = path.probe(ctx, node, host)?;
    let new_hosts = path.new_hosts() + usize::from(!path.overlay.is_active(host));
    let ubw_child = path.ubw_mbps + added_ubw;
    let u_star = ctx.objective(ubw_child, new_hosts);
    let bound = if ctx.use_estimate { lower_bound_mbps(ctx, path, node, host) } else { 0 };
    let u_total = ctx.objective(ubw_child + bound, new_hosts);
    Some(ScoredCandidate { host, added_ubw, u_star, u_total })
}

/// `GetBest` (Alg. 1 line 11): the candidate minimizing the estimated
/// total utility, tie-broken toward already-active hosts and then the
/// lowest host index (deterministic).
pub(crate) fn pick_best(path: &Path<'_>, scored: &[ScoredCandidate]) -> Option<ScoredCandidate> {
    scored
        .iter()
        .min_by(|a, b| {
            a.u_total
                .total_cmp(&b.u_total)
                .then_with(|| {
                    let a_active = path.overlay.is_active(a.host);
                    let b_active = path.overlay.is_active(b.host);
                    b_active.cmp(&a_active)
                })
                .then_with(|| a.host.cmp(&b.host))
        })
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::PlacementRequest;
    use ostro_datacenter::{CapacityState, Infrastructure, InfrastructureBuilder};
    use ostro_model::{ApplicationTopology, Bandwidth, DiversityLevel, Resources, TopologyBuilder};

    fn infra() -> Infrastructure {
        InfrastructureBuilder::flat(
            "dc",
            2,
            4,
            Resources::new(8, 16_384, 500),
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap()
    }

    fn topo_pair() -> ApplicationTopology {
        let mut b = TopologyBuilder::new("t");
        let a = b.vm("a", 4, 8_192).unwrap();
        let c = b.vm("c", 4, 8_192).unwrap();
        b.link(a, c, Bandwidth::from_mbps(100)).unwrap();
        b.diversity_zone("z", DiversityLevel::Rack, &[a, c]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn capacity_screen_excludes_full_hosts() {
        let topo = topo_pair();
        let infra = infra();
        let mut base = CapacityState::new(&infra);
        base.reserve_node(HostId::from_index(0), Resources::new(8, 16_384, 500)).unwrap();
        let req = PlacementRequest { zone_symmetry: false, ..PlacementRequest::default() };
        let ctx = Ctx::new(&topo, &infra, &base, &req, vec![None; 2]).unwrap();
        let path = Path::empty(&ctx);
        let node = ctx.order[0];
        let hosts = feasible_hosts(&ctx, &path, node);
        assert_eq!(hosts.len(), 7);
        assert!(!hosts.contains(&HostId::from_index(0)));
    }

    #[test]
    fn diversity_screen_uses_zone_level() {
        let topo = topo_pair();
        let infra = infra();
        let base = CapacityState::new(&infra);
        let req = PlacementRequest { zone_symmetry: false, ..PlacementRequest::default() };
        let ctx = Ctx::new(&topo, &infra, &base, &req, vec![None; 2]).unwrap();
        let path = Path::empty(&ctx);
        let first = ctx.order[0];
        let second = ctx.order[1];
        let child = path.place(&ctx, first, HostId::from_index(1)).unwrap();
        let hosts = feasible_hosts(&ctx, &child, second);
        // Rack 0 is hosts 0..4; the rack-level zone forbids all of them.
        assert_eq!(hosts.len(), 4);
        assert!(hosts.iter().all(|h| h.index() >= 4));
    }

    #[test]
    fn pinned_node_gets_exactly_its_host() {
        let topo = topo_pair();
        let infra = infra();
        let base = CapacityState::new(&infra);
        let req = PlacementRequest { zone_symmetry: false, ..PlacementRequest::default() };
        let a = topo.node_by_name("a").unwrap().id();
        let mut pinned = vec![None; 2];
        pinned[a.index()] = Some(HostId::from_index(5));
        let ctx = Ctx::new(&topo, &infra, &base, &req, pinned).unwrap();
        let path = Path::empty(&ctx);
        assert_eq!(feasible_hosts(&ctx, &path, a), vec![HostId::from_index(5)]);
    }

    #[test]
    fn symmetry_floor_orders_sibling_hosts() {
        let mut b = TopologyBuilder::new("t");
        let hub = b.vm("hub", 1, 1_024).unwrap();
        let w1 = b.vm("w1", 1, 1_024).unwrap();
        let w2 = b.vm("w2", 1, 1_024).unwrap();
        b.link(hub, w1, Bandwidth::from_mbps(10)).unwrap();
        b.link(hub, w2, Bandwidth::from_mbps(10)).unwrap();
        b.diversity_zone("z", DiversityLevel::Host, &[w1, w2]).unwrap();
        let topo = b.build().unwrap();
        let infra = infra();
        let base = CapacityState::new(&infra);
        let req = PlacementRequest::default();
        let ctx = Ctx::new(&topo, &infra, &base, &req, vec![None; 3]).unwrap();
        assert_ne!(ctx.sym_group[w1.index()], NO_GROUP);

        let mut path = Path::empty(&ctx);
        // Place nodes until w1 is placed (order may interleave hub).
        while let Some(n) = path.next_node(&ctx) {
            if n == w2 {
                break;
            }
            let host = if n == w1 { HostId::from_index(3) } else { HostId::from_index(0) };
            path = path.place(&ctx, n, host).unwrap();
        }
        let hosts = feasible_hosts(&ctx, &path, w2);
        assert!(!hosts.is_empty());
        assert!(hosts.iter().all(|h| h.index() > 3));
    }

    #[test]
    fn scoring_prefers_colocation_for_bandwidth_dominant_weights() {
        let topo = topo_no_zone();
        let infra = infra();
        let base = CapacityState::new(&infra);
        let req = PlacementRequest {
            weights: crate::objective::ObjectiveWeights::BANDWIDTH_DOMINANT,
            zone_symmetry: false,
            parallel: false,
            ..PlacementRequest::default()
        };
        let ctx = Ctx::new(&topo, &infra, &base, &req, vec![None; 2]).unwrap();
        let path = Path::empty(&ctx);
        let first = ctx.order[0];
        let child = path.place(&ctx, first, HostId::from_index(0)).unwrap();
        let second = child.next_node(&ctx).unwrap();
        let hosts = feasible_hosts(&ctx, &child, second);
        let mut stats = SearchStats::default();
        let scored = score_candidates(&ctx, &child, second, &hosts, &mut stats);
        let best = pick_best(&child, &scored).unwrap();
        assert_eq!(best.host, HostId::from_index(0));
        assert_eq!(best.added_ubw, 0);
        assert_eq!(stats.heuristic_evals, hosts.len() as u64);
    }

    fn topo_no_zone() -> ApplicationTopology {
        let mut b = TopologyBuilder::new("t");
        let a = b.vm("a", 2, 2_048).unwrap();
        let c = b.vm("c", 2, 2_048).unwrap();
        b.link(a, c, Bandwidth::from_mbps(100)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn parallel_and_serial_scoring_agree() {
        let topo = topo_no_zone();
        let infra = infra();
        let base = CapacityState::new(&infra);
        let mk = |parallel| PlacementRequest {
            parallel,
            zone_symmetry: false,
            ..PlacementRequest::default()
        };
        let req_par = mk(true);
        let req_ser = mk(false);
        let ctx_p = Ctx::new(&topo, &infra, &base, &req_par, vec![None; 2]).unwrap();
        let ctx_s = Ctx::new(&topo, &infra, &base, &req_ser, vec![None; 2]).unwrap();
        let path_p = Path::empty(&ctx_p);
        let path_s = Path::empty(&ctx_s);
        let node = ctx_p.order[0];
        let hosts = feasible_hosts(&ctx_p, &path_p, node);
        let mut s1 = SearchStats::default();
        let mut s2 = SearchStats::default();
        // Force the parallel path despite the small candidate count by
        // repeating the host list beyond the threshold.
        let many: Vec<HostId> = hosts.iter().cycle().take(200).copied().collect();
        let a = score_candidates(&ctx_p, &path_p, node, &many, &mut s1);
        let b = score_candidates(&ctx_s, &path_s, node, &many, &mut s2);
        assert_eq!(a, b);
    }
}
