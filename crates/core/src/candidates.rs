//! Candidate-host enumeration (`GetCandidates`, Alg. 1 line 5) and
//! utility scoring (`GetUsage` + `GetHeuristic`, lines 7–9).

use ostro_datacenter::{FxHashMap, FxHashSet, HostId};
use ostro_model::NodeId;

use crate::heuristic::lower_bound_mbps;
use crate::placement::SearchStats;
use crate::pool::lock_unpoisoned;
use crate::search::{mix64, Ctx, Path, NO_GROUP};

/// A candidate host together with the utilities the objective needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct ScoredCandidate {
    pub host: HostId,
    /// Hop-weighted Mbps added by this node's edges to placed neighbors.
    pub added_ubw: u64,
    /// Accumulated utility u\* of the child path.
    pub u_star: f64,
    /// u\* plus the heuristic lower bound — the A\* f-value.
    pub u_total: f64,
}

/// All hosts passing the capacity, diversity, and symmetry screens for
/// placing `node` next on `path` (per-edge bandwidth feasibility is
/// checked during scoring, and definitively at materialization).
pub(crate) fn feasible_hosts(ctx: &Ctx<'_>, path: &Path<'_>, node: NodeId) -> Vec<HostId> {
    feasible_hosts_counted(ctx, path, node).0
}

/// Like [`feasible_hosts`] but also reports how many otherwise-valid
/// hosts the §III-B3 symmetry floor excluded.
pub(crate) fn feasible_hosts_counted(
    ctx: &Ctx<'_>,
    path: &Path<'_>,
    node: NodeId,
) -> (Vec<HostId>, u64) {
    let req = ctx.topo.node(node).requirements();
    if let Some(pinned) = ctx.pinned[node.index()] {
        let hosts = if admits(ctx, path, node, req, pinned) { vec![pinned] } else { Vec::new() };
        return (hosts, 0);
    }
    let min_host = symmetry_floor(ctx, path, node);
    // Session mode: the per-host summaries are a dense array mirroring
    // the base state, so a host that cannot fit `req` even when fully
    // untouched is rejected from a cache-friendly linear scan before
    // the overlay's hash probes run. The screen is a necessary
    // condition only (overlay availability never exceeds base), so it
    // drops no host `admits` would keep.
    let summaries = ctx.session.map(|shared| shared.summaries.as_slice());
    let mut skipped = 0;
    let hosts = ctx
        .infra
        .hosts()
        .iter()
        .map(|h| h.id())
        .filter(|&h| {
            if let Some(sums) = summaries {
                if !req.fits_within(&sums[h.index()].free) {
                    return false;
                }
            }
            if !admits(ctx, path, node, req, h) {
                return false;
            }
            if (h.index() as u32) < min_host {
                skipped += 1;
                return false;
            }
            true
        })
        .collect();
    (hosts, skipped)
}

/// Capacity, NIC-headroom, and diversity screen for one (node, host)
/// pair. `req` is `node`'s requirements, hoisted by the caller.
fn admits(
    ctx: &Ctx<'_>,
    path: &Path<'_>,
    node: NodeId,
    req: ostro_model::Resources,
    host: HostId,
) -> bool {
    if !req.fits_within(&path.overlay.available(host)) {
        return false;
    }
    // Bandwidth admission control: the host's NIC must be able to
    // carry (a) every incident edge of this node that is not already
    // co-located here, now or in the future, plus (b) the bandwidth
    // already promised to residents' still-unplaced edges. Without
    // this screen a one-shot search can park nodes on a host whose
    // NIC then saturates, stranding residents' future edges — a
    // dead-end the paper's testbed never triggers but Table IV's
    // 100 Mbps-headroom hosts do.
    let mut off_host_mbps = 0u64;
    let mut promised_to_node_mbps = 0u64;
    for &(neighbor, bw) in ctx.topo.neighbors(node) {
        if path.assignment[neighbor.index()] == Some(host) {
            // A co-located resident's promise to us becomes void.
            promised_to_node_mbps += bw.as_mbps();
        } else {
            off_host_mbps += bw.as_mbps();
        }
    }
    let promised = path.promised_nic(host).saturating_sub(promised_to_node_mbps);
    let nic_avail = path.overlay.link_available(ostro_datacenter::LinkRef::HostNic(host)).as_mbps();
    if off_host_mbps + promised > nic_avail {
        return false;
    }
    // Latency bounds: a bounded link to an already-placed neighbor
    // forces this node into the same infrastructure unit.
    for &(neighbor, proximity) in ctx.topo.proximity_bounds(node) {
        if let Some(neighbor_host) = path.assignment[neighbor.index()] {
            if !ctx.infra.within(host, neighbor_host, proximity) {
                return false;
            }
        }
    }
    for &zone_id in ctx.topo.zones_of(node) {
        let zone = ctx.topo.zone(zone_id);
        for &member in zone.members() {
            if member == node {
                continue;
            }
            if let Some(member_host) = path.assignment[member.index()] {
                if !ctx.infra.satisfies_diversity(host, member_host, zone.level()) {
                    return false;
                }
            }
        }
    }
    true
}

/// §III-B3 symmetry reduction: interchangeable zone siblings must be
/// assigned hosts in strictly increasing order, so `node` may only go
/// to hosts above the last-placed sibling's.
fn symmetry_floor(ctx: &Ctx<'_>, path: &Path<'_>, node: NodeId) -> u32 {
    let group = ctx.sym_group[node.index()];
    if group == NO_GROUP {
        return 0;
    }
    let mut floor = 0;
    for other in ctx.topo.nodes() {
        let oid = other.id();
        if oid != node && ctx.sym_group[oid.index()] == group {
            if let Some(h) = path.assignment[oid.index()] {
                floor = floor.max(h.index() as u32 + 1);
            }
        }
    }
    floor
}

/// Scores every candidate: child accumulated utility plus heuristic
/// lower bound. Candidates whose per-edge bandwidth probe fails are
/// dropped. Runs on the context's persistent worker pool when the
/// request allows and the candidate set is large (the paper's "EG
/// computes the utility in parallel").
///
/// With memoization on (the default), heuristic bounds are resolved
/// first through the per-search cache — hosts sharing an overlay group
/// signature resolve to one `lower_bound_mbps` call — and the
/// remaining per-host work (probe + objective) is cheap enough that
/// chunked dispatch only engages for large candidate sets.
///
/// The output order — and therefore every downstream decision — is
/// identical at any thread count and any cache state: chunk results
/// are concatenated in chunk order (reproducing the serial host order
/// exactly), and a cache hit returns the bit-exact bound a cold
/// evaluation would.
pub(crate) fn score_candidates(
    ctx: &Ctx<'_>,
    path: &Path<'_>,
    node: NodeId,
    hosts: &[HostId],
    stats: &mut SearchStats,
) -> Vec<ScoredCandidate> {
    stats.heuristic_evals += hosts.len() as u64;
    let bounds = resolve_bounds(ctx, path, node, hosts, stats);
    let bound_of = |i: usize| bounds.as_ref().map(|b| b[i]);
    let threads = ctx.score_threads;
    // Adaptive serial threshold: dispatch pays off only once every
    // participant can claim a few chunks of real work, so the floor
    // scales with the pool size instead of a fixed constant.
    let serial_threshold = (32 * threads).max(96);
    if !ctx.parallel || threads < 2 || hosts.len() < serial_threshold {
        return hosts
            .iter()
            .enumerate()
            .filter_map(|(i, &h)| score_one(ctx, path, node, h, bound_of(i)))
            .collect();
    }
    let pool = ctx.scoring_pool();
    // Contiguous chunks claimed off the pool's shared cursor: four per
    // participant balances steal granularity against claim overhead,
    // capped so one chunk's working set stays within the configured
    // cache budget (`chunk_bytes`). Chunk geometry never changes the
    // output — results are concatenated in chunk order.
    let flat = hosts.len().div_ceil(pool.threads() * 4);
    let chunk_size = flat.min(ctx.chunk_cap).max(1);
    let chunk_count = hosts.len().div_ceil(chunk_size);
    pool.run_scored(chunk_count, &|ci, buf| {
        let offset = ci * chunk_size;
        let chunk = &hosts[offset..hosts.len().min(offset + chunk_size)];
        buf.extend(
            chunk
                .iter()
                .enumerate()
                .filter_map(|(j, &h)| score_one(ctx, path, node, h, bound_of(offset + j))),
        );
    })
}

/// Resolves the heuristic lower bound for every candidate through the
/// per-search memo cache, or returns `None` when memoization is off
/// (bounds are then computed inline by [`score_one`], inside the
/// parallel region).
///
/// Cache misses — one per *distinct* bound key, not per host — are
/// computed through the pool when there are enough of them, each miss
/// being a full §III-A2 evaluation and therefore coarse enough to
/// claim individually.
fn resolve_bounds(
    ctx: &Ctx<'_>,
    path: &Path<'_>,
    node: NodeId,
    hosts: &[HostId],
    stats: &mut SearchStats,
) -> Option<Vec<u64>> {
    if !ctx.memoize || !ctx.use_estimate {
        return None;
    }
    if let Some(shared) = ctx.session {
        return Some(resolve_bounds_session(ctx, shared, path, node, hosts, stats));
    }
    let keys: Vec<(u32, u64)> = hosts
        .iter()
        .map(|&h| Ctx::bound_key(node, path.signature, path.overlay.host_group_signature(h)))
        .collect();
    // A poisoned cache only ever holds fully-inserted entries; keep
    // using it rather than aborting the whole search.
    let mut cache = ctx.bound_cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut seen: FxHashSet<(u32, u64)> = FxHashSet::default();
    // One representative host index per unresolved key.
    let misses: Vec<(usize, (u32, u64))> = keys
        .iter()
        .enumerate()
        .filter(|&(_, key)| !cache.contains_key(key) && seen.insert(*key))
        .map(|(i, &key)| (i, key))
        .collect();
    const PARALLEL_MISS_THRESHOLD: usize = 24;
    if ctx.parallel && ctx.score_threads >= 2 && misses.len() >= PARALLEL_MISS_THRESHOLD {
        use std::sync::atomic::{AtomicU64, Ordering};
        let pool = ctx.scoring_pool();
        let computed: Vec<AtomicU64> = misses.iter().map(|_| AtomicU64::new(0)).collect();
        pool.run(misses.len(), &|k| {
            let (i, _) = misses[k];
            computed[k].store(lower_bound_mbps(ctx, path, node, hosts[i]), Ordering::Relaxed);
        });
        for ((_, key), bound) in misses.iter().zip(&computed) {
            cache.insert(*key, bound.load(Ordering::Relaxed));
        }
    } else {
        for &(i, key) in &misses {
            cache.insert(key, lower_bound_mbps(ctx, path, node, hosts[i]));
        }
    }
    stats.bound_cache_misses += misses.len() as u64;
    stats.bound_cache_hits += (hosts.len() - misses.len()) as u64;
    Some(keys.iter().map(|key| cache[key]).collect())
}

/// Salt distinguishing "the candidate is slot `i` of the placement"
/// from "the candidate is an unused host with availability signature
/// `x`" in a session cache key.
const SLOT_SALT: u64 = 0xC01D_CAFE_F00D_5EED;

/// Session-mode bound resolution: the same values [`resolve_bounds`]
/// produces, under keys that survive across requests.
///
/// The per-request cache keys placements by `path.signature` and hosts
/// by overlay epoch — both meaningless outside one search. The session
/// key re-expresses the *same inputs* purely by value, which is exactly
/// the set [`lower_bound_mbps`] reads (see [`session_prefix`]): a
/// stream of structurally identical tenants therefore resolves each
/// bound once, ever, instead of once per request. Warm hits are
/// bit-exact by construction — equal key ⇒ equal inputs ⇒ the same
/// deterministic computation.
fn resolve_bounds_session(
    ctx: &Ctx<'_>,
    shared: &crate::session::SessionShared,
    path: &Path<'_>,
    node: NodeId,
    hosts: &[HostId],
    stats: &mut SearchStats,
) -> Vec<u64> {
    let (prefix, slots) = session_prefix(ctx, path);
    let node_idx = node.index() as u32;
    let keys: Vec<(u32, u64)> = hosts
        .iter()
        .map(|&h| {
            // A candidate already hosting part of this placement is
            // identified by its slot position (its availability is in
            // the prefix); an untouched candidate purely by value, so
            // every host of an availability group shares one entry.
            let cand = match slots.iter().position(|&s| s == h) {
                Some(slot) => mix64(SLOT_SALT ^ (slot as u64 + 1)),
                None => shared.summaries[h.index()].avail_sig,
            };
            (node_idx, mix64(prefix ^ cand))
        })
        .collect();
    let mut cache = lock_unpoisoned(&shared.cache);
    let mut resolved: FxHashMap<(u32, u64), u64> = FxHashMap::default();
    let mut seen: FxHashSet<(u32, u64)> = FxHashSet::default();
    let mut warm_hits = 0u64;
    // One representative host index per unresolved key.
    let mut misses: Vec<(usize, (u32, u64))> = Vec::new();
    for (i, &key) in keys.iter().enumerate() {
        match cache.get(key) {
            Some((bound, warm)) => {
                // Promotion keeps the writing generation, so every
                // occurrence of a cross-request key counts warm.
                warm_hits += u64::from(warm);
                resolved.insert(key, bound);
            }
            None => {
                if seen.insert(key) {
                    misses.push((i, key));
                }
            }
        }
    }
    const PARALLEL_MISS_THRESHOLD: usize = 24;
    if ctx.parallel && ctx.score_threads >= 2 && misses.len() >= PARALLEL_MISS_THRESHOLD {
        use std::sync::atomic::{AtomicU64, Ordering};
        let pool = ctx.scoring_pool();
        let computed: Vec<AtomicU64> = misses.iter().map(|_| AtomicU64::new(0)).collect();
        pool.run(misses.len(), &|k| {
            let (i, _) = misses[k];
            computed[k].store(lower_bound_mbps(ctx, path, node, hosts[i]), Ordering::Relaxed);
        });
        for (&(_, key), bound) in misses.iter().zip(&computed) {
            let bound = bound.load(Ordering::Relaxed);
            cache.insert(key, bound);
            resolved.insert(key, bound);
        }
    } else {
        for &(i, key) in &misses {
            let bound = lower_bound_mbps(ctx, path, node, hosts[i]);
            cache.insert(key, bound);
            resolved.insert(key, bound);
        }
    }
    // Per-call accounting matches the per-request cache (hits + misses
    // = hosts scored); warm hits additionally count as session hits.
    stats.bound_cache_misses += misses.len() as u64;
    stats.bound_cache_hits += (hosts.len() - misses.len()) as u64;
    stats.session_cache_misses += misses.len() as u64;
    stats.session_cache_hits += warm_hits;
    keys.iter().map(|key| resolved[key]).collect()
}

/// Value signature of everything [`lower_bound_mbps`] observes about
/// `path`, plus the topology structure: the node → used-host-slot
/// partition **in id order** (the heuristic seeds slots by scanning
/// nodes in id order and breaks affinity ties toward lower slots, so
/// slot order is significant) followed by each slot's exact remaining
/// availability, in first-occurrence order. Returns the fold and the
/// slot table for keying candidates.
fn session_prefix(ctx: &Ctx<'_>, path: &Path<'_>) -> (u64, Vec<HostId>) {
    let mut slots: Vec<HostId> = Vec::with_capacity(path.placed);
    let mut h = ctx.topo_sig;
    for (i, assigned) in path.assignment.iter().enumerate() {
        if let Some(host) = *assigned {
            let slot = match slots.iter().position(|&s| s == host) {
                Some(slot) => slot,
                None => {
                    slots.push(host);
                    slots.len() - 1
                }
            };
            h = mix64(h ^ (((i as u64) << 32) | (slot as u64 + 1)));
        }
    }
    for &host in &slots {
        let avail = path.overlay.available(host);
        h = mix64(h ^ u64::from(avail.vcpus));
        h = mix64(h ^ avail.memory_mb);
        h = mix64(h ^ avail.disk_gb);
    }
    (h, slots)
}

fn score_one(
    ctx: &Ctx<'_>,
    path: &Path<'_>,
    node: NodeId,
    host: HostId,
    bound: Option<u64>,
) -> Option<ScoredCandidate> {
    let added_ubw = path.probe(ctx, node, host)?;
    let new_hosts = path.new_hosts() + usize::from(!path.overlay.is_active(host));
    let ubw_child = path.ubw_mbps + added_ubw;
    let u_star = ctx.objective(ubw_child, new_hosts);
    let bound = match bound {
        Some(resolved) => resolved,
        None if ctx.use_estimate => lower_bound_mbps(ctx, path, node, host),
        None => 0,
    };
    let u_total = ctx.objective(ubw_child + bound, new_hosts);
    Some(ScoredCandidate { host, added_ubw, u_star, u_total })
}

/// `GetBest` (Alg. 1 line 11): the candidate minimizing the estimated
/// total utility, tie-broken toward already-active hosts and then the
/// lowest host index (deterministic).
pub(crate) fn pick_best(path: &Path<'_>, scored: &[ScoredCandidate]) -> Option<ScoredCandidate> {
    scored
        .iter()
        .min_by(|a, b| {
            a.u_total
                .total_cmp(&b.u_total)
                .then_with(|| {
                    let a_active = path.overlay.is_active(a.host);
                    let b_active = path.overlay.is_active(b.host);
                    b_active.cmp(&a_active)
                })
                .then_with(|| a.host.cmp(&b.host))
        })
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::PlacementRequest;
    use ostro_datacenter::{CapacityState, Infrastructure, InfrastructureBuilder};
    use ostro_model::{ApplicationTopology, Bandwidth, DiversityLevel, Resources, TopologyBuilder};

    fn infra() -> Infrastructure {
        InfrastructureBuilder::flat(
            "dc",
            2,
            4,
            Resources::new(8, 16_384, 500),
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap()
    }

    fn topo_pair() -> ApplicationTopology {
        let mut b = TopologyBuilder::new("t");
        let a = b.vm("a", 4, 8_192).unwrap();
        let c = b.vm("c", 4, 8_192).unwrap();
        b.link(a, c, Bandwidth::from_mbps(100)).unwrap();
        b.diversity_zone("z", DiversityLevel::Rack, &[a, c]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn capacity_screen_excludes_full_hosts() {
        let topo = topo_pair();
        let infra = infra();
        let mut base = CapacityState::new(&infra);
        base.reserve_node(HostId::from_index(0), Resources::new(8, 16_384, 500)).unwrap();
        let req = PlacementRequest { zone_symmetry: false, ..PlacementRequest::default() };
        let ctx = Ctx::new(&topo, &infra, &base, &req, vec![None; 2]).unwrap();
        let path = Path::empty(&ctx);
        let node = ctx.order[0];
        let hosts = feasible_hosts(&ctx, &path, node);
        assert_eq!(hosts.len(), 7);
        assert!(!hosts.contains(&HostId::from_index(0)));
    }

    #[test]
    fn diversity_screen_uses_zone_level() {
        let topo = topo_pair();
        let infra = infra();
        let base = CapacityState::new(&infra);
        let req = PlacementRequest { zone_symmetry: false, ..PlacementRequest::default() };
        let ctx = Ctx::new(&topo, &infra, &base, &req, vec![None; 2]).unwrap();
        let path = Path::empty(&ctx);
        let first = ctx.order[0];
        let second = ctx.order[1];
        let child = path.place(&ctx, first, HostId::from_index(1)).unwrap();
        let hosts = feasible_hosts(&ctx, &child, second);
        // Rack 0 is hosts 0..4; the rack-level zone forbids all of them.
        assert_eq!(hosts.len(), 4);
        assert!(hosts.iter().all(|h| h.index() >= 4));
    }

    #[test]
    fn pinned_node_gets_exactly_its_host() {
        let topo = topo_pair();
        let infra = infra();
        let base = CapacityState::new(&infra);
        let req = PlacementRequest { zone_symmetry: false, ..PlacementRequest::default() };
        let a = topo.node_by_name("a").unwrap().id();
        let mut pinned = vec![None; 2];
        pinned[a.index()] = Some(HostId::from_index(5));
        let ctx = Ctx::new(&topo, &infra, &base, &req, pinned).unwrap();
        let path = Path::empty(&ctx);
        assert_eq!(feasible_hosts(&ctx, &path, a), vec![HostId::from_index(5)]);
    }

    #[test]
    fn symmetry_floor_orders_sibling_hosts() {
        let mut b = TopologyBuilder::new("t");
        let hub = b.vm("hub", 1, 1_024).unwrap();
        let w1 = b.vm("w1", 1, 1_024).unwrap();
        let w2 = b.vm("w2", 1, 1_024).unwrap();
        b.link(hub, w1, Bandwidth::from_mbps(10)).unwrap();
        b.link(hub, w2, Bandwidth::from_mbps(10)).unwrap();
        b.diversity_zone("z", DiversityLevel::Host, &[w1, w2]).unwrap();
        let topo = b.build().unwrap();
        let infra = infra();
        let base = CapacityState::new(&infra);
        let req = PlacementRequest::default();
        let ctx = Ctx::new(&topo, &infra, &base, &req, vec![None; 3]).unwrap();
        assert_ne!(ctx.sym_group[w1.index()], NO_GROUP);

        let mut path = Path::empty(&ctx);
        // Place nodes until w1 is placed (order may interleave hub).
        while let Some(n) = path.next_node(&ctx) {
            if n == w2 {
                break;
            }
            let host = if n == w1 { HostId::from_index(3) } else { HostId::from_index(0) };
            path = path.place(&ctx, n, host).unwrap();
        }
        let hosts = feasible_hosts(&ctx, &path, w2);
        assert!(!hosts.is_empty());
        assert!(hosts.iter().all(|h| h.index() > 3));
    }

    #[test]
    fn scoring_prefers_colocation_for_bandwidth_dominant_weights() {
        let topo = topo_no_zone();
        let infra = infra();
        let base = CapacityState::new(&infra);
        let req = PlacementRequest {
            weights: crate::objective::ObjectiveWeights::BANDWIDTH_DOMINANT,
            zone_symmetry: false,
            parallel: false,
            ..PlacementRequest::default()
        };
        let ctx = Ctx::new(&topo, &infra, &base, &req, vec![None; 2]).unwrap();
        let path = Path::empty(&ctx);
        let first = ctx.order[0];
        let child = path.place(&ctx, first, HostId::from_index(0)).unwrap();
        let second = child.next_node(&ctx).unwrap();
        let hosts = feasible_hosts(&ctx, &child, second);
        let mut stats = SearchStats::default();
        let scored = score_candidates(&ctx, &child, second, &hosts, &mut stats);
        let best = pick_best(&child, &scored).unwrap();
        assert_eq!(best.host, HostId::from_index(0));
        assert_eq!(best.added_ubw, 0);
        assert_eq!(stats.heuristic_evals, hosts.len() as u64);
    }

    fn topo_no_zone() -> ApplicationTopology {
        let mut b = TopologyBuilder::new("t");
        let a = b.vm("a", 2, 2_048).unwrap();
        let c = b.vm("c", 2, 2_048).unwrap();
        b.link(a, c, Bandwidth::from_mbps(100)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn parallel_and_serial_scoring_agree() {
        let topo = topo_no_zone();
        let infra = infra();
        let base = CapacityState::new(&infra);
        let mk = |parallel| PlacementRequest {
            parallel,
            zone_symmetry: false,
            ..PlacementRequest::default()
        };
        let req_par = mk(true);
        let req_ser = mk(false);
        let ctx_p = Ctx::new(&topo, &infra, &base, &req_par, vec![None; 2]).unwrap();
        let ctx_s = Ctx::new(&topo, &infra, &base, &req_ser, vec![None; 2]).unwrap();
        let path_p = Path::empty(&ctx_p);
        let path_s = Path::empty(&ctx_s);
        let node = ctx_p.order[0];
        let hosts = feasible_hosts(&ctx_p, &path_p, node);
        let mut s1 = SearchStats::default();
        let mut s2 = SearchStats::default();
        // Force the parallel path despite the small candidate count by
        // repeating the host list beyond the threshold.
        let many: Vec<HostId> = hosts.iter().cycle().take(200).copied().collect();
        let a = score_candidates(&ctx_p, &path_p, node, &many, &mut s1);
        let b = score_candidates(&ctx_s, &path_s, node, &many, &mut s2);
        assert_eq!(a, b);
    }

    #[test]
    fn memoized_scoring_matches_cold_cache_scoring() {
        let topo = topo_no_zone();
        let infra = infra();
        let base = CapacityState::new(&infra);
        let mk = |memoize_bounds| PlacementRequest {
            memoize_bounds,
            zone_symmetry: false,
            ..PlacementRequest::default()
        };
        let req_memo = mk(true);
        let req_cold = mk(false);
        let ctx_m = Ctx::new(&topo, &infra, &base, &req_memo, vec![None; 2]).unwrap();
        let ctx_c = Ctx::new(&topo, &infra, &base, &req_cold, vec![None; 2]).unwrap();
        let path_m = Path::empty(&ctx_m);
        let path_c = Path::empty(&ctx_c);
        let node = ctx_m.order[0];
        let hosts = feasible_hosts(&ctx_m, &path_m, node);
        let mut sm = SearchStats::default();
        let mut sc = SearchStats::default();
        let warm = score_candidates(&ctx_m, &path_m, node, &hosts, &mut sm);
        let cold = score_candidates(&ctx_c, &path_c, node, &hosts, &mut sc);
        assert_eq!(warm, cold);
        // Every resolution is accounted as a hit or a miss with memo
        // on; the cold run keeps both counters at zero.
        assert_eq!(sm.bound_cache_hits + sm.bound_cache_misses, hosts.len() as u64);
        assert!(sm.bound_cache_misses >= 1);
        assert_eq!(sc.bound_cache_hits + sc.bound_cache_misses, 0);
        // All eight hosts are untouched with identical base
        // availability: one group, one heuristic evaluation.
        assert_eq!(sm.bound_cache_misses, 1);
        // A second round is fully cache-served and still identical.
        let mut sm2 = SearchStats::default();
        let again = score_candidates(&ctx_m, &path_m, node, &hosts, &mut sm2);
        assert_eq!(again, warm);
        assert_eq!(sm2.bound_cache_misses, 0);
        assert_eq!(sm2.bound_cache_hits, hosts.len() as u64);
    }

    /// The satellite property test: over random small topologies, a
    /// search that places, descends, rolls back via [`PlacedMark`]
    /// undo, and re-scores must produce bounds identical to a
    /// cold-cache run — i.e. rollback restores every cache key (the
    /// path signature and the overlay group epochs) exactly.
    ///
    /// [`PlacedMark`]: crate::search::PlacedMark
    #[test]
    fn memo_survives_rollback_and_matches_cold_cache_on_random_topologies() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0x05_7280);
        for trial in 0u64..25 {
            let mut b = TopologyBuilder::new(format!("t{trial}"));
            let n = rng.gen_range(3usize..7);
            let ids: Vec<_> = (0..n)
                .map(|i| {
                    b.vm(format!("v{i}"), rng.gen_range(1u32..4), 1_024 * rng.gen_range(1u64..4))
                        .unwrap()
                })
                .collect();
            for i in 0..n {
                for j in (i + 1)..n {
                    if rng.gen_bool(0.4) {
                        b.link(ids[i], ids[j], Bandwidth::from_mbps(rng.gen_range(10u64..200)))
                            .unwrap();
                    }
                }
            }
            let topo = b.build().unwrap();
            let infra = infra();
            let base = CapacityState::new(&infra);
            let mk = |memoize_bounds| PlacementRequest {
                memoize_bounds,
                zone_symmetry: false,
                ..PlacementRequest::default()
            };
            let req_memo = mk(true);
            let req_cold = mk(false);
            let ctx_m = Ctx::new(&topo, &infra, &base, &req_memo, vec![None; n]).unwrap();
            let ctx_c = Ctx::new(&topo, &infra, &base, &req_cold, vec![None; n]).unwrap();
            let mut warm = Path::empty(&ctx_m);
            let mut cold = Path::empty(&ctx_c);
            while let Some(node) = warm.next_node(&ctx_m) {
                let hosts = feasible_hosts(&ctx_m, &warm, node);
                if hosts.is_empty() {
                    break;
                }
                let mut stats = SearchStats::default();
                let first = score_candidates(&ctx_m, &warm, node, &hosts, &mut stats);
                // Detour: place on a random feasible host, score the
                // *next* node down there (seeding cache entries at the
                // deeper signature and bumped host epochs), roll back.
                let detour_host = hosts[rng.gen_range(0usize..hosts.len())];
                if let Some(mark) = warm.place_mut(&ctx_m, node, detour_host) {
                    if let Some(next) = warm.next_node(&ctx_m) {
                        let deeper = feasible_hosts(&ctx_m, &warm, next);
                        let mut s = SearchStats::default();
                        score_candidates(&ctx_m, &warm, next, &deeper, &mut s);
                    }
                    warm.undo(mark);
                }
                // Re-scoring after the rollback hits only valid cache
                // entries: identical output, zero fresh evaluations.
                let mut stats2 = SearchStats::default();
                let rescored = score_candidates(&ctx_m, &warm, node, &hosts, &mut stats2);
                assert_eq!(rescored, first, "trial {trial}: rollback changed scores");
                assert_eq!(stats2.bound_cache_misses, 0, "trial {trial}: stale keys after undo");
                // And the whole round agrees with a cold-cache engine.
                let mut cold_stats = SearchStats::default();
                let cold_scored = score_candidates(&ctx_c, &cold, node, &hosts, &mut cold_stats);
                assert_eq!(cold_scored, first, "trial {trial}: memo diverged from cold cache");
                let Some(best) = pick_best(&warm, &first) else { break };
                warm.place_mut(&ctx_m, node, best.host).unwrap();
                cold.place_mut(&ctx_c, node, best.host).unwrap();
            }
        }
    }
}
