//! Per-host health detection: a phi-accrual failure detector over
//! deterministic heartbeat streams, driving a hysteretic state machine
//! (`Healthy → Suspect → Draining → Dead`, with recovery back to
//! `Healthy` from `Suspect` only).
//!
//! The detector follows the accrual construction of Hayashibara et
//! al. (the one Cassandra ships): instead of a boolean alive/dead
//! verdict, each host accrues a suspicion level φ that grows with the
//! time since its last heartbeat, scaled by the host's *own* recent
//! inter-arrival history. Under the exponential inter-arrival model
//! the closed form is
//!
//! ```text
//! φ(t) = log10(e) · (t − t_last) / mean_interval
//! ```
//!
//! so a host that has historically beaten every 5 ticks reaches φ = 1
//! after ~11.5 silent ticks (P(still alive) ≈ 10⁻¹), φ = 2 after ~23,
//! and so on. Gray hosts — alive but degraded, with inflating and
//! jittery intervals — raise their own mean, which keeps φ honest: a
//! slow-but-steady host is *not* suspected, while a host whose silence
//! outruns even its degraded history is.
//!
//! Everything here is integer-tick driven and allocation-stable:
//! feeding the same heartbeat stream through [`HealthMonitor`] twice
//! produces bit-identical φ values and transition sequences, which is
//! what lets the maintenance plane's decision digests be diffed across
//! runs (see `scripts/verify.sh`).

use ostro_datacenter::HostId;
use serde::{Deserialize, Serialize};

/// log10(e): converts the exponential survival exponent to φ's
/// base-10 suspicion scale.
const LOG10_E: f64 = std::f64::consts::LOG10_E;

/// The maintenance plane's view of one host's health.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HealthState {
    /// Heartbeats arriving on schedule; full placement target.
    Healthy,
    /// φ crossed [`HealthConfig::suspect_phi`]: the host is watched
    /// but untouched. Recovers to `Healthy` after
    /// [`HealthConfig::recovery_ticks`] consecutive calm evaluations
    /// (the hysteresis that keeps a flappy host from thrashing).
    Suspect,
    /// φ crossed [`HealthConfig::drain_phi`]: the plane freezes the
    /// host and migrates its tenants away *before* the crash.
    /// Deliberately one-way — a drained host rejoins the fleet through
    /// operator action, not by beating twice.
    Draining,
    /// The drain completed (or φ crossed
    /// [`HealthConfig::dead_phi`] first). Terminal.
    Dead,
}

/// Thresholds and hysteresis for the per-host state machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HealthConfig {
    /// φ at which a host becomes [`HealthState::Suspect`].
    pub suspect_phi: f64,
    /// φ at which a suspect host starts [`HealthState::Draining`].
    pub drain_phi: f64,
    /// φ at which a draining host is declared [`HealthState::Dead`]
    /// even if its drain is still retrying.
    pub dead_phi: f64,
    /// Consecutive calm (φ < `suspect_phi`) evaluations a suspect
    /// host must string together before it recovers to `Healthy`.
    pub recovery_ticks: u32,
    /// Inter-arrival samples kept per host (a sliding window).
    pub window: usize,
    /// Prior mean inter-arrival, in ticks, used until a host has real
    /// samples — and the floor under the observed mean, so a burst of
    /// back-to-back beats cannot make the detector hair-triggered.
    pub expected_interval: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            suspect_phi: 1.0,
            drain_phi: 3.0,
            dead_phi: 8.0,
            recovery_ticks: 3,
            window: 16,
            expected_interval: 5,
        }
    }
}

/// One host's detector state: last-arrival bookkeeping plus the
/// sliding inter-arrival window.
#[derive(Debug, Clone)]
struct HostHealth {
    state: HealthState,
    /// Tick of the most recent heartbeat; `None` until the first.
    last_beat: Option<u64>,
    /// Ring buffer of recent inter-arrival intervals.
    intervals: Vec<u64>,
    /// Next write position in `intervals` once it is full.
    cursor: usize,
    /// Running sum of `intervals` (kept incrementally; the window is
    /// small but `evaluate` runs every tick for every host).
    interval_sum: u64,
    /// Consecutive calm evaluations while `Suspect`.
    calm_streak: u32,
}

impl HostHealth {
    fn new() -> Self {
        HostHealth {
            state: HealthState::Healthy,
            last_beat: None,
            intervals: Vec::new(),
            cursor: 0,
            interval_sum: 0,
            calm_streak: 0,
        }
    }

    fn mean_interval(&self, cfg: &HealthConfig) -> f64 {
        if self.intervals.is_empty() {
            return cfg.expected_interval.max(1) as f64;
        }
        let observed = self.interval_sum as f64 / self.intervals.len() as f64;
        observed.max(cfg.expected_interval.max(1) as f64)
    }
}

/// One state-machine edge, reported by [`HealthMonitor::evaluate`] in
/// ascending host order (the determinism contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthTransition {
    /// The host that moved.
    pub host: HostId,
    /// The state it left.
    pub from: HealthState,
    /// The state it entered.
    pub to: HealthState,
    /// The evaluation tick the edge fired on.
    pub tick: u64,
}

/// The fleet-wide failure detector: feed it heartbeats with
/// [`heartbeat`](Self::heartbeat), advance it with
/// [`evaluate`](Self::evaluate), and act on the transitions it
/// returns. Purely computational — it never touches capacity books;
/// the [`MaintenancePlane`](crate::MaintenancePlane) owns the
/// consequences.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    cfg: HealthConfig,
    hosts: Vec<HostHealth>,
}

impl HealthMonitor {
    /// A monitor for `host_count` hosts, all initially `Healthy`.
    #[must_use]
    pub fn new(cfg: HealthConfig, host_count: usize) -> Self {
        HealthMonitor { cfg, hosts: vec![HostHealth::new(); host_count] }
    }

    /// The configured thresholds.
    #[must_use]
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// Records a heartbeat from `host` at `tick`. Out-of-order beats
    /// (tick earlier than the last seen) are ignored rather than
    /// poisoning the window.
    pub fn heartbeat(&mut self, host: HostId, tick: u64) {
        let h = &mut self.hosts[host.index()];
        match h.last_beat {
            None => h.last_beat = Some(tick),
            Some(last) if tick > last => {
                let interval = tick - last;
                if h.intervals.len() < self.cfg.window.max(1) {
                    h.intervals.push(interval);
                } else {
                    h.interval_sum -= h.intervals[h.cursor];
                    h.intervals[h.cursor] = interval;
                    h.cursor = (h.cursor + 1) % h.intervals.len();
                }
                h.interval_sum += interval;
                h.last_beat = Some(tick);
            }
            Some(_) => {}
        }
    }

    /// The suspicion level φ of `host` at `tick`. Zero before the
    /// first heartbeat (an unborn host is given the benefit of the
    /// doubt — the simulator always beats once at start-up).
    #[must_use]
    pub fn phi(&self, host: HostId, tick: u64) -> f64 {
        let h = &self.hosts[host.index()];
        let Some(last) = h.last_beat else { return 0.0 };
        let elapsed = tick.saturating_sub(last);
        LOG10_E * elapsed as f64 / h.mean_interval(&self.cfg)
    }

    /// The current state of `host`.
    #[must_use]
    pub fn state(&self, host: HostId) -> HealthState {
        self.hosts[host.index()].state
    }

    /// Forces `host` into `to` — the plane's hook for edges the
    /// detector cannot see (drain completed → `Dead`, operator
    /// intervention). Returns the transition if the state changed.
    pub fn mark(&mut self, host: HostId, to: HealthState, tick: u64) -> Option<HealthTransition> {
        let h = &mut self.hosts[host.index()];
        if h.state == to {
            return None;
        }
        let from = h.state;
        h.state = to;
        h.calm_streak = 0;
        Some(HealthTransition { host, from, to, tick })
    }

    /// Advances every host's state machine to `tick`, returning the
    /// edges that fired in ascending host order. φ is evaluated once
    /// per host per call; a single evaluation can climb at most one
    /// level towards draining (Suspect this tick, Draining no earlier
    /// than the next), so a host is always *observed* suspect before
    /// the plane acts on it.
    pub fn evaluate(&mut self, tick: u64) -> Vec<HealthTransition> {
        let mut transitions = Vec::new();
        for index in 0..self.hosts.len() {
            let host = HostId::from_index(index as u32);
            let phi = self.phi(host, tick);
            let h = &mut self.hosts[index];
            let (from, to) = match h.state {
                HealthState::Healthy if phi >= self.cfg.suspect_phi => {
                    (HealthState::Healthy, HealthState::Suspect)
                }
                HealthState::Suspect => {
                    if phi >= self.cfg.drain_phi {
                        h.calm_streak = 0;
                        (HealthState::Suspect, HealthState::Draining)
                    } else if phi < self.cfg.suspect_phi {
                        h.calm_streak += 1;
                        if h.calm_streak >= self.cfg.recovery_ticks.max(1) {
                            h.calm_streak = 0;
                            (HealthState::Suspect, HealthState::Healthy)
                        } else {
                            continue;
                        }
                    } else {
                        // Between thresholds: still suspicious; the
                        // calm streak resets so recovery requires
                        // *consecutive* quiet ticks.
                        h.calm_streak = 0;
                        continue;
                    }
                }
                HealthState::Draining if phi >= self.cfg.dead_phi => {
                    (HealthState::Draining, HealthState::Dead)
                }
                _ => continue,
            };
            h.state = to;
            transitions.push(HealthTransition { host, from, to, tick });
        }
        transitions
    }

    /// Hosts currently in `state`, ascending.
    #[must_use]
    pub fn hosts_in(&self, state: HealthState) -> Vec<HostId> {
        self.hosts
            .iter()
            .enumerate()
            .filter(|(_, h)| h.state == state)
            .map(|(i, _)| HostId::from_index(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(i: u32) -> HostId {
        HostId::from_index(i)
    }

    fn monitor(hosts: usize) -> HealthMonitor {
        HealthMonitor::new(HealthConfig::default(), hosts)
    }

    #[test]
    fn steady_heartbeats_stay_healthy() {
        let mut m = monitor(1);
        for tick in (0..100).step_by(5) {
            m.heartbeat(h(0), tick);
            assert!(m.evaluate(tick).is_empty());
        }
        assert_eq!(m.state(h(0)), HealthState::Healthy);
        assert!(m.phi(h(0), 100) < 1.0);
    }

    #[test]
    fn silence_escalates_suspect_then_draining_then_dead() {
        let mut m = monitor(1);
        for tick in (0..50).step_by(5) {
            m.heartbeat(h(0), tick);
        }
        // Host falls silent after tick 45.
        let mut seen = Vec::new();
        for tick in 46..200 {
            for t in m.evaluate(tick) {
                seen.push((t.from, t.to));
            }
        }
        assert_eq!(
            seen,
            vec![
                (HealthState::Healthy, HealthState::Suspect),
                (HealthState::Suspect, HealthState::Draining),
                (HealthState::Draining, HealthState::Dead),
            ]
        );
    }

    #[test]
    fn suspect_recovers_with_hysteresis() {
        let mut m = monitor(1);
        for tick in (0..50).step_by(5) {
            m.heartbeat(h(0), tick);
        }
        // One long gap pushes the host over the suspect threshold…
        let mut suspected_at = None;
        for tick in 46..70 {
            for t in m.evaluate(tick) {
                if t.to == HealthState::Suspect {
                    suspected_at = Some(tick);
                }
            }
            if suspected_at.is_some() {
                break;
            }
        }
        let suspected_at = suspected_at.expect("host should be suspected");
        assert_eq!(m.state(h(0)), HealthState::Suspect);
        // …then beats resume: recovery needs `recovery_ticks`
        // consecutive calm evaluations, not just one.
        m.heartbeat(h(0), suspected_at);
        m.heartbeat(h(0), suspected_at + 1);
        assert!(m.evaluate(suspected_at + 1).is_empty(), "one calm tick must not recover");
        assert_eq!(m.state(h(0)), HealthState::Suspect);
        let mut recovered_at = None;
        for tick in suspected_at + 2..suspected_at + 10 {
            m.heartbeat(h(0), tick);
            for t in m.evaluate(tick) {
                if t.to == HealthState::Healthy {
                    recovered_at = Some(tick);
                }
            }
        }
        assert!(recovered_at.is_some(), "calm streak should recover the host");
        assert_eq!(m.state(h(0)), HealthState::Healthy);
    }

    #[test]
    fn gray_host_with_inflated_intervals_is_not_suspected() {
        let mut m = monitor(1);
        // Degraded but steady: beats every 15 ticks instead of 5. The
        // window adapts, so φ stays low between beats.
        for tick in (0..300).step_by(15) {
            m.heartbeat(h(0), tick);
        }
        assert!(m.phi(h(0), 299) < 1.0, "steady-slow host must not accrue suspicion");
        assert_eq!(m.state(h(0)), HealthState::Healthy);
    }

    #[test]
    fn draining_is_one_way_without_mark() {
        let mut m = monitor(1);
        for tick in (0..20).step_by(5) {
            m.heartbeat(h(0), tick);
        }
        for tick in 21..120 {
            m.evaluate(tick);
            if m.state(h(0)) == HealthState::Draining {
                break;
            }
        }
        assert_eq!(m.state(h(0)), HealthState::Draining);
        // Beats resume — the machine must stay draining.
        for tick in 120..160 {
            m.heartbeat(h(0), tick);
            m.evaluate(tick);
        }
        assert_eq!(m.state(h(0)), HealthState::Draining);
        let edge = m.mark(h(0), HealthState::Dead, 160).expect("mark fires");
        assert_eq!(edge.from, HealthState::Draining);
        assert_eq!(m.state(h(0)), HealthState::Dead);
    }

    #[test]
    fn same_stream_is_bit_deterministic() {
        let drive = || {
            let mut m = monitor(4);
            let mut log = Vec::new();
            for tick in 0..400u64 {
                for host in 0..4u32 {
                    // Host 3 goes gray after tick 100; host 1 dies at 200.
                    let period = if host == 3 && tick > 100 { 13 } else { 5 };
                    let alive = !(host == 1 && tick > 200);
                    if alive && tick % period == 0 {
                        m.heartbeat(h(host), tick);
                    }
                }
                for t in m.evaluate(tick) {
                    log.push((t.host.index(), t.from, t.to, t.tick));
                }
                for host in 0..4u32 {
                    log.push((host as usize, m.state(h(host)), m.state(h(host)), {
                        m.phi(h(host), tick).to_bits()
                    }));
                }
            }
            log
        };
        assert_eq!(drive(), drive());
    }
}
