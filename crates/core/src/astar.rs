//! The bounded A\* search `BA*` (Algorithm 2) and the generic engine
//! shared with the deadline-bounded variant.
//!
//! Paths place nodes in the fixed relative-weight order (the *result*
//! does not depend on the order — unlike EG, every host combination is
//! reachable). Each open-queue entry is a *light* record (parent arena
//! index + one decision); full overlay states are materialized only
//! when an entry is popped, which keeps memory proportional to the
//! number of expansions rather than the number of generated paths.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use ostro_datacenter::HostId;
use ostro_model::NodeId;

use crate::candidates::{feasible_hosts_into, score_candidates_into, CandidateScratch};
use crate::error::PlacementError;
use crate::greedy::{pinned_root, run_eg, run_eg_capped};

/// Candidate-host cap for mid-search upper-bound refreshes; full EG
/// (uncapped) is used for the initial bound.
const REFRESH_CAP: usize = 128;
use crate::placement::SearchStats;
use crate::search::{pair_hash, Ctx, Path};

/// Hooks that specialize the engine: BA\* uses the no-op policy, DBA\*
/// plugs in deadline monitoring and probabilistic pruning.
pub(crate) trait SearchPolicy {
    /// Called when an entry of the given length enters the open queue.
    fn on_push(&mut self, _placed: usize) {}
    /// Called when an entry of the given length leaves the open queue.
    fn on_pop(&mut self, _placed: usize) {}
    /// Probabilistic pruning decision for a path of the given length.
    fn should_prune(&mut self, _placed: usize) -> bool {
        false
    }
    /// Called once per iteration; returning `true` aborts the search
    /// and falls back to the current upper bound.
    fn should_stop(&mut self, _stats: &SearchStats) -> bool {
        false
    }
    /// Tells the policy what the initial full EG run cost, so
    /// deadline-aware policies can budget upper-bound refreshes.
    fn note_initial_eg(&mut self, _elapsed: std::time::Duration) {}
    /// Whether to refresh the upper bound by greedily completing the
    /// just-materialized path (Alg. 2 lines 15–18). The default is the
    /// paper's rule: refresh whenever the popped utility makes progress.
    fn should_refresh(&mut self, _placed: usize, u_total: f64, umax: f64) -> bool {
        u_total > umax
    }
    /// Tells the policy what an upper-bound refresh just cost.
    fn note_refresh(&mut self, _elapsed: std::time::Duration) {}
}

/// The no-op policy: plain BA\*.
pub(crate) struct Unbounded;

impl SearchPolicy for Unbounded {}

#[derive(Debug, Clone, Copy)]
struct OpenEntry {
    u_total: f64,
    u_star: f64,
    parent: u32,
    node: NodeId,
    host: HostId,
    placed: u32,
    seq: u64,
}

impl PartialEq for OpenEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for OpenEntry {}

impl Ord for OpenEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the least utility pops
        // first. Ties: deeper paths first (bias to completion), then
        // insertion order for determinism.
        other
            .u_total
            .total_cmp(&self.u_total)
            .then_with(|| self.placed.cmp(&other.placed))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for OpenEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs the bounded A\* engine. `max_expansions == 0` means unlimited.
pub(crate) fn run_astar<'a, P: SearchPolicy>(
    ctx: &Ctx<'a>,
    stats: &mut SearchStats,
    max_expansions: u64,
    policy: &mut P,
) -> Result<Path<'a>, PlacementError> {
    let root = pinned_root(ctx)?;
    if root.is_complete(ctx) {
        return Ok(root);
    }

    // Line 3: initial upper bound from a full EG run.
    let mut scratch = SearchStats::default();
    stats.eg_runs += 1;
    let eg_started = std::time::Instant::now();
    let mut upper: Option<Path<'a>> = run_eg(ctx, &root, &mut scratch).ok();
    policy.note_initial_eg(eg_started.elapsed());
    let mut u_upper = upper.as_ref().map_or(f64::INFINITY, |p| p.u_star);
    stats.heuristic_evals += scratch.heuristic_evals;

    // Expanded paths live in a flat arena (light open-queue entries
    // reference their parent by index); candidate masks, host lists,
    // and scored buffers are reused across every expansion.
    let mut arena: Vec<Path<'a>> = Vec::new();
    let mut cand_scratch = CandidateScratch::default();
    let mut open: BinaryHeap<OpenEntry> = BinaryHeap::new();
    let mut closed: HashSet<(u32, u64)> = HashSet::new();
    let mut umax = 0.0f64;
    let mut seq = 0u64;

    let finish = |upper: Option<Path<'a>>| upper.ok_or(PlacementError::Exhausted);

    // Expand the root directly (it has no generating entry).
    let mut frontier: Vec<(u32, Path<'a>)> = vec![(u32::MAX, root)];
    while let Some((_, path)) = frontier.pop() {
        // Frontier paths are incomplete by construction — a complete
        // path is recorded as an upper bound, never expanded.
        let Some(node) = path.next_node(ctx) else { continue };
        stats.symmetry_skipped += feasible_hosts_into(ctx, &path, node, &mut cand_scratch, stats);
        let (hosts, scored) = cand_scratch.hosts_and_scored();
        score_candidates_into(ctx, &path, node, hosts, stats, scored);
        stats.expanded += 1;
        stats.generated += scored.len() as u64;
        let parent_idx = arena.len() as u32;
        let parent_sig = path.signature;
        let parent_placed = path.placed as u32;
        arena.push(path);
        for cand in scored.iter().copied() {
            if cand.u_total >= u_upper {
                stats.pruned_by_bound += 1;
                continue;
            }
            let child_sig = parent_sig ^ pair_hash(node, cand.host);
            if closed.contains(&(parent_placed + 1, child_sig)) {
                stats.deduplicated += 1;
                continue;
            }
            if policy.should_prune(parent_placed as usize + 1) {
                stats.pruned_probabilistically += 1;
                continue;
            }
            policy.on_push(parent_placed as usize + 1);
            open.push(OpenEntry {
                u_total: cand.u_total,
                u_star: cand.u_star,
                parent: parent_idx,
                node,
                host: cand.host,
                placed: parent_placed + 1,
                seq,
            });
            seq += 1;
        }
        closed.insert((parent_placed, parent_sig));

        // Main loop (Alg. 2 lines 4–19).
        loop {
            if policy.should_stop(stats) {
                stats.deadline_hit = true;
                return finish(upper);
            }
            if max_expansions > 0 && stats.expanded >= max_expansions {
                return finish(upper);
            }
            let Some(entry) = open.pop() else {
                return finish(upper);
            };
            policy.on_pop(entry.placed as usize);
            // Line 6: nothing in the queue can beat the bound.
            if entry.u_total >= u_upper {
                return finish(upper);
            }
            if policy.should_prune(entry.placed as usize) {
                stats.pruned_probabilistically += 1;
                continue;
            }
            // Materialize lazily; combined-flow infeasibility surfaces here.
            let parent = &arena[entry.parent as usize];
            let Some(mut child) = parent.place(ctx, entry.node, entry.host) else {
                continue;
            };
            child.u_total = entry.u_total;
            debug_assert!((child.u_star - entry.u_star).abs() < 1e-9);
            // Line 7: a complete path popped with the least utility wins.
            if child.is_complete(ctx) {
                return Ok(child);
            }
            // Lines 15–18: progress detected — refresh the upper bound
            // by greedily completing this path.
            let refresh = policy.should_refresh(child.placed, child.u_total, umax);
            if child.u_total > umax {
                umax = child.u_total;
            }
            if refresh {
                let mut eg_stats = SearchStats::default();
                stats.eg_runs += 1;
                let refresh_started = std::time::Instant::now();
                if let Ok(completion) = run_eg_capped(ctx, &child, &mut eg_stats, REFRESH_CAP) {
                    stats.heuristic_evals += eg_stats.heuristic_evals;
                    if completion.u_star < u_upper {
                        u_upper = completion.u_star;
                        upper = Some(completion);
                    }
                }
                policy.note_refresh(refresh_started.elapsed());
            }
            frontier.push((entry.parent, child));
            break;
        }
    }
    finish(upper)
}

/// Runs plain BA\* (Algorithm 2).
pub(crate) fn run_bastar<'a>(
    ctx: &Ctx<'a>,
    stats: &mut SearchStats,
    max_expansions: u64,
) -> Result<Path<'a>, PlacementError> {
    run_astar(ctx, stats, max_expansions, &mut Unbounded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::ObjectiveWeights;
    use crate::request::PlacementRequest;
    use ostro_datacenter::{CapacityState, Infrastructure, InfrastructureBuilder};
    use ostro_model::{ApplicationTopology, Bandwidth, DiversityLevel, Resources, TopologyBuilder};

    fn infra(racks: usize, hosts: usize) -> Infrastructure {
        InfrastructureBuilder::flat(
            "dc",
            racks,
            hosts,
            Resources::new(8, 16_384, 500),
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap()
    }

    fn request() -> PlacementRequest {
        PlacementRequest {
            weights: ObjectiveWeights::BANDWIDTH_DOMINANT,
            parallel: false,
            ..PlacementRequest::default()
        }
    }

    fn star_topology(n: usize) -> ApplicationTopology {
        let mut b = TopologyBuilder::new("star");
        let hub = b.vm("hub", 2, 2_048).unwrap();
        let mut leaves = Vec::new();
        for i in 0..n {
            let leaf = b.vm(format!("leaf{i}"), 1, 1_024).unwrap();
            b.link(hub, leaf, Bandwidth::from_mbps(100)).unwrap();
            leaves.push(leaf);
        }
        b.diversity_zone("leaves", DiversityLevel::Host, &leaves).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn bastar_completes_and_beats_or_matches_eg() {
        let topo = star_topology(4);
        let inf = infra(2, 4);
        let base = CapacityState::new(&inf);
        let req = request();
        let ctx = Ctx::new(&topo, &inf, &base, &req, vec![None; topo.node_count()]).unwrap();

        let mut eg_stats = SearchStats::default();
        let eg_root = pinned_root(&ctx).unwrap();
        let eg = run_eg(&ctx, &eg_root, &mut eg_stats).unwrap();

        let mut ba_stats = SearchStats::default();
        let ba = run_bastar(&ctx, &mut ba_stats, 0).unwrap();
        assert!(ba.is_complete(&ctx));
        assert!(
            ba.u_star <= eg.u_star + 1e-12,
            "BA* ({}) must not lose to EG ({})",
            ba.u_star,
            eg.u_star
        );
        assert!(ba_stats.eg_runs >= 1);
    }

    #[test]
    fn bastar_placement_respects_diversity() {
        let topo = star_topology(4);
        let inf = infra(2, 4);
        let base = CapacityState::new(&inf);
        let req = request();
        let ctx = Ctx::new(&topo, &inf, &base, &req, vec![None; topo.node_count()]).unwrap();
        let ba = run_bastar(&ctx, &mut SearchStats::default(), 0).unwrap();
        let zone = &topo.zones()[0];
        for (i, &a) in zone.members().iter().enumerate() {
            for &b in &zone.members()[i + 1..] {
                let ha = ba.assignment[a.index()].unwrap();
                let hb = ba.assignment[b.index()].unwrap();
                assert_ne!(ha, hb);
            }
        }
    }

    #[test]
    fn expansion_cap_falls_back_to_the_upper_bound() {
        let topo = star_topology(5);
        let inf = infra(3, 4);
        let base = CapacityState::new(&inf);
        let req = request();
        let ctx = Ctx::new(&topo, &inf, &base, &req, vec![None; topo.node_count()]).unwrap();
        let mut stats = SearchStats::default();
        let path = run_bastar(&ctx, &mut stats, 2).unwrap();
        assert!(path.is_complete(&ctx));
        assert!(stats.expanded <= 2);
    }

    #[test]
    fn bastar_finds_the_obvious_optimum() {
        // Two linked VMs, no constraints: optimal is co-location, cost 0.
        let mut b = TopologyBuilder::new("t");
        let a = b.vm("a", 2, 2_048).unwrap();
        let c = b.vm("c", 2, 2_048).unwrap();
        b.link(a, c, Bandwidth::from_mbps(100)).unwrap();
        let topo = b.build().unwrap();
        let inf = infra(2, 2);
        let base = CapacityState::new(&inf);
        let req = request();
        let ctx = Ctx::new(&topo, &inf, &base, &req, vec![None; 2]).unwrap();
        let path = run_bastar(&ctx, &mut SearchStats::default(), 0).unwrap();
        assert_eq!(path.ubw_mbps, 0);
        assert_eq!(path.new_hosts(), 1);
    }

    #[test]
    fn infeasible_topology_errors() {
        let mut b = TopologyBuilder::new("t");
        b.vm("huge", 32, 1_024).unwrap();
        let topo = b.build().unwrap();
        let inf = infra(1, 2);
        let base = CapacityState::new(&inf);
        let req = request();
        let ctx = Ctx::new(&topo, &inf, &base, &req, vec![None; 1]).unwrap();
        let err = run_bastar(&ctx, &mut SearchStats::default(), 0).unwrap_err();
        assert!(matches!(err, PlacementError::Exhausted | PlacementError::Infeasible { .. }));
    }
}
