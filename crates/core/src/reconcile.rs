//! Anti-entropy reconciliation: the types for comparing a session's
//! capacity books against the cloud layer's ground truth (the
//! simulated Nova/Cinder inventory in `ostro-heat`), classifying
//! divergences, and reporting the repairs.
//!
//! The sweep itself is
//! [`SchedulerSession::reconcile`](crate::SchedulerSession::reconcile):
//! for every host it compares the session's *used* footprint
//! (capacity − available) and instance count against a [`HostTruth`],
//! repairs any divergence by forcing the books to the truth, and
//! journals the correction so a recovered session stays repaired.
//!
//! # Divergence taxonomy
//!
//! | Kind | Signature | Typical cause |
//! |------|-----------|---------------|
//! | [`OrphanedReservation`] | session count > truth count | scheduler reserved, cloud never launched (or a raced grab leaked) |
//! | [`LeakedRelease`] | session count < truth count | cloud kept an instance the scheduler released |
//! | [`StaleRaceGhost`] | counts equal, footprints differ | stale-capacity race sized an instance from an outdated view |
//!
//! [`OrphanedReservation`]: DivergenceKind::OrphanedReservation
//! [`LeakedRelease`]: DivergenceKind::LeakedRelease
//! [`StaleRaceGhost`]: DivergenceKind::StaleRaceGhost

use ostro_datacenter::HostId;
use ostro_model::Resources;
use serde::{Deserialize, Serialize};

/// The cloud layer's ground truth for one host: what is *actually*
/// running there, per the Nova/Cinder inventory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostTruth {
    /// The host.
    pub host: HostId,
    /// Aggregate footprint of every instance and volume on the host.
    pub used: Resources,
    /// How many instances (placement nodes) live there.
    pub instances: u32,
}

/// How a session's view of one host disagreed with the ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DivergenceKind {
    /// The session books more instances than the cloud is running: a
    /// reservation whose instance no longer (or never) existed.
    OrphanedReservation,
    /// The cloud runs more instances than the session books: a
    /// release the cloud never carried out.
    LeakedRelease,
    /// Instance counts agree but the footprints differ: a
    /// stale-capacity race left the session with a wrongly sized view.
    StaleRaceGhost,
}

/// One classified, repaired divergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Divergence {
    /// The divergent host.
    pub host: HostId,
    /// The classification.
    pub kind: DivergenceKind,
    /// What the session believed was used before the repair.
    pub session_used: Resources,
    /// What the ground truth says is used (the repaired value).
    pub truth_used: Resources,
    /// Instances the session booked before the repair.
    pub session_count: u32,
    /// Instances the ground truth reports (the repaired value).
    pub truth_count: u32,
}

/// The outcome of one anti-entropy sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReconcileReport {
    /// Hosts compared against the truth.
    pub scanned: usize,
    /// Quarantined hosts skipped (their books are deliberately frozen
    /// at zero availability and carry no instances to reconcile).
    pub skipped_quarantined: usize,
    /// Every divergence found, in host order of the truth slice. All
    /// of them were repaired.
    pub divergences: Vec<Divergence>,
}

impl ReconcileReport {
    /// Divergences repaired (every one found is repaired).
    #[must_use]
    pub fn repaired(&self) -> usize {
        self.divergences.len()
    }

    /// Orphaned reservations found.
    #[must_use]
    pub fn orphaned(&self) -> usize {
        self.count(DivergenceKind::OrphanedReservation)
    }

    /// Leaked releases found.
    #[must_use]
    pub fn leaked(&self) -> usize {
        self.count(DivergenceKind::LeakedRelease)
    }

    /// Stale-race ghosts found.
    #[must_use]
    pub fn ghosts(&self) -> usize {
        self.count(DivergenceKind::StaleRaceGhost)
    }

    fn count(&self, kind: DivergenceKind) -> usize {
        self.divergences.iter().filter(|d| d.kind == kind).count()
    }
}

/// Cumulative per-session reconciliation tallies, copied into
/// [`SearchStats`](crate::SearchStats) by every placement so the CLI's
/// `--stats` output surfaces them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct ReconcileTotals {
    pub(crate) orphaned: u64,
    pub(crate) leaked: u64,
    pub(crate) ghosts: u64,
}
