#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! The Ostro placement engine: holistic scheduling of whole application
//! topologies onto hierarchical data centers.
//!
//! This crate implements the paper's three contributions plus the two
//! baselines it evaluates against:
//!
//! | Paper name | [`Algorithm`] variant | Section |
//! |------------|----------------------|---------|
//! | EGC  | [`Algorithm::GreedyCompute`]        | §IV-A |
//! | EGBW | [`Algorithm::GreedyBandwidth`]      | §IV-A |
//! | EG   | [`Algorithm::Greedy`]               | §III-A |
//! | BA\*  | [`Algorithm::BoundedAStar`]         | §III-B |
//! | DBA\* | [`Algorithm::DeadlineBoundedAStar`] | §III-C |
//!
//! The engine minimizes `θbw·ubw/ûbw + θc·uc/ûc` — reserved network
//! bandwidth plus newly activated hosts, both normalized against the
//! worst case — subject to host capacity, per-link bandwidth, and
//! diversity-zone (anti-affinity) constraints.
//!
//! # Example
//!
//! ```
//! use ostro_core::{Algorithm, PlacementRequest, Scheduler};
//! use ostro_datacenter::{CapacityState, InfrastructureBuilder};
//! use ostro_model::{Bandwidth, Resources, TopologyBuilder};
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let infra = InfrastructureBuilder::flat(
//!     "dc", 4, 8,
//!     Resources::new(16, 32_768, 1_000),
//!     Bandwidth::from_gbps(10),
//!     Bandwidth::from_gbps(100),
//! ).build()?;
//!
//! let mut b = TopologyBuilder::new("three-tier");
//! let lb = b.vm("lb", 2, 2_048)?;
//! let app = b.vm("app", 4, 8_192)?;
//! let db = b.vm("db", 4, 8_192)?;
//! b.link(lb, app, Bandwidth::from_mbps(200))?;
//! b.link(app, db, Bandwidth::from_mbps(100))?;
//! let topology = b.build()?;
//!
//! let scheduler = Scheduler::new(&infra);
//! let state = CapacityState::new(&infra);
//! let request = PlacementRequest::with_algorithm(
//!     Algorithm::DeadlineBoundedAStar { deadline: Duration::from_millis(500) },
//! );
//! let outcome = scheduler.place(&topology, &state, &request)?;
//! println!(
//!     "reserved {} on {} hosts in {:?}",
//!     outcome.reserved_bandwidth, outcome.hosts_used, outcome.elapsed,
//! );
//! # Ok(())
//! # }
//! ```

mod astar;
mod baselines;
#[doc(hidden)]
pub mod bench_support;
mod candidates;
mod deadline;
mod defrag;
mod deploy;
mod error;
mod greedy;
mod health;
mod heuristic;
mod objective;
mod online;
mod placement;
mod pool;
mod reconcile;
mod request;
mod scheduler;
mod search;
mod service;
mod session;
mod shard;
mod validate;
pub mod wal;

pub use defrag::{
    FragStats, MaintStats, MaintenanceConfig, MaintenanceLoad, MaintenancePlane, MaintenanceTick,
    MigrationReason, MigrationRecord, TenantRecord,
};
pub use deploy::{
    Degradation, DeployError, DeployPolicy, DeploymentReport, EvacuationOutcome, FaultProbe,
    LaunchVerdict, NoFaults, NodeFate,
};
pub use error::PlacementError;
pub use health::{HealthConfig, HealthMonitor, HealthState, HealthTransition};
pub use objective::{Normalizers, ObjectiveWeights};
pub use online::OnlineOutcome;
pub use placement::{Placement, PlacementOutcome, SearchStats};
pub use reconcile::{Divergence, DivergenceKind, HostTruth, ReconcileReport};
pub use request::{Algorithm, PlacementRequest};
pub use scheduler::Scheduler;
pub use service::{
    CommitAttempt, DegradePolicy, DurabilityPolicy, PlacementService, PlanHook, PlanSnapshot,
    PlannedPlacement, ServiceConfig, ServiceHandle, ServiceOutcome, ServiceResponse, ServiceStats,
    Ticket,
};
pub use session::SchedulerSession;
pub use validate::{reserved_bandwidth, verify_placement, Violation};
pub use wal::{
    recover, Recovery, SyncPolicy, Wal, WalError, WalFault, WalFaultHook, WalIoOp, WalOptions,
};
