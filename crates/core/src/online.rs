//! Online adaptation (§IV-E): incrementally re-placing an application
//! after its topology is updated (VMs added or removed, requirements
//! changed), while disturbing as few existing nodes as possible.
//!
//! The strategy pins every surviving node to its current host and
//! places only the new nodes. If that is infeasible, pinned nodes are
//! progressively unpinned outward from the new nodes (1-hop neighbors,
//! then 2-hop, ...), reproducing the paper's observation that larger
//! updates can "trigger the re-positioning of previously placed nodes"
//! and even "spread out to a large portion of the application nodes".

use std::collections::VecDeque;

use ostro_datacenter::{CapacityState, HostId};
use ostro_model::{ApplicationTopology, NodeId};
use serde::{Deserialize, Serialize};

use crate::error::PlacementError;
use crate::placement::PlacementOutcome;
use crate::request::PlacementRequest;
use crate::scheduler::Scheduler;

/// The result of one incremental re-placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineOutcome {
    /// The full new placement (covering old and new nodes).
    pub outcome: PlacementOutcome,
    /// Previously placed nodes that ended up on a different host.
    pub repositioned: Vec<NodeId>,
    /// How many unpinning rounds were needed (0 = only new nodes moved).
    pub rounds: u32,
}

impl<'a> Scheduler<'a> {
    /// Re-places `topology` given that some nodes (`prior`) already
    /// have hosts. `state` must *exclude* the application's own usage
    /// (release the old placement first).
    ///
    /// `prior[i]` is the current host of node `i`, or `None` for new
    /// nodes. Pins are relaxed outward from the new nodes until a
    /// feasible placement is found; `max_rounds` caps the relaxation
    /// (the final round is always a fully unpinned re-place).
    ///
    /// # Errors
    ///
    /// [`PlacementError::PriorLengthMismatch`] when `prior` does not
    /// hold exactly one slot per topology node (a malformed online
    /// request is a recoverable error, not a crash), or any
    /// [`PlacementError`] from the underlying algorithm once even the
    /// fully unpinned round fails.
    pub fn replace_online(
        &self,
        topology: &ApplicationTopology,
        state: &CapacityState,
        request: &PlacementRequest,
        prior: &[Option<HostId>],
        max_rounds: u32,
    ) -> Result<OnlineOutcome, PlacementError> {
        replace_rounds(topology, prior, max_rounds, |pins| {
            self.place_pinned(topology, state, request, pins)
        })
    }
}

/// The pin-relaxation loop behind [`Scheduler::replace_online`], with
/// the per-round solve abstracted so warm session re-placements
/// ([`SchedulerSession::replace_online`]) run the exact same rounds.
///
/// [`SchedulerSession::replace_online`]:
///     crate::session::SchedulerSession::replace_online
pub(crate) fn replace_rounds<F>(
    topology: &ApplicationTopology,
    prior: &[Option<HostId>],
    max_rounds: u32,
    mut place: F,
) -> Result<OnlineOutcome, PlacementError>
where
    F: FnMut(&[Option<HostId>]) -> Result<PlacementOutcome, PlacementError>,
{
    if prior.len() != topology.node_count() {
        return Err(PlacementError::PriorLengthMismatch {
            expected: topology.node_count(),
            actual: prior.len(),
        });
    }
    let mut pinned: Vec<Option<HostId>> = prior.to_vec();
    let mut rounds = 0u32;
    loop {
        match place(&pinned) {
            Ok(outcome) => {
                let repositioned = topology
                    .nodes()
                    .iter()
                    .filter_map(|n| {
                        let old = prior[n.id().index()]?;
                        (outcome.placement.host_of(n.id()) != old).then(|| n.id())
                    })
                    .collect();
                return Ok(OnlineOutcome { outcome, repositioned, rounds });
            }
            Err(err) => {
                let still_pinned = pinned.iter().filter(|p| p.is_some()).count();
                if still_pinned == 0 || rounds >= max_rounds {
                    return Err(err);
                }
                rounds += 1;
                if rounds >= max_rounds {
                    // Final attempt: free everything.
                    pinned.iter_mut().for_each(|p| *p = None);
                } else {
                    unpin_frontier(topology, &mut pinned, rounds);
                }
            }
        }
    }
}

/// Unpins every pinned node within `hops` hops of an unpinned node
/// (BFS from the currently unpinned set).
fn unpin_frontier(topology: &ApplicationTopology, pinned: &mut [Option<HostId>], hops: u32) {
    let mut distance: Vec<Option<u32>> = vec![None; topology.node_count()];
    let mut queue = VecDeque::new();
    for node in topology.nodes() {
        if pinned[node.id().index()].is_none() {
            distance[node.id().index()] = Some(0);
            queue.push_back(node.id());
        }
    }
    while let Some(v) = queue.pop_front() {
        let Some(d) = distance[v.index()] else { continue };
        if d >= hops {
            continue;
        }
        for &(n, _) in topology.neighbors(v) {
            if distance[n.index()].is_none() {
                distance[n.index()] = Some(d + 1);
                queue.push_back(n);
            }
        }
    }
    for node in topology.nodes() {
        if let Some(d) = distance[node.id().index()] {
            if d > 0 && d <= hops {
                pinned[node.id().index()] = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::ObjectiveWeights;
    use crate::validate::verify_placement;
    use ostro_datacenter::{Infrastructure, InfrastructureBuilder};
    use ostro_model::{Bandwidth, Resources, TopologyBuilder, TopologyDelta};

    fn infra() -> Infrastructure {
        InfrastructureBuilder::flat(
            "dc",
            2,
            4,
            Resources::new(8, 16_384, 500),
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap()
    }

    fn request() -> PlacementRequest {
        PlacementRequest {
            weights: ObjectiveWeights::BANDWIDTH_DOMINANT,
            parallel: false,
            ..PlacementRequest::default()
        }
    }

    #[test]
    fn pure_addition_keeps_existing_nodes_in_place() {
        let inf = infra();
        let scheduler = Scheduler::new(&inf);
        let mut state = CapacityState::new(&inf);

        let mut b = TopologyBuilder::new("app");
        let a = b.vm("a", 2, 2_048).unwrap();
        let c = b.vm("c", 2, 2_048).unwrap();
        b.link(a, c, Bandwidth::from_mbps(100)).unwrap();
        let topo = b.build().unwrap();

        let initial = scheduler.place(&topo, &state, &request()).unwrap();
        scheduler.commit(&topo, &initial.placement, &mut state).unwrap();

        let mut delta = TopologyDelta::new();
        let d = delta.add_vm("d", 1, 1_024);
        delta.add_link(c, d, Bandwidth::from_mbps(50));
        let (topo2, mapping) = delta.apply(&topo).unwrap();

        // Release old usage, then re-place with pins.
        scheduler.release(&topo, &initial.placement, &mut state).unwrap();
        let mut prior = vec![None; topo2.node_count()];
        for (old, new) in mapping.surviving() {
            prior[new.index()] = Some(initial.placement.host_of(old));
        }
        let result = scheduler.replace_online(&topo2, &state, &request(), &prior, 4).unwrap();
        assert!(result.repositioned.is_empty());
        assert_eq!(result.rounds, 0);
        let v = verify_placement(&topo2, &inf, &state, &result.outcome.placement).unwrap();
        assert!(v.is_empty());
    }

    #[test]
    fn escalates_unpinning_when_pins_are_infeasible() {
        let inf = infra();
        let scheduler = Scheduler::new(&inf);
        let mut state = CapacityState::new(&inf);

        let mut b = TopologyBuilder::new("app");
        let a = b.vm("a", 4, 4_096).unwrap();
        let topo = b.build().unwrap();
        let initial = scheduler.place(&topo, &state, &request()).unwrap();
        scheduler.commit(&topo, &initial.placement, &mut state).unwrap();
        let host_a = initial.placement.host_of(a);

        // Fill host_a's remaining capacity so a linked addition cannot
        // co-locate and in fact `a` itself must move once its pin drops.
        state.reserve_node(host_a, state.available(host_a)).unwrap();
        // New node demands co-location-scale bandwidth to `a`, but the
        // NIC of host_a is saturated too.
        let mut nic_eater = CapacityState::new(&inf); // scratch to compute full nic
        let _ = &mut nic_eater;
        let peer = inf.hosts().iter().find(|h| h.id() != host_a).unwrap().id();
        let free_nic = state.nic_available(host_a);
        state.reserve_flow(&inf, host_a, peer, free_nic).unwrap();

        let mut delta = TopologyDelta::new();
        let d = delta.add_vm("d", 1, 1_024);
        delta.add_link(a, d, Bandwidth::from_mbps(50));
        let (topo2, mapping) = delta.apply(&topo).unwrap();

        scheduler.release(&topo, &initial.placement, &mut state).err();
        // The release fails because we deliberately polluted state;
        // instead rebuild a clean state representing "app released".
        let mut clean = CapacityState::new(&inf);
        clean.reserve_node(host_a, Resources::new(4, 12_288, 500)).unwrap();
        let free = clean.nic_available(host_a);
        clean.reserve_flow(&inf, host_a, peer, free).unwrap();

        let mut prior = vec![None; topo2.node_count()];
        for (old, new) in mapping.surviving() {
            prior[new.index()] = Some(initial.placement.host_of(old));
        }
        let result = scheduler.replace_online(&topo2, &clean, &request(), &prior, 4).unwrap();
        // `a` had to move (its pinned host has no room / no bandwidth).
        assert!(result.rounds >= 1);
        let new_a = mapping.new_id_of(a).unwrap();
        assert!(result.repositioned.contains(&new_a));
        let v = verify_placement(&topo2, &inf, &clean, &result.outcome.placement).unwrap();
        assert!(v.is_empty());
    }

    #[test]
    fn fails_cleanly_when_even_unpinned_is_infeasible() {
        let inf = infra();
        let scheduler = Scheduler::new(&inf);
        let mut state = CapacityState::new(&inf);
        // Exhaust the whole cluster.
        for h in inf.hosts() {
            state.reserve_node(h.id(), h.capacity()).unwrap();
        }
        let mut b = TopologyBuilder::new("app");
        b.vm("x", 1, 1_024).unwrap();
        let topo = b.build().unwrap();
        let prior = vec![None; 1];
        let err = scheduler.replace_online(&topo, &state, &request(), &prior, 3);
        assert!(err.is_err());
    }

    #[test]
    fn malformed_prior_is_a_typed_error_not_a_panic() {
        let inf = infra();
        let scheduler = Scheduler::new(&inf);
        let state = CapacityState::new(&inf);
        let mut b = TopologyBuilder::new("app");
        b.vm("a", 1, 1_024).unwrap();
        b.vm("b", 1, 1_024).unwrap();
        let topo = b.build().unwrap();
        // One slot short.
        let err = scheduler.replace_online(&topo, &state, &request(), &[None], 2).unwrap_err();
        assert_eq!(err, PlacementError::PriorLengthMismatch { expected: 2, actual: 1 });
        // One slot too many.
        let err = scheduler
            .replace_online(&topo, &state, &request(), &[None, None, None], 2)
            .unwrap_err();
        assert_eq!(err, PlacementError::PriorLengthMismatch { expected: 2, actual: 3 });
    }

    #[test]
    fn unpin_frontier_expands_by_hops() {
        let mut b = TopologyBuilder::new("chain");
        let v0 = b.vm("v0", 1, 1_024).unwrap();
        let v1 = b.vm("v1", 1, 1_024).unwrap();
        let v2 = b.vm("v2", 1, 1_024).unwrap();
        let v3 = b.vm("v3", 1, 1_024).unwrap();
        b.link(v0, v1, Bandwidth::from_mbps(10)).unwrap();
        b.link(v1, v2, Bandwidth::from_mbps(10)).unwrap();
        b.link(v2, v3, Bandwidth::from_mbps(10)).unwrap();
        let topo = b.build().unwrap();
        let h = HostId::from_index(0);
        // v0 is new (unpinned); the rest pinned.
        let mut pinned = vec![None, Some(h), Some(h), Some(h)];
        unpin_frontier(&topo, &mut pinned, 1);
        assert_eq!(pinned, vec![None, None, Some(h), Some(h)]);
        let mut pinned2 = vec![None, Some(h), Some(h), Some(h)];
        unpin_frontier(&topo, &mut pinned2, 2);
        assert_eq!(pinned2, vec![None, None, None, Some(h)]);
    }
}
