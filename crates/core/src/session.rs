//! The long-lived placement service: a [`SchedulerSession`] owns one
//! evolving [`CapacityState`] plus every piece of cross-request state a
//! streaming scheduler can reuse — the bound-memo cache, per-host
//! availability summaries, and the scoring worker pool — so a request
//! arriving after a thousand others starts warm instead of rebuilding
//! all of it from zero.
//!
//! # Invalidation protocol
//!
//! Every mutation of the session's state (`commit`, `release`,
//! `release_partial`, `deploy`, `evacuate`, `quarantine_host`, raw
//! node reservations) records the touched hosts in a *dirty-host
//! journal*. The next placement drains the journal: each dirty host
//! gets its [`HostSummary`] recomputed from the live state and its
//! epoch bumped; untouched hosts keep their summaries and signatures
//! byte-for-byte, so cache entries keyed on them stay hot.
//!
//! # Why value keys make warm hits *exact*
//!
//! The session cache is keyed purely by **values**, never identities:
//! the topology's structure signature, the partial placement expressed
//! as a node→slot partition with each slot's exact remaining
//! availability, and the candidate's availability signature.
//! [`lower_bound_mbps`] consults exactly those inputs — it never reads
//! a host id into the bound — so two resolutions with equal keys are
//! the *same computation* and a warm hit returns the bit-exact value a
//! cold evaluation would produce. This is what lets the cache survive
//! across requests, tenants, and even differently-named topologies of
//! the same shape, while the `commit`/`release` journal keeps the
//! summaries the keys are built from truthful.
//!
//! [`lower_bound_mbps`]: crate::heuristic::lower_bound_mbps

use std::sync::{Arc, Mutex, OnceLock};

use ostro_datacenter::{
    CapacityError, CapacityState, CapacityTable, FxHashMap, HostId, Infrastructure,
};
use ostro_model::{ApplicationTopology, NodeId, Resources};

use crate::deploy::{DeployError, DeployPolicy, DeploymentReport, EvacuationOutcome, FaultProbe};
use crate::error::PlacementError;
use crate::online::{replace_rounds, OnlineOutcome};
use crate::placement::{Placement, PlacementOutcome};
use crate::pool::{lock_unpoisoned, ScoringPool};
use crate::reconcile::{Divergence, DivergenceKind, HostTruth, ReconcileReport, ReconcileTotals};
use crate::request::PlacementRequest;
use crate::scheduler::Scheduler;
use crate::search::mix64;
use crate::wal::{self, Effect, Recovery, Wal, WalError, WalMark, WalOp};

/// Entries kept per generation of the session cache; at ~24 bytes per
/// entry the two live generations stay comfortably inside a few
/// megabytes while covering far more keys than one request produces.
const SESSION_CACHE_CAP: usize = 1 << 18;

/// Per-host availability digest maintained incrementally from the
/// dirty-host journal (the "incremental candidate maintenance" half of
/// the session): always equal to what a full rescan of the live state
/// would produce, verified by the invalidation property test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct HostSummary {
    /// Remaining host-local capacity — exactly `state.available(host)`.
    pub free: Resources,
    /// Remaining NIC uplink headroom in Mbps.
    pub nic_mbps: u64,
    /// Availability-group signature of an overlay-untouched host,
    /// matching [`OverlayState::host_group_signature`]'s epoch-0 chain
    /// bit-for-bit so session keys agree with per-request keys.
    ///
    /// [`OverlayState::host_group_signature`]:
    ///     ostro_datacenter::OverlayState::host_group_signature
    pub avail_sig: u64,
}

/// The epoch-0 group signature chain of
/// `OverlayState::host_group_signature`, reproduced over a summary's
/// availability.
pub(crate) fn avail_signature(avail: Resources) -> u64 {
    let a = mix64(u64::from(avail.vcpus));
    let b = mix64(a ^ avail.memory_mb);
    mix64(b ^ avail.disk_gb)
}

/// One memoized heuristic bound, tagged with the request generation
/// that wrote it so hits can be classified warm (cross-request) vs
/// in-request.
#[derive(Debug, Clone, Copy)]
struct SessionEntry {
    bound: u64,
    gen: u32,
}

/// The cross-request bound cache: two generations with second-chance
/// promotion. Inserts land in the current generation; when it fills,
/// the previous generation is discarded (those are the evictions) and
/// the current one takes its place. A hit in the previous generation
/// promotes the entry, so anything the workload still touches survives
/// rotation indefinitely — a deterministic approximation of LRU with
/// no per-entry bookkeeping.
#[derive(Debug, Default)]
pub(crate) struct SessionCache {
    cur: FxHashMap<(u32, u64), SessionEntry>,
    prev: FxHashMap<(u32, u64), SessionEntry>,
    /// Monotonic request counter; entries written by generations below
    /// the current one are warm.
    gen: u32,
    /// Cumulative entries discarded by rotation.
    evictions: u64,
}

impl SessionCache {
    /// Marks the start of a new request; everything cached so far
    /// becomes "warm" for hit accounting.
    pub(crate) fn begin_request(&mut self) {
        self.gen = self.gen.wrapping_add(1);
    }

    /// Total entries discarded by rotation so far.
    pub(crate) fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Looks `key` up in both generations, promoting a previous-
    /// generation hit. Returns the bound and `true` if the entry was
    /// written by an earlier request (a warm, cross-request hit).
    pub(crate) fn get(&mut self, key: (u32, u64)) -> Option<(u64, bool)> {
        if let Some(e) = self.cur.get(&key) {
            return Some((e.bound, e.gen != self.gen));
        }
        if let Some(e) = self.prev.remove(&key) {
            self.cur.insert(key, e);
            return Some((e.bound, e.gen != self.gen));
        }
        None
    }

    /// Inserts a freshly computed bound, rotating generations when the
    /// current one is full.
    pub(crate) fn insert(&mut self, key: (u32, u64), bound: u64) {
        if self.cur.len() >= SESSION_CACHE_CAP {
            self.evictions += self.prev.len() as u64;
            self.prev = std::mem::take(&mut self.cur);
        }
        self.cur.insert(key, SessionEntry { bound, gen: self.gen });
    }
}

/// The shared, read-mostly half of a session, handed to the search
/// context of every request the session serves.
#[derive(Debug)]
pub(crate) struct SessionShared {
    /// One summary per host, kept exactly in sync with the session's
    /// state through the dirty-host journal.
    pub(crate) summaries: Vec<HostSummary>,
    /// Per-host refresh epochs: how many times each host's summary was
    /// re-resolved from the journal. Diagnostics and tests only — the
    /// cache keys are value-based and never read these.
    pub(crate) epochs: Vec<u64>,
    /// The cross-request bound cache. Behind an [`Arc`] so epoch
    /// snapshots ([`clone_for_snapshot`](Self::clone_for_snapshot))
    /// share the *same* cache with the live session: the keys are pure
    /// values (see the module docs), so an entry written while planning
    /// against one snapshot is bit-exact for every other state too.
    pub(crate) cache: Arc<Mutex<SessionCache>>,
    /// The persistent scoring pool, created lazily on the first request
    /// large enough to engage it and reused (workers, scratch buffers
    /// and all) for the rest of the session's life.
    pub(crate) pool: OnceLock<ScoringPool>,
    /// Structure-of-arrays mirror of the session's base state (never
    /// overlay-synced itself), kept fresh by the same dirty-host journal
    /// that maintains the summaries. Each request clones it — a few
    /// contiguous memcpys — instead of recomputing every column.
    pub(crate) table: CapacityTable,
    /// Per-pod aggregate digests for the sharded coarse stage, updated
    /// by the same dirty-host journal: whenever a summary is
    /// re-resolved, its pod's digest retires the old summary and admits
    /// the new one — bit-exactly equal to a from-scratch rebuild.
    pub(crate) pods: crate::shard::PodDigests,
}

impl SessionShared {
    fn new(infra: &Infrastructure, state: &CapacityState) -> Self {
        let summaries = infra
            .hosts()
            .iter()
            .map(|h| {
                let free = state.available(h.id());
                HostSummary {
                    free,
                    nic_mbps: state.nic_available(h.id()).as_mbps(),
                    avail_sig: avail_signature(free),
                }
            })
            .collect::<Vec<_>>();
        SessionShared {
            epochs: vec![0; summaries.len()],
            pods: crate::shard::PodDigests::new(infra, &summaries),
            summaries,
            cache: Arc::new(Mutex::new(SessionCache::default())),
            pool: OnceLock::new(),
            table: CapacityTable::new(infra, state),
        }
    }

    /// A frozen copy for an epoch snapshot: summaries, epochs, and the
    /// capacity-table columns are cloned (they describe one specific
    /// state), the bound cache is *shared* (its keys are state-
    /// independent values), and the scoring pool starts empty — each
    /// concurrent planner must bring its own workers, a pool serves one
    /// search at a time.
    pub(crate) fn clone_for_snapshot(&self) -> SessionShared {
        SessionShared {
            summaries: self.summaries.clone(),
            epochs: self.epochs.clone(),
            cache: Arc::clone(&self.cache),
            pool: OnceLock::new(),
            table: self.table.clone(),
            pods: self.pods.clone(),
        }
    }
}

/// Structure-only signature of a topology: node requirements, links,
/// and diversity zones, in deterministic order — everything the
/// heuristic bound can observe, and nothing it cannot (names are
/// deliberately excluded so recurring tenant shapes share cache
/// entries no matter what they are called).
pub(crate) fn topology_signature(topology: &ApplicationTopology) -> u64 {
    let mut h = mix64(topology.node_count() as u64);
    for node in topology.nodes() {
        let req = node.requirements();
        h = mix64(h ^ u64::from(req.vcpus));
        h = mix64(h ^ req.memory_mb);
        h = mix64(h ^ req.disk_gb);
    }
    for link in topology.links() {
        let (a, b) = link.endpoints();
        h = mix64(h ^ (((a.index() as u64) << 32) | b.index() as u64));
        h = mix64(h ^ link.bandwidth().as_mbps());
    }
    for zone in topology.zones() {
        h = mix64(h ^ (zone.level() as u64 + 1));
        for &member in zone.members() {
            h = mix64(h ^ (member.index() as u64 + 1));
        }
    }
    h
}

/// A long-lived scheduling session: one [`Scheduler`] bound to one
/// owned, evolving [`CapacityState`], carrying warm cross-request
/// caches between placements.
///
/// All mutations of the capacity state must go through the session
/// (which is why it owns the state outright): each one journals the
/// hosts it touched, and the next placement re-resolves exactly those
/// — nothing else — before solving warm.
///
/// Placements are **bit-identical** to a cold per-request
/// [`Scheduler::place`] against an equal state: the warm caches are
/// value-keyed (see the module docs), so reuse changes the work done,
/// never the answer.
///
/// ```
/// use ostro_core::{PlacementRequest, SchedulerSession};
/// use ostro_datacenter::InfrastructureBuilder;
/// use ostro_model::{Bandwidth, Resources, TopologyBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let infra = InfrastructureBuilder::flat(
///     "dc", 2, 4,
///     Resources::new(16, 32_768, 1_000),
///     Bandwidth::from_gbps(10),
///     Bandwidth::from_gbps(100),
/// ).build()?;
/// let mut b = TopologyBuilder::new("app");
/// let web = b.vm("web", 2, 2_048)?;
/// let db = b.vm("db", 4, 8_192)?;
/// b.link(web, db, Bandwidth::from_mbps(100))?;
/// let topology = b.build()?;
///
/// let mut session = SchedulerSession::new(&infra);
/// let outcome = session.place(&topology, &PlacementRequest::default())?;
/// session.commit(&topology, &outcome.placement)?;
/// assert_eq!(session.state().active_host_count(), outcome.hosts_used);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SchedulerSession<'a> {
    scheduler: Scheduler<'a>,
    state: CapacityState,
    shared: SessionShared,
    /// Hosts touched since the last refresh, each listed once.
    dirty: Vec<HostId>,
    dirty_flags: Vec<bool>,
    /// Hosts frozen out by [`quarantine_host`](Self::quarantine_host),
    /// tracked so snapshots and reconciliation sweeps know which books
    /// are deliberately zeroed rather than divergent.
    quarantined: Vec<bool>,
    /// The write-ahead journal, when durability is on. Every mutation
    /// wrapper appends its effects *after* the in-memory state applied
    /// them (the state is authoritative; the journal trails it by at
    /// most the current record).
    wal: Option<Wal>,
    /// The first journaling failure, if any. Journaling is fail-stop:
    /// after an error the session keeps serving placements but stops
    /// appending, and the error is surfaced via
    /// [`wal_error`](Self::wal_error).
    wal_error: Option<WalError>,
    /// Cumulative anti-entropy tallies, copied into every outcome's
    /// [`SearchStats`](crate::SearchStats).
    recon: ReconcileTotals,
    /// Cumulative maintenance-plane tallies (atomic tenant migrations
    /// applied through [`migrate`](Self::migrate)), copied into every
    /// outcome's [`SearchStats`](crate::SearchStats) like the
    /// reconcile totals above.
    maintenance_migrations: u64,
}

impl<'a> SchedulerSession<'a> {
    /// A session over a fully idle data center.
    #[must_use]
    pub fn new(infra: &'a Infrastructure) -> Self {
        Self::with_state(infra, CapacityState::new(infra))
    }

    /// A session resuming from an existing capacity state (e.g. a
    /// restarted service reloading its checkpoint).
    #[must_use]
    pub fn with_state(infra: &'a Infrastructure, state: CapacityState) -> Self {
        let shared = SessionShared::new(infra, &state);
        SchedulerSession {
            scheduler: Scheduler::new(infra),
            dirty: Vec::new(),
            dirty_flags: vec![false; infra.host_count()],
            quarantined: vec![false; infra.host_count()],
            wal: None,
            wal_error: None,
            recon: ReconcileTotals::default(),
            maintenance_migrations: 0,
            state,
            shared,
        }
    }

    /// A session resuming from a [`Recovery`] — the books *and* the
    /// quarantine set a crashed session had made durable. Attach the
    /// recovered journal with [`attach_wal`](Self::attach_wal) to keep
    /// the resumed session durable too.
    #[must_use]
    pub fn with_recovery(infra: &'a Infrastructure, recovery: &Recovery) -> Self {
        let mut session = Self::with_state(infra, recovery.state.clone());
        for &host in &recovery.quarantined {
            session.quarantined[host.index()] = true;
        }
        session
    }

    /// Makes every subsequent mutation durable through `wal`.
    pub fn attach_wal(&mut self, wal: Wal) {
        self.wal = Some(wal);
    }

    /// Detaches and returns the journal, if one was attached.
    pub fn detach_wal(&mut self) -> Option<Wal> {
        self.wal.take()
    }

    /// The first journaling failure, if any. Journaling is fail-stop:
    /// the session keeps scheduling after a disk error but appends
    /// nothing further, and callers that need durability guarantees
    /// should check this (the CLI and simulator do).
    #[must_use]
    pub fn wal_error(&self) -> Option<&WalError> {
        self.wal_error.as_ref()
    }

    /// Takes ownership of the first journaling failure, if any, so the
    /// caller can surface it as a typed error.
    pub fn take_wal_error(&mut self) -> Option<WalError> {
        self.wal_error.take()
    }

    /// Forces a snapshot + journal compaction now, regardless of the
    /// automatic cadence. A no-op without an attached journal.
    ///
    /// # Errors
    ///
    /// [`WalError`] if the snapshot could not be made durable.
    pub fn checkpoint(&mut self) -> Result<(), WalError> {
        let quarantined = self.quarantined_hosts();
        match self.wal.as_mut() {
            Some(w) => w.snapshot(&self.state, &quarantined),
            None => Ok(()),
        }
    }

    /// Hosts currently quarantined, ascending.
    #[must_use]
    pub fn quarantined_hosts(&self) -> Vec<HostId> {
        self.quarantined
            .iter()
            .enumerate()
            .filter(|&(_, &q)| q)
            .map(|(i, _)| HostId::from_index(i as u32))
            .collect()
    }

    /// Whether `host` has been quarantined in this session.
    #[must_use]
    pub fn is_quarantined(&self, host: HostId) -> bool {
        self.quarantined[host.index()]
    }

    /// Appends one record, snapshotting afterwards if the cadence is
    /// due. Fail-stop on error (see [`wal_error`](Self::wal_error)).
    fn journal(&mut self, op: WalOp, effects: &[Effect]) {
        if self.wal_error.is_some() {
            return;
        }
        let Some(w) = self.wal.as_mut() else { return };
        let mut result = w.append(op, effects).map(|_| ());
        if result.is_ok() && w.should_snapshot() {
            let quarantined: Vec<HostId> = self
                .quarantined
                .iter()
                .enumerate()
                .filter(|&(_, &q)| q)
                .map(|(i, _)| HostId::from_index(i as u32))
                .collect();
            result = w.snapshot(&self.state, &quarantined);
        }
        if let Err(e) = result {
            self.wal_error = Some(e);
        }
    }

    /// Whether journaling is currently live (attached and unpoisoned)
    /// — used to skip building effect vectors nobody will consume.
    fn journaling(&self) -> bool {
        self.wal.is_some() && self.wal_error.is_none()
    }

    /// The underlying stateless scheduler.
    #[must_use]
    pub fn scheduler(&self) -> Scheduler<'a> {
        self.scheduler
    }

    /// The shared half of the session (summaries, epochs, bound cache,
    /// capacity table) — what an epoch snapshot clones.
    pub(crate) fn shared(&self) -> &SessionShared {
        &self.shared
    }

    /// Fsyncs the journal now (the service's group-commit point: one
    /// sync covers every record appended since the last). Fail-stop
    /// like [`journal`](Self::journal): a sync error is recorded in
    /// [`wal_error`](Self::wal_error) and journaling stops.
    pub(crate) fn sync_wal(&mut self) {
        if self.wal_error.is_some() {
            return;
        }
        let Some(w) = self.wal.as_mut() else { return };
        if let Err(e) = w.sync() {
            self.wal_error = Some(e);
        }
    }

    /// Installs (or clears) a fault-injection hook on the attached
    /// journal, if any — the chaos harness's WAL fault entry point.
    pub fn set_wal_fault_hook(&mut self, hook: Option<crate::wal::WalFaultHook>) {
        if let Some(w) = self.wal.as_mut() {
            w.set_fault_hook(hook);
        }
    }

    /// Captures the journal position for a later [`wal_rewind`] — the
    /// service takes one before each group commit so a failed fsync can
    /// be undone. `None` without an attached journal.
    ///
    /// [`wal_rewind`]: Self::wal_rewind
    pub(crate) fn wal_mark(&self) -> Option<WalMark> {
        self.wal.as_ref().map(Wal::mark)
    }

    /// Whether the journal can still be rewound to `mark` (a snapshot
    /// compaction since the mark makes it impossible).
    pub(crate) fn wal_can_rewind(&self, mark: &WalMark) -> bool {
        self.wal.as_ref().is_some_and(|w| w.can_rewind(mark))
    }

    /// Rewinds the journal to `mark`, erasing every record appended
    /// since, and clears the fail-stop latch on success so journaling
    /// resumes — the service calls this after rolling the books back,
    /// at which point journal and books agree again. Returns whether
    /// the rewind succeeded; on failure the latch keeps (or takes) the
    /// rewind error so it still surfaces.
    pub(crate) fn wal_rewind(&mut self, mark: &WalMark) -> bool {
        let Some(w) = self.wal.as_mut() else { return false };
        match w.rewind(mark) {
            Ok(()) => {
                self.wal_error = None;
                true
            }
            Err(e) => {
                if self.wal_error.is_none() {
                    self.wal_error = Some(e);
                }
                false
            }
        }
    }

    /// Sequence number of the journal's last durable record, if a
    /// journal is attached.
    pub(crate) fn wal_seq(&self) -> Option<u64> {
        self.wal.as_ref().map(Wal::seq)
    }

    /// Retries the group-commit fsync after a failure: clears the
    /// fail-stop latch and syncs again. Returns whether the sync
    /// succeeded; on failure the latch is re-armed with the new error.
    pub(crate) fn retry_sync(&mut self) -> bool {
        let Some(w) = self.wal.as_mut() else { return false };
        match w.sync() {
            Ok(()) => {
                self.wal_error = None;
                true
            }
            Err(e) => {
                self.wal_error = Some(e);
                false
            }
        }
    }

    /// The infrastructure this session schedules onto.
    #[must_use]
    pub fn infrastructure(&self) -> &'a Infrastructure {
        self.scheduler.infrastructure()
    }

    /// Read access to the live capacity state. All mutation goes
    /// through the session so the dirty-host journal stays complete.
    #[must_use]
    pub fn state(&self) -> &CapacityState {
        &self.state
    }

    /// Consumes the session, returning the final capacity state.
    #[must_use]
    pub fn into_state(self) -> CapacityState {
        self.state
    }

    /// How many times `host`'s summary was re-resolved from the dirty
    /// journal — its availability epoch. Untouched hosts stay at 0.
    #[must_use]
    pub fn host_epoch(&self, host: HostId) -> u64 {
        self.shared.epochs[host.index()]
    }

    /// Hosts currently journaled dirty (touched since the last
    /// placement), each exactly once, in touch order.
    #[must_use]
    pub fn pending_dirty_hosts(&self) -> &[HostId] {
        &self.dirty
    }

    fn touch(&mut self, host: HostId) {
        if !self.dirty_flags[host.index()] {
            self.dirty_flags[host.index()] = true;
            self.dirty.push(host);
        }
    }

    /// Re-freezes every quarantined host among `hosts`. The raw
    /// [`CapacityState`] stores no quarantine flag, so a release on a
    /// quarantined host — a tenant departing normally after its host
    /// was frozen — would silently *resurrect* the capacity the
    /// quarantine zeroed, and candidate sweeps (and the pod digests
    /// built from the summaries) would rank capacity nothing can use.
    /// Every release-shaped mutation calls this; WAL replay applies
    /// the identical re-freeze per effect, so recovery stays
    /// bit-identical to the live books.
    fn refreeze_quarantined(&mut self, hosts: impl IntoIterator<Item = HostId>) {
        for host in hosts {
            if self.quarantined[host.index()] {
                self.state.quarantine_host(host);
            }
        }
    }

    /// Drains the dirty-host journal into the summaries and the shared
    /// capacity-table columns: exactly the journaled hosts are
    /// re-resolved from the live state; everything else keeps its
    /// summary (and therefore its cache keys) untouched.
    pub(crate) fn refresh(&mut self) -> u64 {
        let drained = self.dirty.len() as u64;
        for host in self.dirty.drain(..) {
            let free = self.state.available(host);
            let fresh = HostSummary {
                free,
                nic_mbps: self.state.nic_available(host).as_mbps(),
                avail_sig: avail_signature(free),
            };
            let old = self.shared.summaries[host.index()];
            self.shared.pods.update(host.index(), &old, &fresh);
            self.shared.summaries[host.index()] = fresh;
            self.shared.table.refresh_base_host(&self.state, host);
            self.shared.epochs[host.index()] += 1;
            self.dirty_flags[host.index()] = false;
        }
        drained
    }

    /// Computes a placement against the session's live state, warm.
    ///
    /// The state is *not* modified — call [`commit`](Self::commit) to
    /// apply the decision (which is what keeps the journal truthful).
    ///
    /// # Errors
    ///
    /// As [`Scheduler::place`].
    pub fn place(
        &mut self,
        topology: &ApplicationTopology,
        request: &PlacementRequest,
    ) -> Result<PlacementOutcome, PlacementError> {
        self.place_pinned(topology, request, &vec![None; topology.node_count()])
    }

    /// Like [`place`](Self::place) with some nodes pinned (the online
    /// re-placement path).
    ///
    /// # Errors
    ///
    /// As [`Scheduler::place_pinned`].
    ///
    /// # Panics
    ///
    /// Panics if `pinned.len() != topology.node_count()`.
    pub fn place_pinned(
        &mut self,
        topology: &ApplicationTopology,
        request: &PlacementRequest,
        pinned: &[Option<HostId>],
    ) -> Result<PlacementOutcome, PlacementError> {
        let dirty = self.refresh();
        let evictions_before = {
            let mut cache = lock_unpoisoned(&self.shared.cache);
            cache.begin_request();
            cache.evictions()
        };
        let result = self.scheduler.place_pinned_with(
            topology,
            &self.state,
            request,
            pinned,
            Some(&self.shared),
        );
        let evictions_after = lock_unpoisoned(&self.shared.cache).evictions();
        let mut outcome = result?;
        outcome.stats.session_dirty_hosts = dirty;
        outcome.stats.session_cache_evictions = evictions_after - evictions_before;
        outcome.stats.reconcile_orphaned = self.recon.orphaned;
        outcome.stats.reconcile_leaked = self.recon.leaked;
        outcome.stats.reconcile_ghosts = self.recon.ghosts;
        outcome.stats.maintenance_migrations = self.maintenance_migrations;
        Ok(outcome)
    }

    /// Online re-placement with warm rounds: the same pin-relaxation
    /// loop as [`Scheduler::replace_online`], with every round's solve
    /// served by the session caches.
    ///
    /// # Errors
    ///
    /// As [`Scheduler::replace_online`].
    pub fn replace_online(
        &mut self,
        topology: &ApplicationTopology,
        request: &PlacementRequest,
        prior: &[Option<HostId>],
        max_rounds: u32,
    ) -> Result<OnlineOutcome, PlacementError> {
        replace_rounds(topology, prior, max_rounds, |pins| {
            self.place_pinned(topology, request, pins)
        })
    }

    /// Applies a placement decision to the session state, journaling
    /// its hosts dirty.
    ///
    /// # Errors
    ///
    /// As [`Scheduler::commit`]; on error nothing is journaled (the
    /// state is untouched).
    pub fn commit(
        &mut self,
        topology: &ApplicationTopology,
        placement: &Placement,
    ) -> Result<(), PlacementError> {
        self.scheduler.commit(topology, placement, &mut self.state)?;
        for i in 0..placement.assignments().len() {
            self.touch(placement.assignments()[i]);
        }
        if self.journaling() {
            let effects = wal::commit_effects(topology, placement);
            self.journal(WalOp::Commit, &effects);
        }
        Ok(())
    }

    /// Releases a committed placement, journaling its hosts dirty.
    ///
    /// # Errors
    ///
    /// As [`Scheduler::release`]; on error nothing is journaled.
    pub fn release(
        &mut self,
        topology: &ApplicationTopology,
        placement: &Placement,
    ) -> Result<(), PlacementError> {
        self.scheduler.release(topology, placement, &mut self.state)?;
        self.refreeze_quarantined(placement.assignments().iter().copied());
        for i in 0..placement.assignments().len() {
            self.touch(placement.assignments()[i]);
        }
        if self.journaling() {
            let effects = wal::release_effects(topology, placement);
            self.journal(WalOp::Release, &effects);
        }
        Ok(())
    }

    /// Releases the committed subset of a partial assignment,
    /// journaling its hosts dirty.
    ///
    /// # Errors
    ///
    /// As [`Scheduler::release_partial`]; on error nothing is
    /// journaled.
    pub fn release_partial(
        &mut self,
        topology: &ApplicationTopology,
        assignment: &[Option<HostId>],
    ) -> Result<(), PlacementError> {
        self.scheduler.release_partial(topology, assignment, &mut self.state)?;
        self.refreeze_quarantined(assignment.iter().copied().flatten());
        for host in assignment.iter().copied().flatten() {
            self.touch(host);
        }
        if self.journaling() {
            let effects = wal::release_partial_effects(topology, assignment);
            self.journal(WalOp::ReleasePartial, &effects);
        }
        Ok(())
    }

    /// Deploys a decision through the fault-aware pipeline against the
    /// session state (see [`Scheduler::deploy`]).
    ///
    /// The decided hosts and every host the report actually committed
    /// are journaled. The pipeline's internal fallback re-plans run
    /// against a *scratch* state whose availability the session
    /// summaries do not describe, so they deliberately solve cold —
    /// only the session's own requests are served warm.
    ///
    /// # Errors
    ///
    /// As [`Scheduler::deploy`] (on error the state was rolled back;
    /// the conservative journaling of the decided hosts is harmless —
    /// their summaries re-resolve to unchanged values).
    #[allow(clippy::too_many_arguments)]
    pub fn deploy(
        &mut self,
        topology: &ApplicationTopology,
        decided: &Placement,
        request: &PlacementRequest,
        policy: &DeployPolicy,
        best_effort: &[bool],
        probe: &mut dyn FaultProbe,
    ) -> Result<DeploymentReport, DeployError> {
        let result = self.scheduler.deploy(
            topology,
            decided,
            &mut self.state,
            request,
            policy,
            best_effort,
            probe,
        );
        for i in 0..decided.assignments().len() {
            self.touch(decided.assignments()[i]);
        }
        if let Ok(report) = &result {
            let hosts: Vec<HostId> = report.assignment.iter().flatten().copied().collect();
            for host in hosts {
                self.touch(host);
            }
            if self.journaling() {
                // The pipeline rolled every failed path back, so the
                // report's final assignment *is* the net reservation.
                let effects = wal::deploy_effects(topology, &report.assignment);
                self.journal(WalOp::Deploy, &effects);
            }
        }
        result
    }

    /// Evacuates one tenant off a crashed host, with the recovery
    /// re-placement solved **warm**: the same release → re-quarantine →
    /// pinned re-place sequence as [`Scheduler::evacuate`], expressed
    /// through the session's journaled operations.
    ///
    /// # Errors
    ///
    /// As [`Scheduler::evacuate`].
    pub fn evacuate(
        &mut self,
        topology: &ApplicationTopology,
        assignment: &[Option<HostId>],
        request: &PlacementRequest,
        failed: HostId,
        max_rounds: u32,
    ) -> Result<EvacuationOutcome, PlacementError> {
        // Fast path: the tenant has no replica on the failed host, so
        // there is nothing to release and nothing to re-place —
        // freezing the host is the only book change. The tenant's own
        // hosts are neither journaled dirty nor cache-invalidated, so
        // their epochs (and every warm bound keyed off them) survive.
        if assignment.iter().all(Option::is_some) && !assignment.contains(&Some(failed)) {
            self.quarantine_host(failed);
            let placement = Placement::new(assignment.iter().copied().flatten().collect());
            let outcome = self.kept_outcome(topology, request, placement);
            return Ok(EvacuationOutcome {
                online: OnlineOutcome { outcome, repositioned: Vec::new(), rounds: 0 },
                dead: Vec::new(),
            });
        }
        self.release_partial(topology, assignment)?;
        // The release restored the dead replicas' capacity on the
        // crashed host; freeze it again so nothing lands there.
        self.quarantine_host(failed);
        let dead: Vec<NodeId> = topology
            .nodes()
            .iter()
            .filter(|nd| assignment[nd.id().index()] == Some(failed))
            .map(|nd| nd.id())
            .collect();
        let prior: Vec<Option<HostId>> =
            assignment.iter().map(|h| h.filter(|&x| x != failed)).collect();
        let online = self.replace_online(topology, request, &prior, max_rounds)?;
        Ok(EvacuationOutcome { online, dead })
    }

    /// Describes keeping `placement` exactly where it is, without
    /// running a search: the objective, bandwidth, and host tallies a
    /// fully pinned re-place would report, computed directly from the
    /// books. Used by [`evacuate`](Self::evacuate)'s untouched-tenant
    /// fast path.
    fn kept_outcome(
        &self,
        topology: &ApplicationTopology,
        request: &PlacementRequest,
        placement: Placement,
    ) -> PlacementOutcome {
        let infra = self.scheduler.infrastructure();
        let reserved = crate::validate::reserved_bandwidth(topology, infra, &placement);
        let norms = crate::objective::Normalizers::compute(topology, infra, &self.state);
        // The tenant is already committed, so keeping it activates no
        // new host by definition.
        let objective = norms.objective(request.weights, reserved.as_mbps(), 0);
        let stats = crate::placement::SearchStats {
            reconcile_orphaned: self.recon.orphaned,
            reconcile_leaked: self.recon.leaked,
            reconcile_ghosts: self.recon.ghosts,
            maintenance_migrations: self.maintenance_migrations,
            ..Default::default()
        };
        PlacementOutcome {
            hosts_used: placement.distinct_hosts(),
            placement,
            objective,
            reserved_bandwidth: reserved,
            new_active_hosts: 0,
            elapsed: std::time::Duration::ZERO,
            stats,
        }
    }

    /// Moves one committed tenant from placement `from` to placement
    /// `to` **atomically**: the old reservation is released and the new
    /// one committed in memory, and both halves are journaled as a
    /// single [`WalOp::Migrate`] record — so a crash can never surface
    /// a half-moved tenant. This is the maintenance plane's only write
    /// primitive (see [`MaintenancePlane`](crate::MaintenancePlane)).
    ///
    /// # Errors
    ///
    /// As [`Scheduler::release`] / [`Scheduler::commit`]; on a commit
    /// failure the old placement is restored bit-exactly (integer
    /// bookkeeping round-trips) and nothing is journaled.
    pub fn migrate(
        &mut self,
        topology: &ApplicationTopology,
        from: &Placement,
        to: &Placement,
    ) -> Result<(), PlacementError> {
        self.scheduler.release(topology, from, &mut self.state)?;
        if let Err(e) = self.scheduler.commit(topology, to, &mut self.state) {
            // Put the tenant back: the release freed exactly what the
            // original commit reserved, so re-committing cannot fail.
            if self.scheduler.commit(topology, from, &mut self.state).is_err() {
                unreachable!("re-committing a just-released placement");
            }
            return Err(e);
        }
        self.refreeze_quarantined(from.assignments().iter().copied());
        for &host in from.assignments() {
            self.touch(host);
        }
        for &host in to.assignments() {
            self.touch(host);
        }
        self.maintenance_migrations += 1;
        if self.journaling() {
            let mut effects = wal::release_effects(topology, from);
            effects.extend(wal::commit_effects(topology, to));
            self.journal(WalOp::Migrate, &effects);
        }
        Ok(())
    }

    /// Freezes a host out of all future placements (crash handling),
    /// journaling it dirty. Idempotent: re-quarantining an already
    /// frozen host neither dirties the journal nor appends a record,
    /// so repeated evacuations off one crashed host stay cheap.
    pub fn quarantine_host(&mut self, host: HostId) {
        if self.quarantined[host.index()] {
            return;
        }
        self.state.quarantine_host(host);
        self.quarantined[host.index()] = true;
        self.touch(host);
        self.journal(WalOp::Quarantine, &[Effect::Quarantine { host }]);
    }

    /// Raw node reservation against the session state (stale-capacity
    /// race injection and other out-of-band grabs), journaled.
    ///
    /// # Errors
    ///
    /// As [`CapacityState::reserve_node`]; nothing is journaled on
    /// error.
    pub fn reserve_node(&mut self, host: HostId, req: Resources) -> Result<(), CapacityError> {
        self.state.reserve_node(host, req)?;
        self.touch(host);
        self.journal(WalOp::ReserveNode, &[Effect::ReserveNode { host, resources: req }]);
        Ok(())
    }

    /// Raw node release against the session state, journaled.
    ///
    /// # Errors
    ///
    /// As [`CapacityState::release_node`]; nothing is journaled on
    /// error.
    pub fn release_node(&mut self, host: HostId, req: Resources) -> Result<(), CapacityError> {
        self.state.release_node(self.scheduler.infrastructure(), host, req)?;
        self.refreeze_quarantined([host]);
        self.touch(host);
        self.journal(WalOp::ReleaseNode, &[Effect::ReleaseNode { host, resources: req }]);
        Ok(())
    }

    /// Anti-entropy sweep: compares the session's per-host books
    /// against the cloud layer's ground `truth`, classifies every
    /// divergence (see [`DivergenceKind`]), repairs it by forcing the
    /// books to the truth, journals the corrections, and returns the
    /// report. Quarantined hosts are skipped — their books are
    /// deliberately frozen.
    ///
    /// Repaired hosts are journaled dirty, so the next placement
    /// re-resolves exactly the corrected summaries.
    ///
    /// # Errors
    ///
    /// A wrapped [`CapacityError`] if a truth entry claims more usage
    /// than the host's total capacity; prior repairs in the same sweep
    /// are kept *and already journaled* — each host's repair is
    /// applied and journaled as a unit before the sweep moves on, so
    /// an error partway never leaves the books ahead of the journal.
    pub fn reconcile(&mut self, truth: &[HostTruth]) -> Result<ReconcileReport, PlacementError> {
        let infra = self.scheduler.infrastructure();
        let mut report = ReconcileReport::default();
        for t in truth {
            report.scanned += 1;
            if self.quarantined[t.host.index()] {
                report.skipped_quarantined += 1;
                continue;
            }
            let capacity = infra.host(t.host).capacity();
            let session_used = capacity.saturating_sub(self.state.available(t.host));
            let session_count = self.state.node_count(t.host);
            if session_used == t.used && session_count == t.instances {
                continue;
            }
            let kind = if session_count > t.instances {
                DivergenceKind::OrphanedReservation
            } else if session_count < t.instances {
                DivergenceKind::LeakedRelease
            } else {
                DivergenceKind::StaleRaceGhost
            };
            self.state.resync_host(infra, t.host, t.used, t.instances)?;
            self.touch(t.host);
            self.journal(
                WalOp::Reconcile,
                &[Effect::Resync { host: t.host, used: t.used, instances: t.instances }],
            );
            match kind {
                DivergenceKind::OrphanedReservation => self.recon.orphaned += 1,
                DivergenceKind::LeakedRelease => self.recon.leaked += 1,
                DivergenceKind::StaleRaceGhost => self.recon.ghosts += 1,
            }
            report.divergences.push(Divergence {
                host: t.host,
                kind,
                session_used,
                truth_used: t.used,
                session_count,
                truth_count: t.instances,
            });
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;
    use std::time::Duration;

    use super::*;
    use crate::request::Algorithm;
    use ostro_datacenter::InfrastructureBuilder;
    use ostro_model::{Bandwidth, DiversityLevel, TopologyBuilder};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn infra_flat(racks: usize, hosts: usize) -> Infrastructure {
        InfrastructureBuilder::flat(
            "dc",
            racks,
            hosts,
            Resources::new(16, 32_768, 1_000),
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap()
    }

    fn hub_app(name: &str) -> ApplicationTopology {
        let mut b = TopologyBuilder::new(name);
        let hub = b.vm("hub", 4, 8_192).unwrap();
        let mut workers = Vec::new();
        for i in 0..3 {
            let w = b.vm(format!("w{i}"), 2, 2_048).unwrap();
            b.link(hub, w, Bandwidth::from_mbps(100 + 50 * i as u64)).unwrap();
            workers.push(w);
        }
        let vol = b.volume("vol", 200).unwrap();
        b.link(hub, vol, Bandwidth::from_mbps(150)).unwrap();
        b.diversity_zone("z", DiversityLevel::Host, &workers).unwrap();
        b.build().unwrap()
    }

    fn chain_app(name: &str) -> ApplicationTopology {
        let mut b = TopologyBuilder::new(name);
        let ids: Vec<_> = (0..4).map(|i| b.vm(format!("c{i}"), 2, 4_096).unwrap()).collect();
        for w in ids.windows(2) {
            b.link(w[0], w[1], Bandwidth::from_mbps(120)).unwrap();
        }
        b.build().unwrap()
    }

    fn assert_outcomes_identical(warm: &PlacementOutcome, cold: &PlacementOutcome, what: &str) {
        assert_eq!(warm.placement, cold.placement, "{what}: placement");
        assert_eq!(warm.objective.to_bits(), cold.objective.to_bits(), "{what}: objective bits");
        assert_eq!(warm.reserved_bandwidth, cold.reserved_bandwidth, "{what}: bandwidth");
        assert_eq!(warm.new_active_hosts, cold.new_active_hosts, "{what}: new hosts");
        assert_eq!(warm.hosts_used, cold.hosts_used, "{what}: hosts used");
        assert_eq!(warm.stats.expanded, cold.stats.expanded, "{what}: expanded");
        assert_eq!(
            warm.stats.heuristic_evals, cold.stats.heuristic_evals,
            "{what}: heuristic evals"
        );
    }

    /// The tentpole bit-identity contract: a warm session serving an
    /// arrive / depart / re-place / evacuate stream produces byte-
    /// identical results to a cold per-request scheduler driven over an
    /// identically evolving state — across EG, BA*, and DBA*.
    #[test]
    fn warm_session_stream_is_bit_identical_to_cold_scheduler() {
        let infra = infra_flat(4, 8);
        let algorithms = [
            Algorithm::Greedy,
            Algorithm::BoundedAStar,
            Algorithm::DeadlineBoundedAStar { deadline: Duration::from_secs(5) },
        ];
        for algorithm in algorithms {
            let request = PlacementRequest {
                algorithm,
                max_expansions: 2_000,
                ..PlacementRequest::default()
            };
            let tag = request.algorithm.abbreviation();
            let scheduler = Scheduler::new(&infra);
            let mut session = SchedulerSession::new(&infra);
            let mut cold = CapacityState::new(&infra);

            let app_a = hub_app("a");
            let app_b = chain_app("b");
            let app_c = hub_app("c"); // same shape as `a`, different name

            // Arrive A.
            let warm_a = session.place(&app_a, &request).unwrap();
            let cold_a = scheduler.place(&app_a, &cold, &request).unwrap();
            assert_outcomes_identical(&warm_a, &cold_a, &format!("{tag} place a"));
            session.commit(&app_a, &warm_a.placement).unwrap();
            scheduler.commit(&app_a, &cold_a.placement, &mut cold).unwrap();
            assert_eq!(session.state(), &cold, "{tag}: state after a");

            // Arrive B.
            let warm_b = session.place(&app_b, &request).unwrap();
            let cold_b = scheduler.place(&app_b, &cold, &request).unwrap();
            assert_outcomes_identical(&warm_b, &cold_b, &format!("{tag} place b"));
            session.commit(&app_b, &warm_b.placement).unwrap();
            scheduler.commit(&app_b, &cold_b.placement, &mut cold).unwrap();

            // Arrive C — structurally identical to A, so the session
            // serves part of its bounds from A's entries, warm.
            let warm_c = session.place(&app_c, &request).unwrap();
            let cold_c = scheduler.place(&app_c, &cold, &request).unwrap();
            assert_outcomes_identical(&warm_c, &cold_c, &format!("{tag} place c"));
            assert!(
                warm_c.stats.session_cache_hits > 0,
                "{tag}: repeated shape must hit the session cache"
            );
            assert_eq!(cold_c.stats.session_cache_hits, 0, "{tag}: cold has no session");
            session.commit(&app_c, &warm_c.placement).unwrap();
            scheduler.commit(&app_c, &cold_c.placement, &mut cold).unwrap();

            // Depart A.
            session.release(&app_a, &warm_a.placement).unwrap();
            scheduler.release(&app_a, &cold_a.placement, &mut cold).unwrap();
            assert_eq!(session.state(), &cold, "{tag}: state after releasing a");

            // Re-place B online (depart + pinned re-place).
            session.release(&app_b, &warm_b.placement).unwrap();
            scheduler.release(&app_b, &cold_b.placement, &mut cold).unwrap();
            let prior: Vec<Option<HostId>> =
                warm_b.placement.assignments().iter().copied().map(Some).collect();
            let warm_rb = session.replace_online(&app_b, &request, &prior, 4).unwrap();
            let cold_rb = scheduler.replace_online(&app_b, &cold, &request, &prior, 4).unwrap();
            assert_outcomes_identical(
                &warm_rb.outcome,
                &cold_rb.outcome,
                &format!("{tag} replace b"),
            );
            assert_eq!(warm_rb.rounds, cold_rb.rounds, "{tag}: rounds");
            assert_eq!(warm_rb.repositioned, cold_rb.repositioned, "{tag}: repositioned");
            session.commit(&app_b, &warm_rb.outcome.placement).unwrap();
            scheduler.commit(&app_b, &cold_rb.outcome.placement, &mut cold).unwrap();

            // Evacuate C off its first host.
            let assignment: Vec<Option<HostId>> =
                warm_c.placement.assignments().iter().copied().map(Some).collect();
            let failed = warm_c.placement.assignments()[0];
            let warm_ev = session.evacuate(&app_c, &assignment, &request, failed, 4).unwrap();
            let cold_ev =
                scheduler.evacuate(&app_c, &assignment, &mut cold, &request, failed, 4).unwrap();
            assert_outcomes_identical(
                &warm_ev.online.outcome,
                &cold_ev.online.outcome,
                &format!("{tag} evacuate c"),
            );
            assert_eq!(warm_ev.dead, cold_ev.dead, "{tag}: dead nodes");
            session.commit(&app_c, &warm_ev.online.outcome.placement).unwrap();
            scheduler.commit(&app_c, &cold_ev.online.outcome.placement, &mut cold).unwrap();
            assert_eq!(session.state(), &cold, "{tag}: final state");
        }
    }

    /// Replaying an identical request against an identical state must
    /// be served entirely from the session cache: the search trajectory
    /// is bit-identical, so every bound key recurs.
    #[test]
    fn identical_replay_is_fully_warm() {
        let infra = infra_flat(4, 8);
        let app = hub_app("app");
        for algorithm in [Algorithm::Greedy, Algorithm::BoundedAStar] {
            let request = PlacementRequest {
                algorithm,
                max_expansions: 2_000,
                ..PlacementRequest::default()
            };
            let mut session = SchedulerSession::new(&infra);
            let first = session.place(&app, &request).unwrap();
            assert!(first.stats.session_cache_misses > 0, "first request computes fresh");
            // Round-trip the state: commit then release restores every
            // availability value, so all keys match again.
            session.commit(&app, &first.placement).unwrap();
            session.release(&app, &first.placement).unwrap();
            let replay = session.place(&app, &request).unwrap();
            assert_eq!(replay.placement, first.placement);
            assert_eq!(replay.objective.to_bits(), first.objective.to_bits());
            assert_eq!(
                replay.stats.session_cache_misses,
                0,
                "{}: replay recomputed bounds it should have cached",
                request.algorithm.abbreviation()
            );
            assert!(replay.stats.session_cache_hits > 0);
            assert_eq!(
                replay.stats.session_dirty_hosts as usize,
                first.placement.distinct_hosts(),
                "commit+release journaled exactly the placement's hosts"
            );
        }
    }

    #[test]
    fn topology_signature_ignores_names_but_not_structure() {
        let a = hub_app("alpha");
        let b = hub_app("totally-different-name");
        assert_eq!(topology_signature(&a), topology_signature(&b));
        let c = chain_app("alpha");
        assert_ne!(topology_signature(&a), topology_signature(&c));
        // Same nodes, different bandwidth: structure changed.
        let mut t1 = TopologyBuilder::new("x");
        let u = t1.vm("u", 1, 1_024).unwrap();
        let v = t1.vm("v", 1, 1_024).unwrap();
        t1.link(u, v, Bandwidth::from_mbps(100)).unwrap();
        let mut t2 = TopologyBuilder::new("x");
        let u2 = t2.vm("u", 1, 1_024).unwrap();
        let v2 = t2.vm("v", 1, 1_024).unwrap();
        t2.link(u2, v2, Bandwidth::from_mbps(200)).unwrap();
        assert_ne!(
            topology_signature(&t1.build().unwrap()),
            topology_signature(&t2.build().unwrap())
        );
    }

    #[test]
    fn session_cache_rotates_generations_and_counts_evictions() {
        let mut cache = SessionCache::default();
        cache.begin_request();
        cache.insert((1, 10), 100);
        cache.insert((2, 20), 200);
        assert_eq!(cache.get((1, 10)), Some((100, false)), "same-generation hit is not warm");
        cache.begin_request();
        assert_eq!(cache.get((1, 10)), Some((100, true)), "earlier-generation hit is warm");
        // Fill past the cap: the current generation rotates to prev,
        // and the old prev (empty here) is discarded without loss.
        for i in 0..(SESSION_CACHE_CAP as u64) {
            cache.insert((3, i), i);
        }
        assert_eq!(cache.evictions(), 0, "first rotation discards an empty prev");
        // `(1, 10)` rotated into prev; a hit promotes it back.
        assert_eq!(cache.get((1, 10)), Some((100, true)));
        // Overflow again: now a non-empty prev is discarded.
        for i in 0..=(SESSION_CACHE_CAP as u64) {
            cache.insert((4, i), i);
        }
        assert!(cache.evictions() > 0);
        assert_eq!(cache.get((1, 10)), Some((100, true)), "promoted entry survived");
    }

    /// The satellite property test: a random commit/release/evacuate/
    /// reserve stream must (1) journal exactly the touched hosts,
    /// (2) bump epochs exactly once per refresh of a touched host,
    /// (3) keep every non-journaled summary byte-identical to a full
    /// rescan, and (4) stay bit-identical to a cold shadow scheduler —
    /// the stale-entry detector: any under-invalidation shows up as a
    /// diverging placement or a stale summary.
    #[test]
    fn journal_invalidates_exactly_the_touched_hosts() {
        let mut rng = SmallRng::seed_from_u64(0x5E55_104B);
        let infra = InfrastructureBuilder::flat(
            "dc",
            4,
            4,
            Resources::new(8, 16_384, 500),
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap();
        let scheduler = Scheduler::new(&infra);
        let request = PlacementRequest::default();

        for trial in 0u64..5 {
            let mut session = SchedulerSession::new(&infra);
            let mut shadow = CapacityState::new(&infra);
            let mut live: Vec<(ApplicationTopology, Placement)> = Vec::new();
            // Mirror bookkeeping: hosts journaled but not yet refreshed,
            // and the refresh count we expect per host.
            let mut pending: HashSet<usize> = HashSet::new();
            let mut expected_epochs = vec![0u64; infra.host_count()];
            let apply_refresh = |pending: &mut HashSet<usize>, epochs: &mut Vec<u64>| {
                for &h in pending.iter() {
                    epochs[h] += 1;
                }
                pending.clear();
            };

            for event in 0u64..12 {
                let what = format!("trial {trial} event {event}");
                match rng.gen_range(0u32..10) {
                    // Arrive (also the warm-replay probe).
                    0..=4 => {
                        let mut b = TopologyBuilder::new(format!("t{trial}e{event}"));
                        let n = rng.gen_range(2usize..5);
                        let ids: Vec<_> = (0..n)
                            .map(|i| {
                                b.vm(
                                    format!("v{i}"),
                                    rng.gen_range(1u32..4),
                                    1_024 * rng.gen_range(1u64..4),
                                )
                                .unwrap()
                            })
                            .collect();
                        for i in 0..n {
                            for j in (i + 1)..n {
                                if rng.gen_bool(0.5) {
                                    b.link(
                                        ids[i],
                                        ids[j],
                                        Bandwidth::from_mbps(rng.gen_range(10u64..150)),
                                    )
                                    .unwrap();
                                }
                            }
                        }
                        let topo = b.build().unwrap();
                        apply_refresh(&mut pending, &mut expected_epochs);
                        let warm = session.place(&topo, &request);
                        let cold = scheduler.place(&topo, &shadow, &request);
                        match (warm, cold) {
                            (Ok(w), Ok(c)) => {
                                assert_outcomes_identical(&w, &c, &what);
                                session.commit(&topo, &w.placement).unwrap();
                                scheduler.commit(&topo, &c.placement, &mut shadow).unwrap();
                                for &h in w.placement.assignments() {
                                    pending.insert(h.index());
                                }
                                if rng.gen_bool(0.3) {
                                    // Warm-replay probe: two identical
                                    // placements back to back — the
                                    // second must be fully cache-served.
                                    apply_refresh(&mut pending, &mut expected_epochs);
                                    let r1 = session.place(&topo, &request);
                                    let r2 = session.place(&topo, &request);
                                    if let (Ok(r1), Ok(r2)) = (r1, r2) {
                                        assert_eq!(r1.placement, r2.placement, "{what}: replay");
                                        assert_eq!(
                                            r2.stats.session_cache_misses, 0,
                                            "{what}: identical replay missed the cache"
                                        );
                                    }
                                }
                                live.push((topo, w.placement));
                            }
                            (Err(we), Err(ce)) => assert_eq!(we, ce, "{what}: errors differ"),
                            (w, c) => {
                                panic!("{what}: warm {w:?} vs cold {c:?} feasibility diverged")
                            }
                        }
                    }
                    // Depart.
                    5..=6 if !live.is_empty() => {
                        let idx = rng.gen_range(0..live.len());
                        let (topo, placement) = live.swap_remove(idx);
                        session.release(&topo, &placement).unwrap();
                        scheduler.release(&topo, &placement, &mut shadow).unwrap();
                        for &h in placement.assignments() {
                            pending.insert(h.index());
                        }
                    }
                    // Evacuate a live tenant's first host.
                    7 if !live.is_empty() => {
                        let idx = rng.gen_range(0..live.len());
                        let (topo, placement) = live.swap_remove(idx);
                        let assignment: Vec<Option<HostId>> =
                            placement.assignments().iter().copied().map(Some).collect();
                        let failed = placement.assignments()[0];
                        for &h in placement.assignments() {
                            pending.insert(h.index());
                        }
                        pending.insert(failed.index());
                        let warm = session.evacuate(&topo, &assignment, &request, failed, 4);
                        let cold = scheduler.evacuate(
                            &topo,
                            &assignment,
                            &mut shadow,
                            &request,
                            failed,
                            4,
                        );
                        // The first re-place round drains the journal.
                        apply_refresh(&mut pending, &mut expected_epochs);
                        match (warm, cold) {
                            (Ok(w), Ok(c)) => {
                                assert_outcomes_identical(
                                    &w.online.outcome,
                                    &c.online.outcome,
                                    &what,
                                );
                                assert_eq!(w.dead, c.dead, "{what}: dead");
                                let placement = w.online.outcome.placement;
                                session.commit(&topo, &placement).unwrap();
                                scheduler.commit(&topo, &placement, &mut shadow).unwrap();
                                for &h in placement.assignments() {
                                    pending.insert(h.index());
                                }
                                live.push((topo, placement));
                            }
                            (Err(we), Err(ce)) => assert_eq!(we, ce, "{what}: errors differ"),
                            (w, c) => {
                                panic!("{what}: warm {w:?} vs cold {c:?} evacuation diverged")
                            }
                        }
                    }
                    // Out-of-band reservation (stale-capacity race).
                    _ => {
                        let host = HostId::from_index(rng.gen_range(0..infra.host_count()) as u32);
                        let req = Resources::new(1, 256, 0);
                        let warm = session.reserve_node(host, req);
                        let cold = shadow.reserve_node(host, req);
                        assert_eq!(warm.is_ok(), cold.is_ok(), "{what}: reserve diverged");
                        if warm.is_ok() {
                            pending.insert(host.index());
                        }
                    }
                }

                // (1) The journal holds exactly the touched hosts.
                let journaled: HashSet<usize> =
                    session.pending_dirty_hosts().iter().map(|h| h.index()).collect();
                assert_eq!(journaled, pending, "{what}: journal mismatch");
                // (2) Epochs advanced exactly once per refreshed touch.
                for (h, &expected) in expected_epochs.iter().enumerate() {
                    assert_eq!(
                        session.host_epoch(HostId::from_index(h as u32)),
                        expected,
                        "{what}: epoch of host {h}"
                    );
                }
                // (3) Every non-journaled summary equals a full rescan;
                // journaled hosts are allowed to lag until refresh.
                for h in 0..infra.host_count() {
                    if pending.contains(&h) {
                        continue;
                    }
                    let id = HostId::from_index(h as u32);
                    let free = session.state.available(id);
                    let summary = session.shared.summaries[h];
                    assert_eq!(summary.free, free, "{what}: stale free summary, host {h}");
                    assert_eq!(
                        summary.nic_mbps,
                        session.state.nic_available(id).as_mbps(),
                        "{what}: stale nic summary, host {h}"
                    );
                    assert_eq!(
                        summary.avail_sig,
                        avail_signature(free),
                        "{what}: stale availability signature, host {h}"
                    );
                }
                // (4) The session state never drifts from the shadow.
                assert_eq!(session.state(), &shadow, "{what}: state drift");
            }
        }
    }

    fn wal_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ostro-session-wal-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// The tentpole durability contract at the session level: a full
    /// mutation stream (commit, release, raw grabs, evacuation with
    /// its quarantine) journaled through a WAL — with snapshots firing
    /// mid-stream — recovers to bit-identical books, and a session
    /// resumed from the recovery makes bit-identical decisions.
    #[test]
    fn session_wal_recovery_is_bit_identical() {
        use crate::wal::{recover, Wal, WalOptions};

        let infra = infra_flat(4, 8);
        let request = PlacementRequest::default();
        let dir = wal_dir("roundtrip");
        let (walh, fresh) =
            Wal::open(&dir, &infra, WalOptions { snapshot_every: 3, ..WalOptions::default() })
                .unwrap();
        assert_eq!(fresh.seq, 0);
        let mut session = SchedulerSession::new(&infra);
        session.attach_wal(walh);

        let app_a = hub_app("a");
        let app_b = chain_app("b");
        let out_a = session.place(&app_a, &request).unwrap();
        session.commit(&app_a, &out_a.placement).unwrap();
        let out_b = session.place(&app_b, &request).unwrap();
        session.commit(&app_b, &out_b.placement).unwrap();
        session.release(&app_a, &out_a.placement).unwrap();
        session.reserve_node(HostId::from_index(5), Resources::new(1, 512, 0)).unwrap();
        session.release_node(HostId::from_index(5), Resources::new(1, 512, 0)).unwrap();
        let assignment: Vec<Option<HostId>> =
            out_b.placement.assignments().iter().copied().map(Some).collect();
        let failed = out_b.placement.assignments()[0];
        let ev = session.evacuate(&app_b, &assignment, &request, failed, 4).unwrap();
        session.commit(&app_b, &ev.online.outcome.placement).unwrap();
        assert!(session.wal_error().is_none(), "journaling must not have failed");
        let wal_back = session.detach_wal().unwrap();
        assert!(wal_back.snapshots_taken() > 0, "the cadence must have compacted mid-stream");
        drop(wal_back);

        let recovery = recover(&dir, &infra).unwrap();
        assert_eq!(&recovery.state, session.state(), "recovered books diverge");
        assert_eq!(recovery.quarantined, session.quarantined_hosts());
        assert_eq!(recovery.quarantined, vec![failed]);
        assert!(!recovery.truncated_tail);

        // A resumed session decides bit-identically to the survivor.
        let mut resumed = SchedulerSession::with_recovery(&infra, &recovery);
        assert!(resumed.is_quarantined(failed));
        let app_c = hub_app("c");
        let survivor = session.place(&app_c, &request).unwrap();
        let after_crash = resumed.place(&app_c, &request).unwrap();
        assert_outcomes_identical(&after_crash, &survivor, "post-recovery placement");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The anti-entropy sweep classifies all three divergence kinds,
    /// repairs every one to the ground truth, journals the repairs,
    /// and a second sweep finds nothing.
    #[test]
    fn reconcile_classifies_and_repairs_every_divergence() {
        use crate::reconcile::HostTruth;
        use crate::wal::{recover, Wal, WalOptions};

        let infra = infra_flat(2, 4);
        let dir = wal_dir("reconcile");
        let (walh, _) = Wal::open(&dir, &infra, WalOptions::default()).unwrap();
        let mut session = SchedulerSession::new(&infra);
        session.attach_wal(walh);
        let unit = Resources::new(2, 2_048, 50);

        // Host 0: two booked instances, truth has one → orphaned.
        session.reserve_node(HostId::from_index(0), unit).unwrap();
        session.reserve_node(HostId::from_index(0), unit).unwrap();
        // Host 1: one booked, truth has two → leaked release.
        session.reserve_node(HostId::from_index(1), unit).unwrap();
        // Host 2: counts agree, footprint doesn't → stale-race ghost.
        session.reserve_node(HostId::from_index(2), unit).unwrap();
        // Host 3: quarantined — skipped even if truth disagrees.
        session.quarantine_host(HostId::from_index(3));

        let truth = vec![
            HostTruth { host: HostId::from_index(0), used: unit, instances: 1 },
            HostTruth { host: HostId::from_index(1), used: unit + unit, instances: 2 },
            HostTruth {
                host: HostId::from_index(2),
                used: Resources::new(4, 4_096, 100),
                instances: 1,
            },
            HostTruth { host: HostId::from_index(3), used: Resources::ZERO, instances: 0 },
            HostTruth { host: HostId::from_index(4), used: Resources::ZERO, instances: 0 },
        ];
        let report = session.reconcile(&truth).unwrap();
        assert_eq!(report.scanned, 5);
        assert_eq!(report.skipped_quarantined, 1);
        assert_eq!(report.repaired(), 3);
        assert_eq!(report.orphaned(), 1);
        assert_eq!(report.leaked(), 1);
        assert_eq!(report.ghosts(), 1);
        assert_eq!(report.divergences[0].kind, DivergenceKind::OrphanedReservation);
        assert_eq!(report.divergences[1].kind, DivergenceKind::LeakedRelease);
        assert_eq!(report.divergences[2].kind, DivergenceKind::StaleRaceGhost);

        // Books now match the truth exactly.
        for t in &truth[..3] {
            let capacity = infra.host(t.host).capacity();
            assert_eq!(session.state().available(t.host), capacity - t.used, "host {t:?}");
            assert_eq!(session.state().node_count(t.host), t.instances, "host {t:?}");
        }
        let clean = session.reconcile(&truth).unwrap();
        assert!(clean.divergences.is_empty(), "repairs must converge in one sweep");

        // Cumulative counters surface through SearchStats.
        let out = session.place(&hub_app("probe"), &PlacementRequest::default()).unwrap();
        assert_eq!(out.stats.reconcile_orphaned, 1);
        assert_eq!(out.stats.reconcile_leaked, 1);
        assert_eq!(out.stats.reconcile_ghosts, 1);

        // The corrections were journaled: a recovered session holds
        // the repaired books, not the divergent ones.
        assert!(session.wal_error().is_none());
        drop(session.detach_wal());
        let recovery = recover(&dir, &infra).unwrap();
        assert_eq!(&recovery.state, session.state(), "journaled repairs must replay");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A sweep that errors partway keeps its earlier repairs — and
    /// those repairs must already be in the journal, or a recovery
    /// would silently rebuild the pre-repair books.
    #[test]
    fn reconcile_error_partway_keeps_journal_and_books_in_step() {
        use crate::reconcile::HostTruth;
        use crate::wal::{recover, Wal, WalOptions};

        let infra = infra_flat(2, 4);
        let dir = wal_dir("reconcile-err");
        let (walh, _) = Wal::open(&dir, &infra, WalOptions::default()).unwrap();
        let mut session = SchedulerSession::new(&infra);
        session.attach_wal(walh);
        let unit = Resources::new(2, 2_048, 50);
        session.reserve_node(HostId::from_index(0), unit).unwrap();

        let truth = vec![
            // A repairable divergence, swept first.
            HostTruth { host: HostId::from_index(0), used: unit + unit, instances: 2 },
            // An impossible truth: used exceeds the host's capacity.
            HostTruth {
                host: HostId::from_index(1),
                used: Resources::new(64, 1 << 20, 10_000),
                instances: 1,
            },
        ];
        assert!(session.reconcile(&truth).is_err(), "oversized truth must fail the sweep");
        assert_eq!(
            session.state().node_count(HostId::from_index(0)),
            2,
            "the repair preceding the failure is kept"
        );
        assert!(session.wal_error().is_none());
        drop(session.detach_wal());
        let recovery = recover(&dir, &infra).unwrap();
        assert_eq!(&recovery.state, session.state(), "kept repairs must be journaled too");
        assert_eq!(recovery.state.node_count(HostId::from_index(0)), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// After any mix of session mutations — commit, release, evacuate,
    /// direct reserve/release, reconcile repairs — the dirty-host
    /// refresh must leave the shared capacity table's columns
    /// bit-identical to a table freshly built from the live state.
    #[test]
    fn shared_table_matches_fresh_rebuild_after_session_churn() {
        use crate::reconcile::HostTruth;

        fn assert_table_fresh(session: &mut SchedulerSession<'_>, what: &str) {
            session.refresh();
            let fresh = CapacityTable::new(session.infrastructure(), session.state());
            let table = &session.shared.table;
            assert_eq!(table.vcpus(), fresh.vcpus(), "{what}: vcpus column");
            assert_eq!(table.memory_mb(), fresh.memory_mb(), "{what}: memory column");
            assert_eq!(table.disk_gb(), fresh.disk_gb(), "{what}: disk column");
            assert_eq!(table.nic_mbps(), fresh.nic_mbps(), "{what}: nic column");
            assert_eq!(table.epochs(), fresh.epochs(), "{what}: epoch column");
            assert_eq!(table.group_sigs(), fresh.group_sigs(), "{what}: signature column");
            assert_eq!(table.active(), fresh.active(), "{what}: active column");
        }

        let infra = infra_flat(3, 4);
        let mut session = SchedulerSession::new(&infra);
        let request = PlacementRequest::default();

        let app_a = hub_app("a");
        let placed_a = session.place(&app_a, &request).unwrap();
        session.commit(&app_a, &placed_a.placement).unwrap();
        assert_table_fresh(&mut session, "after commit a");

        let app_b = chain_app("b");
        let placed_b = session.place(&app_b, &request).unwrap();
        session.commit(&app_b, &placed_b.placement).unwrap();
        assert_table_fresh(&mut session, "after commit b");

        session.release(&app_a, &placed_a.placement).unwrap();
        assert_table_fresh(&mut session, "after release a");

        let assignment: Vec<Option<HostId>> =
            placed_b.placement.assignments().iter().copied().map(Some).collect();
        let failed = placed_b.placement.assignments()[0];
        let ev = session.evacuate(&app_b, &assignment, &request, failed, 4).unwrap();
        session.commit(&app_b, &ev.online.outcome.placement).unwrap();
        assert_table_fresh(&mut session, "after evacuation");

        let unit = Resources::new(2, 2_048, 50);
        session.reserve_node(HostId::from_index(5), unit).unwrap();
        assert_table_fresh(&mut session, "after direct reserve");

        // Anti-entropy repair: truth says host 5 runs two instances.
        let truth =
            vec![HostTruth { host: HostId::from_index(5), used: unit + unit, instances: 2 }];
        session.reconcile(&truth).unwrap();
        assert_table_fresh(&mut session, "after reconcile");

        session.release_node(HostId::from_index(5), unit + unit).unwrap();
        assert_table_fresh(&mut session, "after direct release");
    }

    /// The sharded coarse stage's property test: after any randomized
    /// commit / release / evacuate / direct-reserve / reconcile
    /// sequence, the journal-maintained pod digests are *bit-identical*
    /// to digests rebuilt from scratch — at every event against the
    /// current summaries (digests and summaries move in lockstep), and
    /// after every journal drain against the live state itself.
    #[test]
    fn pod_digests_match_scratch_rebuild_after_random_churn() {
        use crate::reconcile::HostTruth;
        use crate::shard::PodDigests;

        // 3 pods × 2 racks × 4 hosts so digests actually partition.
        let mut b = InfrastructureBuilder::new();
        let site = b.site("dc", Bandwidth::from_gbps(400));
        for p in 0..3 {
            let pod = b.pod(site, format!("p{p}"), Bandwidth::from_gbps(200)).unwrap();
            for r in 0..2 {
                let rack =
                    b.rack_in_pod(pod, format!("p{p}r{r}"), Bandwidth::from_gbps(100)).unwrap();
                for h in 0..4 {
                    b.host(
                        rack,
                        format!("p{p}r{r}h{h}"),
                        Resources::new(8, 16_384, 500),
                        Bandwidth::from_gbps(10),
                    )
                    .unwrap();
                }
            }
        }
        let infra = b.build().unwrap();
        let request = PlacementRequest::default();
        let mut rng = SmallRng::seed_from_u64(0xD16E_5700);

        for trial in 0u64..4 {
            let mut session = SchedulerSession::new(&infra);
            let mut live: Vec<(ApplicationTopology, Placement)> = Vec::new();
            for event in 0u64..25 {
                let what = format!("trial {trial} event {event}");
                match rng.gen_range(0u32..10) {
                    // Arrive: place and commit a small random app.
                    0..=4 => {
                        let mut b = TopologyBuilder::new(format!("t{trial}e{event}"));
                        let n = rng.gen_range(2usize..5);
                        let ids: Vec<_> = (0..n)
                            .map(|i| {
                                b.vm(
                                    format!("v{i}"),
                                    rng.gen_range(1u32..4),
                                    1_024 * rng.gen_range(1u64..4),
                                )
                                .unwrap()
                            })
                            .collect();
                        for w in ids.windows(2) {
                            b.link(w[0], w[1], Bandwidth::from_mbps(rng.gen_range(10u64..150)))
                                .unwrap();
                        }
                        let topo = b.build().unwrap();
                        if let Ok(out) = session.place(&topo, &request) {
                            session.commit(&topo, &out.placement).unwrap();
                            live.push((topo, out.placement));
                        }
                    }
                    // Depart.
                    5..=6 if !live.is_empty() => {
                        let idx = rng.gen_range(0..live.len());
                        let (topo, placement) = live.swap_remove(idx);
                        session.release(&topo, &placement).unwrap();
                    }
                    // Evacuate a live tenant's first host.
                    7 if !live.is_empty() => {
                        let idx = rng.gen_range(0..live.len());
                        let (topo, placement) = live.swap_remove(idx);
                        let assignment: Vec<Option<HostId>> =
                            placement.assignments().iter().copied().map(Some).collect();
                        let failed = placement.assignments()[0];
                        if let Ok(ev) = session.evacuate(&topo, &assignment, &request, failed, 4) {
                            let placement = ev.online.outcome.placement;
                            session.commit(&topo, &placement).unwrap();
                            live.push((topo, placement));
                        }
                    }
                    // Out-of-band reservation.
                    8 => {
                        let host = HostId::from_index(rng.gen_range(0..infra.host_count()) as u32);
                        let _ = session.reserve_node(host, Resources::new(1, 256, 0));
                    }
                    // Anti-entropy repair toward a random (in-capacity)
                    // truth for one host.
                    _ => {
                        let host = HostId::from_index(rng.gen_range(0..infra.host_count()) as u32);
                        let used = Resources::new(
                            rng.gen_range(0u32..5),
                            1_024 * rng.gen_range(0u64..5),
                            10 * rng.gen_range(0u64..5),
                        );
                        let instances =
                            if used == Resources::ZERO { 0 } else { rng.gen_range(1u32..3) };
                        session.reconcile(&[HostTruth { host, used, instances }]).unwrap();
                    }
                }
                // Digests and summaries move in lockstep: folding the
                // current summaries from scratch must reproduce the
                // incrementally maintained digests exactly — even with
                // journaled-but-unrefreshed hosts outstanding.
                assert_eq!(
                    session.shared.pods,
                    PodDigests::new(&infra, &session.shared.summaries),
                    "{what}: digests diverged from a summary fold"
                );
                // After a drain, the summaries equal the live state, so
                // the digests must too.
                session.refresh();
                assert_eq!(
                    session.shared.pods,
                    PodDigests::from_state(&infra, session.state()),
                    "{what}: digests diverged from a live-state rebuild"
                );
            }
        }
    }

    /// Satellite regression: a release on a quarantined host must not
    /// resurrect its capacity. The raw `CapacityState` stores no
    /// quarantine flag, so before the session-side re-freeze a tenant
    /// departing normally after its host crashed restored the host's
    /// availability — and the pod digests then ranked a pod by
    /// capacity nothing can use. After the fix the digests stay
    /// identical to a from-scratch rebuild and both the plain and the
    /// sharded search refuse to land on the host.
    #[test]
    fn release_on_quarantined_host_does_not_resurrect_capacity() {
        use crate::shard::PodDigests;

        // 2 pods × 1 rack × 2 hosts so the digest pre-selection has
        // real pods to rank.
        let mut b = InfrastructureBuilder::new();
        let site = b.site("dc", Bandwidth::from_gbps(400));
        for p in 0..2 {
            let pod = b.pod(site, format!("p{p}"), Bandwidth::from_gbps(200)).unwrap();
            let rack = b.rack_in_pod(pod, format!("p{p}r0"), Bandwidth::from_gbps(100)).unwrap();
            for h in 0..2 {
                b.host(
                    rack,
                    format!("p{p}r0h{h}"),
                    Resources::new(8, 16_384, 500),
                    Bandwidth::from_gbps(10),
                )
                .unwrap();
            }
        }
        let infra = b.build().unwrap();
        let request = PlacementRequest::default();
        let mut session = SchedulerSession::new(&infra);

        // Fill every host down to 2 free vcpus, keeping handles so the
        // victim's tenant can depart after the quarantine.
        let filler = |name: &str| {
            let mut b = TopologyBuilder::new(name);
            b.vm("big", 6, 4_096).unwrap();
            b.build().unwrap()
        };
        let mut placed = Vec::new();
        for i in 0..infra.host_count() {
            let app = filler(&format!("f{i}"));
            let out = session.place(&app, &request).unwrap();
            session.commit(&app, &out.placement).unwrap();
            placed.push((app, out.placement));
        }
        let (victim_app, victim_placement) = placed.swap_remove(0);
        let victim = victim_placement.assignments()[0];

        // Crash the victim's host, then let its tenant depart normally
        // — the departure's release must not thaw the frozen books.
        session.quarantine_host(victim);
        session.release(&victim_app, &victim_placement).unwrap();
        session.refresh();
        assert_eq!(
            session.state().available(victim),
            Resources::ZERO,
            "release resurrected quarantined capacity"
        );
        assert_eq!(session.state().nic_available(victim).as_mbps(), 0);
        assert_eq!(session.shared.summaries[victim.index()].free, Resources::ZERO);

        // Digest invariants: the incrementally maintained digests
        // equal both a summary fold and a live-state rebuild.
        assert_eq!(session.shared.pods, PodDigests::new(&infra, &session.shared.summaries));
        assert_eq!(session.shared.pods, PodDigests::from_state(&infra, session.state()));

        // Only the phantom capacity could fit this app: every live
        // host has 2 free vcpus, the quarantined host would have 6 if
        // resurrected. Sharded and unsharded search must both refuse.
        let mut b = TopologyBuilder::new("needs-phantom");
        b.vm("n", 4, 2_048).unwrap();
        let needy = b.build().unwrap();
        assert!(session.place(&needy, &request).is_err(), "phantom capacity admitted a tenant");
        let sharded = PlacementRequest { shard: true, ..request.clone() };
        assert!(session.place(&needy, &sharded).is_err(), "sharded screen ranked a frozen pod");

        // A small app still fits elsewhere — and never on the victim.
        let mut b = TopologyBuilder::new("fits");
        b.vm("s", 2, 1_024).unwrap();
        let small = b.build().unwrap();
        let out = session.place(&small, &sharded).unwrap();
        assert!(!out.placement.assignments().contains(&victim));
    }

    /// Satellite regression: evacuating a host none of the tenant's
    /// replicas live on is a cheap no-op — only the failed host itself
    /// is journaled (for the quarantine); the tenant's hosts keep
    /// their epochs, summaries, and warm cache entries.
    #[test]
    fn evacuate_of_untouched_host_keeps_epochs_and_skips_search() {
        let infra = infra_flat(4, 8);
        let request = PlacementRequest::default();
        let mut session = SchedulerSession::new(&infra);

        let app = hub_app("a");
        let out = session.place(&app, &request).unwrap();
        session.commit(&app, &out.placement).unwrap();
        session.refresh();

        let failed = (0..infra.host_count())
            .map(|i| HostId::from_index(i as u32))
            .find(|h| !out.placement.assignments().contains(h))
            .expect("an untouched host exists");
        let epochs_before: Vec<u64> = (0..infra.host_count())
            .map(|i| session.host_epoch(HostId::from_index(i as u32)))
            .collect();

        let assignment: Vec<Option<HostId>> =
            out.placement.assignments().iter().copied().map(Some).collect();
        let ev = session.evacuate(&app, &assignment, &request, failed, 4).unwrap();

        assert!(ev.dead.is_empty());
        assert_eq!(ev.online.rounds, 0, "no search rounds may run");
        assert!(ev.online.repositioned.is_empty());
        assert_eq!(ev.online.outcome.placement, out.placement, "the tenant must not move");
        assert_eq!(ev.online.outcome.stats.expanded, 0, "no search may run");
        assert_eq!(
            session.pending_dirty_hosts(),
            &[failed],
            "only the failed host may be journaled"
        );

        session.refresh();
        for i in 0..infra.host_count() {
            let host = HostId::from_index(i as u32);
            let expected = if host == failed { epochs_before[i] + 1 } else { epochs_before[i] };
            assert_eq!(session.host_epoch(host), expected, "epoch of host {i}");
        }
        assert!(session.is_quarantined(failed));

        // Repeating the evacuation for a second unaffected tenant is
        // equally cheap: the quarantine is idempotent, so nothing at
        // all is journaled.
        let ev2 = session.evacuate(&app, &assignment, &request, failed, 4).unwrap();
        assert_eq!(ev2.online.outcome.placement, out.placement);
        assert!(session.pending_dirty_hosts().is_empty(), "idempotent re-quarantine journaled");
    }

    /// Satellite drill: crash mid-defrag-sweep. Every maintenance move
    /// is one atomic `Migrate` record, so (a) a recovery taken between
    /// migration records rebuilds books bit-identical to the live
    /// session, (b) any byte-truncated journal prefix — the image an
    /// actual crash leaves — recovers cleanly with monotonically
    /// shorter replay, and (c) a session resumed from the recovery
    /// finishes the interrupted sweep with balanced books: releasing
    /// every ledger tenant drains the fleet to zero.
    #[test]
    fn wal_crash_drill_mid_defrag_sweep() {
        use crate::defrag::{
            FragStats, MaintenanceConfig, MaintenanceLoad, MaintenancePlane, TenantRecord,
        };
        use crate::wal::{recover, Wal, WalOptions, WAL_FILE};
        use std::sync::Arc;

        let infra = infra_flat(2, 6);
        let request = PlacementRequest::default();
        let dir = wal_dir("defrag-drill");
        // No snapshot compaction: the drill truncates the raw journal.
        let (walh, _) = Wal::open(
            &dir,
            &infra,
            WalOptions { snapshot_every: u64::MAX, ..WalOptions::default() },
        )
        .unwrap();
        let mut session = SchedulerSession::new(&infra);
        session.attach_wal(walh);

        // Churn-decay: commit 10 two-node tenants, then depart every
        // other one, leaving the survivors scattered.
        let pair = |name: &str| {
            let mut b = TopologyBuilder::new(name);
            let a = b.vm("a", 2, 2_048).unwrap();
            let c = b.vm("c", 2, 2_048).unwrap();
            b.link(a, c, Bandwidth::from_mbps(200)).unwrap();
            b.build().unwrap()
        };
        let mut ledger: Vec<TenantRecord> = Vec::new();
        for i in 0..10u64 {
            let app = pair(&format!("t{i}"));
            let out = session.place(&app, &request).unwrap();
            session.commit(&app, &out.placement).unwrap();
            ledger.push(TenantRecord { id: i, topology: Arc::new(app), placement: out.placement });
        }
        let mut kept = Vec::new();
        for (i, t) in ledger.drain(..).enumerate() {
            if i % 2 == 0 {
                session.release(&t.topology, &t.placement).unwrap();
            } else {
                kept.push(t);
            }
        }
        let mut ledger = kept;

        // A tiny per-sweep budget guarantees the sweep is still
        // mid-flight when the crash hits.
        let cfg = MaintenanceConfig {
            sweep_budget: 2,
            sweep_candidates: 4,
            ..MaintenanceConfig::default()
        };
        let mut plane = MaintenancePlane::new(cfg.clone(), infra.host_count());
        let beat_all = |plane: &mut MaintenancePlane, tick: u64| {
            for i in 0..infra.host_count() {
                plane.heartbeat(HostId::from_index(i as u32), tick);
            }
        };
        for tick in 0..3u64 {
            beat_all(&mut plane, tick);
            plane.tick(&mut session, &mut ledger, tick, MaintenanceLoad::default());
        }
        let migrations_at_crash = plane.migration_log().len();
        assert!(migrations_at_crash > 0, "the sweep must have started moving tenants");

        // Crash. The dropped journal is the crash image.
        assert!(session.wal_error().is_none());
        drop(session.detach_wal());

        // (a) Recovered ≡ live, mid-sweep.
        let recovery = recover(&dir, &infra).unwrap();
        assert_eq!(&recovery.state, session.state(), "mid-sweep recovery diverges from live");
        assert_eq!(recovery.quarantined, session.quarantined_hosts());

        // (b) Every byte-truncated prefix — a crash can land anywhere
        // between (or inside) migration records — recovers cleanly,
        // with replay length monotone in the prefix length.
        let image = std::fs::read(dir.join(WAL_FILE)).unwrap();
        let scratch = wal_dir("defrag-drill-prefix");
        std::fs::create_dir_all(&scratch).unwrap();
        let mut last_replayed = 0u64;
        for cut in (0..image.len()).step_by(7).chain(std::iter::once(image.len())) {
            std::fs::write(scratch.join(WAL_FILE), &image[..cut]).unwrap();
            let partial = recover(&scratch, &infra).unwrap();
            assert!(
                partial.records_replayed >= last_replayed || partial.records_replayed == 0,
                "replay went backwards at cut {cut}"
            );
            last_replayed = partial.records_replayed.max(last_replayed);
        }
        assert_eq!(last_replayed, recovery.records_replayed);
        let _ = std::fs::remove_dir_all(&scratch);

        // (c) Resume from the recovery and finish the sweep: the
        // resumed plane keeps consolidating, and afterwards releasing
        // every ledger tenant drains the books to zero — no tenant was
        // half-moved, no capacity leaked.
        let (walh, recovered) = Wal::open(
            &dir,
            &infra,
            WalOptions { snapshot_every: u64::MAX, ..WalOptions::default() },
        )
        .unwrap();
        let mut resumed = SchedulerSession::with_recovery(&infra, &recovered);
        resumed.attach_wal(walh);
        let mut plane2 = MaintenancePlane::new(cfg, infra.host_count());
        for tick in 3..12u64 {
            beat_all(&mut plane2, tick);
            plane2.tick(&mut resumed, &mut ledger, tick, MaintenanceLoad::default());
        }
        let after = FragStats::compute(&infra, resumed.state(), &ledger);
        assert_eq!(after.active_hosts, resumed.state().active_host_count());
        for t in &ledger {
            resumed.release(&t.topology, &t.placement).unwrap_or_else(|e| {
                panic!("ledger tenant {} no longer releases cleanly: {e}", t.id)
            });
        }
        assert_eq!(resumed.state().active_host_count(), 0, "books must balance");
        assert_eq!(resumed.state().total_reserved_bandwidth(&infra).as_mbps(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
