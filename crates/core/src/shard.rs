//! Two-level sharded placement: a pod-level coarse stage in front of
//! the exact EG/BA\*/DBA\* search.
//!
//! Every pod carries an aggregate [`PodDigest`] — capacity sums, a
//! free-slot histogram, and NIC headroom, all folded from the same
//! per-host availability the session's [`HostSummary`] journal tracks.
//! Digests are integer-only sums and bucket counts, so the session's
//! dirty-host journal maintains them incrementally (subtract the old
//! summary's contribution, add the new one) with *bit-exact* equality
//! to a from-scratch rebuild — the invariant the randomized
//! maintenance property test pins.
//!
//! A sharded request scores every pod's digest against the topology's
//! aggregate footprint, keeps the top-K candidates, and runs the
//! requested exact search restricted to each candidate pod's
//! contiguous host range — in parallel on the scoring pool when the
//! request allows. The best feasible per-pod result wins
//! (deterministically: objective, then coarse rank). Requests that
//! cannot shard — pinned nodes, a single or non-contiguous pod layout,
//! K covering every pod, or no feasible candidate pod — fall back to
//! the plain unsharded search, which is bit-identical to `shard:
//! false` by construction.

use std::ops::Range;
use std::sync::Mutex;
use std::time::Instant;

use ostro_datacenter::{CapacityState, HostId, Infrastructure};
use ostro_model::{ApplicationTopology, Resources};

use crate::error::PlacementError;
use crate::placement::{PlacementOutcome, SearchStats};
use crate::pool::ScoringPool;
use crate::request::{PlacementRequest, DEFAULT_PODS_CONSIDERED};
use crate::scheduler::{run_algorithm, Scheduler};
use crate::search::{resolve_score_threads, Ctx};
use crate::session::{HostSummary, SessionShared};

/// Buckets of the free-vCPU histogram: bucket 0 holds exhausted hosts,
/// bucket `k >= 1` hosts with free vCPUs in `[2^(k-1), 2^k)`, and the
/// top bucket is open-ended.
pub(crate) const SLOT_BUCKETS: usize = 8;

/// Aggregate availability of one pod: sums and bucket counts only —
/// every quantity is exactly maintainable by subtracting a host's old
/// contribution and adding its new one, which is what keeps the
/// incremental journal bit-identical to a rebuild.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct PodDigest {
    /// Hosts in the pod (static).
    pub hosts: u32,
    /// Sum of free vCPUs across the pod.
    pub free_vcpus: u64,
    /// Sum of free memory (MB).
    pub free_memory_mb: u64,
    /// Sum of free disk (GB).
    pub free_disk_gb: u64,
    /// Sum of NIC uplink headroom (Mbps) — the pod's aggregate
    /// intra-pod bandwidth attach capacity.
    pub nic_mbps: u64,
    /// Free-slot histogram over per-host free vCPUs (see
    /// [`SLOT_BUCKETS`]).
    pub slots: [u32; SLOT_BUCKETS],
}

impl PodDigest {
    /// The histogram bucket a host with `vcpus` free lands in.
    fn bucket(vcpus: u32) -> usize {
        if vcpus == 0 {
            0
        } else {
            ((32 - vcpus.leading_zeros()) as usize).min(SLOT_BUCKETS - 1)
        }
    }

    /// The smallest free-vCPU count a host in bucket `k` can have.
    fn bucket_floor(k: usize) -> u32 {
        if k == 0 {
            0
        } else {
            1 << (k - 1)
        }
    }

    /// Adds one host's availability to the digest.
    fn admit(&mut self, free: Resources, nic_mbps: u64) {
        self.free_vcpus += u64::from(free.vcpus);
        self.free_memory_mb += free.memory_mb;
        self.free_disk_gb += free.disk_gb;
        self.nic_mbps += nic_mbps;
        self.slots[Self::bucket(free.vcpus)] += 1;
    }

    /// Removes one host's previously admitted availability.
    fn retire(&mut self, free: Resources, nic_mbps: u64) {
        self.free_vcpus -= u64::from(free.vcpus);
        self.free_memory_mb -= free.memory_mb;
        self.free_disk_gb -= free.disk_gb;
        self.nic_mbps -= nic_mbps;
        self.slots[Self::bucket(free.vcpus)] -= 1;
    }

    /// Hosts guaranteed by their bucket floor to have at least `vcpus`
    /// free (a conservative slot count — exact per-host counts would
    /// not be incrementally maintainable as cheaply).
    fn slots_at_least(&self, vcpus: u32) -> u64 {
        (0..SLOT_BUCKETS)
            .filter(|&k| Self::bucket_floor(k) >= vcpus)
            .map(|k| u64::from(self.slots[k]))
            .sum()
    }
}

/// All pods' digests plus the host → pod map and per-pod host-id
/// ranges, kept incrementally current by whoever owns the per-host
/// summaries (the session's dirty journal, a batch view's speculative
/// refresh) via [`update`](Self::update).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PodDigests {
    /// Host index → pod ordinal.
    host_pod: Vec<u32>,
    /// Per pod: the contiguous `[lo, hi)` host-index range (empty when
    /// the pod has no hosts, meaningless when `contiguous` is false).
    ranges: Vec<Range<u32>>,
    digests: Vec<PodDigest>,
    /// Whether every pod's hosts occupy one contiguous id range — the
    /// precondition for restricting the exact search to a pod by host
    /// range. Builders emit hosts pod-by-pod so this holds for every
    /// generated fleet; a hand-built interleaved layout falls back.
    contiguous: bool,
}

impl PodDigests {
    /// Digests folded from a session's host summaries.
    pub(crate) fn new(infra: &Infrastructure, summaries: &[HostSummary]) -> Self {
        Self::build(infra, |i| {
            let s = &summaries[i];
            (s.free, s.nic_mbps)
        })
    }

    /// Digests folded straight from live capacity state (the one-shot,
    /// sessionless path — a full O(hosts) scan).
    pub(crate) fn from_state(infra: &Infrastructure, state: &CapacityState) -> Self {
        Self::build(infra, |i| {
            let host = infra.hosts()[i].id();
            (state.available(host), state.nic_available(host).as_mbps())
        })
    }

    fn build(infra: &Infrastructure, avail: impl Fn(usize) -> (Resources, u64)) -> Self {
        let pod_count = infra.pods().len();
        let n = infra.host_count();
        let mut host_pod = vec![0u32; n];
        let mut digests = vec![PodDigest::default(); pod_count];
        // (min, max) host index seen per pod; hosts counted in the
        // digest itself.
        let mut extents: Vec<Option<(u32, u32)>> = vec![None; pod_count];
        for (i, slot) in host_pod.iter_mut().enumerate() {
            let host = HostId::from_index(i as u32);
            let (_, pod, _) = infra.location(host);
            let p = pod.index();
            *slot = p as u32;
            let (free, nic) = avail(i);
            digests[p].hosts += 1;
            digests[p].admit(free, nic);
            extents[p] = Some(match extents[p] {
                None => (i as u32, i as u32),
                Some((lo, hi)) => (lo.min(i as u32), hi.max(i as u32)),
            });
        }
        let mut contiguous = true;
        let ranges = extents
            .iter()
            .zip(&digests)
            .map(|(extent, d)| match extent {
                Some((lo, hi)) => {
                    if hi - lo + 1 != d.hosts {
                        contiguous = false;
                    }
                    *lo..hi + 1
                }
                None => 0..0,
            })
            .collect();
        PodDigests { host_pod, ranges, digests, contiguous }
    }

    /// Replaces `host`'s contribution: its pod's digest retires the old
    /// summary and admits the new one — the incremental half of the
    /// rebuild-equals-journal invariant.
    pub(crate) fn update(&mut self, host: usize, old: &HostSummary, new: &HostSummary) {
        let d = &mut self.digests[self.host_pod[host] as usize];
        d.retire(old.free, old.nic_mbps);
        d.admit(new.free, new.nic_mbps);
    }

    pub(crate) fn pod_count(&self) -> usize {
        self.digests.len()
    }

    pub(crate) fn contiguous(&self) -> bool {
        self.contiguous
    }

    /// The contiguous host-index range of pod `p`.
    fn range(&self, p: usize) -> Range<usize> {
        let r = &self.ranges[p];
        r.start as usize..r.end as usize
    }

    #[cfg(test)]
    pub(crate) fn digest(&self, p: usize) -> &PodDigest {
        &self.digests[p]
    }

    /// The coarse stage: pods whose digests plausibly admit
    /// `footprint`, ranked best-first — most large-enough free slots,
    /// then most free compute, then most NIC headroom, ties toward the
    /// lower pod id — truncated to the top `k`. Purely integer
    /// comparisons on digests, so selection is deterministic and
    /// O(pods log pods) regardless of fleet size.
    fn select(&self, footprint: &Footprint, k: usize) -> Vec<usize> {
        let key = |p: usize| {
            let d = &self.digests[p];
            (d.slots_at_least(footprint.max_node_vcpus), d.free_vcpus, d.nic_mbps)
        };
        let mut candidates: Vec<usize> =
            (0..self.digests.len()).filter(|&p| self.admits(p, footprint)).collect();
        candidates.sort_by(|&a, &b| key(b).cmp(&key(a)).then(a.cmp(&b)));
        candidates.truncate(k);
        candidates
    }

    /// Optimistic pod-level feasibility: aggregate free resources cover
    /// the topology's totals, the NIC headroom sum covers the total
    /// link bandwidth, and at least one host can take the largest node.
    /// Optimistic by design — a pod passing this screen may still fail
    /// exact search (the fallback handles that); a pod failing it is
    /// pruned without ever being swept.
    fn admits(&self, p: usize, f: &Footprint) -> bool {
        let d = &self.digests[p];
        d.free_vcpus >= f.total_vcpus
            && d.free_memory_mb >= f.total_memory_mb
            && d.free_disk_gb >= f.total_disk_gb
            && d.nic_mbps >= f.total_bw_mbps
            && d.slots_at_least(f.max_node_vcpus) >= 1
    }
}

/// The request's aggregate demand, as the coarse stage scores it.
struct Footprint {
    total_vcpus: u64,
    total_memory_mb: u64,
    total_disk_gb: u64,
    /// Sum of all link bandwidths (each flow attaches to at least one
    /// NIC if split, zero if co-located — one NIC's worth is the
    /// optimistic bound).
    total_bw_mbps: u64,
    max_node_vcpus: u32,
}

impl Footprint {
    fn of(topology: &ApplicationTopology) -> Self {
        let mut f = Footprint {
            total_vcpus: 0,
            total_memory_mb: 0,
            total_disk_gb: 0,
            total_bw_mbps: 0,
            max_node_vcpus: 0,
        };
        for node in topology.nodes() {
            let req = node.requirements();
            f.total_vcpus += u64::from(req.vcpus);
            f.total_memory_mb += req.memory_mb;
            f.total_disk_gb += req.disk_gb;
            f.max_node_vcpus = f.max_node_vcpus.max(req.vcpus);
        }
        for link in topology.links() {
            f.total_bw_mbps += link.bandwidth().as_mbps();
        }
        f
    }
}

/// The K the coarse stage keeps (`0` = the default).
fn effective_k(requested: usize) -> usize {
    if requested == 0 {
        DEFAULT_PODS_CONSIDERED
    } else {
        requested
    }
}

/// Folds one per-pod search's effort counters into the merged request
/// stats (the sharded request reports the *total* work of every pod it
/// searched, exactly as a serial multi-pod sweep would).
fn fold_stats(into: &mut SearchStats, from: &SearchStats) {
    into.expanded += from.expanded;
    into.generated += from.generated;
    into.pruned_by_bound += from.pruned_by_bound;
    into.pruned_probabilistically += from.pruned_probabilistically;
    into.deduplicated += from.deduplicated;
    into.symmetry_skipped += from.symmetry_skipped;
    into.eg_runs += from.eg_runs;
    into.heuristic_evals += from.heuristic_evals;
    into.candidates_scanned += from.candidates_scanned;
    into.candidates_pruned_simd += from.candidates_pruned_simd;
    into.bound_cache_hits += from.bound_cache_hits;
    into.bound_cache_misses += from.bound_cache_misses;
    into.session_cache_hits += from.session_cache_hits;
    into.session_cache_misses += from.session_cache_misses;
    into.session_cache_evictions += from.session_cache_evictions;
    into.deadline_hit |= from.deadline_hit;
}

/// The plain unsharded search, carrying `stats` (whatever the coarse
/// stage already counted) into the outcome. Decisions are bit-identical
/// to a `shard: false` request by construction: same context, same
/// engines, no host-range restriction.
#[allow(clippy::too_many_arguments)]
fn full_search(
    infra: &Infrastructure,
    topology: &ApplicationTopology,
    state: &CapacityState,
    request: &PlacementRequest,
    pinned: &[Option<HostId>],
    session: Option<&SessionShared>,
    mut stats: SearchStats,
    started: Instant,
) -> Result<PlacementOutcome, PlacementError> {
    let ctx = Ctx::with_session(topology, infra, state, request, pinned.to_vec(), session)?;
    let path = run_algorithm(&ctx, request, &mut stats)?;
    drop(ctx);
    Scheduler::outcome(path, stats, started)
}

/// One pod's exact search: the requested engine over a context whose
/// candidate sweep is restricted to the pod's host range. Serial inside
/// (request-level parallelism comes from searching pods concurrently).
#[allow(clippy::too_many_arguments)]
fn search_pod(
    infra: &Infrastructure,
    topology: &ApplicationTopology,
    state: &CapacityState,
    request: &PlacementRequest,
    pinned: &[Option<HostId>],
    session: Option<&SessionShared>,
    range: Range<usize>,
    started: Instant,
) -> Result<PlacementOutcome, PlacementError> {
    let mut ctx = Ctx::with_session(topology, infra, state, request, pinned.to_vec(), session)?;
    ctx.host_range = Some(range);
    let mut stats = SearchStats::default();
    let path = run_algorithm(&ctx, request, &mut stats)?;
    drop(ctx);
    Scheduler::outcome(path, stats, started)
}

/// The sharded request driver (entered from
/// [`Scheduler::place_pinned_with`] when `request.shard` is set).
pub(crate) fn place_sharded(
    infra: &Infrastructure,
    topology: &ApplicationTopology,
    state: &CapacityState,
    request: &PlacementRequest,
    pinned: &[Option<HostId>],
    session: Option<&SessionShared>,
    started: Instant,
) -> Result<PlacementOutcome, PlacementError> {
    // Session digests are journal-maintained; one-shot requests pay a
    // single O(hosts) scan.
    let built;
    let digests = match session {
        Some(shared) => &shared.pods,
        None => {
            built = PodDigests::from_state(infra, state);
            &built
        }
    };
    let pod_count = digests.pod_count();
    let k = effective_k(request.pods_considered);
    let has_pins = pinned.iter().any(Option::is_some);
    if !digests.contiguous() || pod_count <= 1 || k >= pod_count || has_pins {
        // Nothing to shard over (or the restriction cannot be honored):
        // the unsharded search is the answer, bit-identical to
        // `shard: false`.
        let stats = SearchStats { shard_fallbacks: 1, ..SearchStats::default() };
        return full_search(infra, topology, state, request, pinned, session, stats, started);
    }
    let footprint = Footprint::of(topology);
    let selected = digests.select(&footprint, k);
    let mut stats = SearchStats {
        pods_scanned: pod_count as u64,
        pods_pruned: (pod_count - selected.len()) as u64,
        ..SearchStats::default()
    };
    if selected.is_empty() {
        // No pod digest admits the footprint — only a cross-pod
        // placement can work, if any does.
        stats.shard_fallbacks = 1;
        return full_search(infra, topology, state, request, pinned, session, stats, started);
    }
    // Per-pod searches are serial inside (the scoring pool serves one
    // caller at a time); request-level parallelism comes from running
    // the K pod searches as pool tasks.
    let pod_request =
        PlacementRequest { parallel: false, score_threads: 1, shard: false, ..request.clone() };
    let slots: Vec<Mutex<Option<Result<PlacementOutcome, PlacementError>>>> =
        selected.iter().map(|_| Mutex::new(None)).collect();
    let task = |i: usize| {
        let result = search_pod(
            infra,
            topology,
            state,
            &pod_request,
            pinned,
            session,
            digests.range(selected[i]),
            started,
        );
        if let Ok(mut slot) = slots[i].lock() {
            *slot = Some(result);
        }
    };
    let threads = resolve_score_threads(request.score_threads).min(selected.len());
    if request.parallel && threads >= 2 {
        match session {
            Some(shared) => {
                shared.pool.get_or_init(|| ScoringPool::new(threads)).run(selected.len(), &task);
            }
            None => ScoringPool::new(threads).run(selected.len(), &task),
        }
    } else {
        for i in 0..selected.len() {
            task(i);
        }
    }
    // Deterministic merge: best objective wins, ties toward the
    // coarse stage's rank (slot order). Thread interleaving cannot
    // change the answer — every pod writes its own slot.
    let mut best: Option<PlacementOutcome> = None;
    for slot in slots {
        let result = match slot.into_inner() {
            Ok(r) => r,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(Ok(outcome)) = result {
            fold_stats(&mut stats, &outcome.stats);
            let better = match &best {
                None => true,
                Some(b) => outcome.objective.total_cmp(&b.objective) == std::cmp::Ordering::Less,
            };
            if better {
                best = Some(outcome);
            }
        }
    }
    match best {
        Some(mut outcome) => {
            outcome.stats = stats;
            outcome.elapsed = started.elapsed();
            Ok(outcome)
        }
        None => {
            // Every candidate pod was infeasible in the exact sense;
            // only the full fleet-wide search can still find a
            // (cross-pod) placement.
            stats.shard_fallbacks += 1;
            full_search(infra, topology, state, request, pinned, session, stats, started)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Algorithm;
    use crate::validate::verify_placement;
    use ostro_datacenter::InfrastructureBuilder;
    use ostro_model::{Bandwidth, TopologyBuilder};
    use std::time::Duration;

    /// `pods` pods × `racks` racks × `hosts` hosts, one site.
    fn pod_infra(pods: usize, racks: usize, hosts: usize) -> Infrastructure {
        let mut b = InfrastructureBuilder::new();
        let site = b.site("dc", Bandwidth::from_gbps(400));
        for p in 0..pods {
            let pod = b.pod(site, format!("p{p}"), Bandwidth::from_gbps(200)).unwrap();
            for r in 0..racks {
                let rack =
                    b.rack_in_pod(pod, format!("p{p}r{r}"), Bandwidth::from_gbps(100)).unwrap();
                for h in 0..hosts {
                    b.host(
                        rack,
                        format!("p{p}r{r}h{h}"),
                        Resources::new(16, 32_768, 1_000),
                        Bandwidth::from_gbps(10),
                    )
                    .unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    fn app() -> ApplicationTopology {
        let mut b = TopologyBuilder::new("app");
        let hub = b.vm("hub", 4, 4_096).unwrap();
        for i in 0..3 {
            let w = b.vm(format!("w{i}"), 2, 2_048).unwrap();
            b.link(hub, w, Bandwidth::from_mbps(100 + 10 * i)).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn buckets_partition_the_vcpu_axis() {
        assert_eq!(PodDigest::bucket(0), 0);
        assert_eq!(PodDigest::bucket(1), 1);
        assert_eq!(PodDigest::bucket(3), 2);
        assert_eq!(PodDigest::bucket(4), 3);
        assert_eq!(PodDigest::bucket(16), 5);
        assert_eq!(PodDigest::bucket(63), 6);
        assert_eq!(PodDigest::bucket(64), 7);
        assert_eq!(PodDigest::bucket(u32::MAX), 7);
        for k in 0..SLOT_BUCKETS {
            assert_eq!(PodDigest::bucket(PodDigest::bucket_floor(k)), k);
        }
    }

    #[test]
    fn digests_from_state_match_generated_layout() {
        let infra = pod_infra(3, 2, 4);
        let state = CapacityState::new(&infra);
        let digests = PodDigests::from_state(&infra, &state);
        assert_eq!(digests.pod_count(), 3);
        assert!(digests.contiguous());
        for p in 0..3 {
            assert_eq!(digests.range(p), p * 8..(p + 1) * 8);
            let d = digests.digest(p);
            assert_eq!(d.hosts, 8);
            assert_eq!(d.free_vcpus, 8 * 16);
            assert_eq!(d.slots_at_least(16), 8);
            assert_eq!(d.slots_at_least(17), 0, "16 free lands in the [16,32) bucket");
        }
    }

    #[test]
    fn sharded_search_stays_inside_one_pod_and_validates() {
        let infra = pod_infra(4, 2, 4);
        let state = CapacityState::new(&infra);
        let scheduler = Scheduler::new(&infra);
        let request = PlacementRequest::default().shard(true).pods_considered(2);
        let outcome = scheduler.place(&app(), &state, &request).unwrap();
        let violations = verify_placement(&app(), &infra, &state, &outcome.placement).unwrap();
        assert!(violations.is_empty(), "{violations:?}");
        let pods: std::collections::HashSet<_> =
            outcome.placement.assignments().iter().map(|&h| infra.location(h).1).collect();
        assert_eq!(pods.len(), 1, "a sharded decision is pod-confined");
        assert_eq!(outcome.stats.pods_scanned, 4);
        assert_eq!(outcome.stats.pods_pruned, 2);
        assert_eq!(outcome.stats.shard_fallbacks, 0);
    }

    /// The PR's acceptance pin: K spanning every pod falls back to the
    /// unsharded engine and reproduces its decision bit-for-bit, across
    /// EG, BA*, and DBA*.
    #[test]
    fn k_covering_all_pods_is_bit_identical_to_unsharded() {
        let infra = pod_infra(3, 2, 4);
        let mut state = CapacityState::new(&infra);
        // Background load so the fleets are not symmetric.
        for i in 0..infra.host_count() {
            if i % 3 == 0 {
                let host = HostId::from_index(i as u32);
                state.reserve_node(host, Resources::new(6, 8_192, 100)).unwrap();
            }
        }
        let scheduler = Scheduler::new(&infra);
        for algorithm in [
            Algorithm::Greedy,
            Algorithm::BoundedAStar,
            Algorithm::DeadlineBoundedAStar { deadline: Duration::from_secs(5) },
        ] {
            let plain = PlacementRequest {
                algorithm,
                max_expansions: 20_000,
                ..PlacementRequest::default()
            };
            let sharded = plain.clone().shard(true).pods_considered(infra.pods().len());
            let a = scheduler.place(&app(), &state, &plain).unwrap();
            let b = scheduler.place(&app(), &state, &sharded).unwrap();
            assert_eq!(a.placement, b.placement, "{algorithm:?}: placements diverged");
            assert_eq!(a.objective.to_bits(), b.objective.to_bits(), "{algorithm:?}: objective");
            assert_eq!(a.reserved_bandwidth, b.reserved_bandwidth, "{algorithm:?}: bandwidth");
            assert_eq!(b.stats.shard_fallbacks, 1, "{algorithm:?}: fallback not counted");
            assert_eq!(a.stats.shard_fallbacks, 0);
        }
    }

    #[test]
    fn pins_force_the_unsharded_fallback() {
        let infra = pod_infra(3, 2, 4);
        let state = CapacityState::new(&infra);
        let topo = app();
        let scheduler = Scheduler::new(&infra);
        let mut pinned = vec![None; topo.node_count()];
        pinned[0] = Some(HostId::from_index(0));
        let request = PlacementRequest::default().shard(true).pods_considered(1);
        let outcome = scheduler.place_pinned(&topo, &state, &request, &pinned).unwrap();
        assert_eq!(outcome.stats.shard_fallbacks, 1);
        assert_eq!(outcome.placement.host_of(ostro_model::NodeId::from_index(0)).index(), 0);
    }

    #[test]
    fn single_pod_fleets_fall_back() {
        let infra = InfrastructureBuilder::flat(
            "dc",
            2,
            4,
            Resources::new(16, 32_768, 1_000),
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap();
        let state = CapacityState::new(&infra);
        let scheduler = Scheduler::new(&infra);
        let request = PlacementRequest::default().shard(true);
        let outcome = scheduler.place(&app(), &state, &request).unwrap();
        assert_eq!(outcome.stats.shard_fallbacks, 1);
        assert_eq!(outcome.stats.pods_scanned, 0);
    }

    #[test]
    fn coarse_stage_prefers_the_idle_pod() {
        let infra = pod_infra(3, 2, 4);
        let mut state = CapacityState::new(&infra);
        // Load pods 0 and 2 heavily; pod 1 stays idle.
        for p in [0usize, 2] {
            for i in p * 8..(p + 1) * 8 {
                state
                    .reserve_node(HostId::from_index(i as u32), Resources::new(14, 28_672, 500))
                    .unwrap();
            }
        }
        let digests = PodDigests::from_state(&infra, &state);
        let selected = digests.select(&Footprint::of(&app()), 1);
        assert_eq!(selected, vec![1]);
        let scheduler = Scheduler::new(&infra);
        let request = PlacementRequest::default().shard(true).pods_considered(1);
        let outcome = scheduler.place(&app(), &state, &request).unwrap();
        for &h in outcome.placement.assignments() {
            assert!((8..16).contains(&h.index()), "host {h:?} not in the idle pod");
        }
    }

    #[test]
    fn serial_and_parallel_pod_search_agree() {
        let infra = pod_infra(4, 2, 4);
        let state = CapacityState::new(&infra);
        let scheduler = Scheduler::new(&infra);
        let parallel = PlacementRequest::default().shard(true).pods_considered(3).score_threads(4);
        let serial = PlacementRequest { parallel: false, ..parallel.clone().score_threads(1) };
        let a = scheduler.place(&app(), &state, &parallel).unwrap();
        let b = scheduler.place(&app(), &state, &serial).unwrap();
        assert_eq!(a.placement, b.placement);
        assert_eq!(a.objective.to_bits(), b.objective.to_bits());
    }
}
