use std::collections::{HashMap, HashSet};

use crate::diversity::{DiversityLevel, DiversityZone, Proximity, ZoneId};
use crate::error::ModelError;
use crate::link::{Link, LinkId};
use crate::node::{Node, NodeId, NodeKind};
use crate::resources::Bandwidth;
use crate::topology::ApplicationTopology;

/// Incremental constructor for [`ApplicationTopology`].
///
/// Node- and link-level validation happens eagerly as elements are
/// added; whole-topology validation (non-emptiness) happens in
/// [`build`](Self::build).
///
/// ```
/// use ostro_model::{Bandwidth, DiversityLevel, TopologyBuilder};
///
/// # fn main() -> Result<(), ostro_model::ModelError> {
/// let mut b = TopologyBuilder::new("app");
/// let v0 = b.vm("v0", 1, 1024)?;
/// let v1 = b.vm("v1", 1, 1024)?;
/// b.link(v0, v1, Bandwidth::from_mbps(50))?;
/// b.diversity_zone("spread", DiversityLevel::Host, &[v0, v1])?;
/// let topology = b.build()?;
/// assert_eq!(topology.node_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct TopologyBuilder {
    name: String,
    nodes: Vec<Node>,
    links: Vec<Link>,
    zones: Vec<DiversityZone>,
    node_names: HashMap<String, NodeId>,
    zone_names: HashSet<String>,
    link_pairs: HashSet<(NodeId, NodeId)>,
}

impl TopologyBuilder {
    /// Starts an empty topology with the given application name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        TopologyBuilder { name: name.into(), ..TopologyBuilder::default() }
    }

    pub(crate) fn from_topology(t: &ApplicationTopology) -> Self {
        TopologyBuilder {
            name: t.name.clone(),
            nodes: t.nodes.clone(),
            links: t.links.clone(),
            zones: t.zones.clone(),
            node_names: t.name_index.clone(),
            zone_names: t.zones.iter().map(|z| z.name.clone()).collect(),
            link_pairs: t.links.iter().map(|l| (l.a, l.b)).collect(),
        }
    }

    /// Number of nodes added so far.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Looks up an already-added node by name.
    #[must_use]
    pub fn node_id(&self, name: &str) -> Option<NodeId> {
        self.node_names.get(name).copied()
    }

    /// Adds a virtual machine with the given vCPU and memory requirement.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DuplicateName`] if the name is taken and
    /// [`ModelError::InvalidVmSize`] if `vcpus` or `memory_mb` is zero.
    pub fn vm(
        &mut self,
        name: impl Into<String>,
        vcpus: u32,
        memory_mb: u64,
    ) -> Result<NodeId, ModelError> {
        let name = name.into();
        if vcpus == 0 || memory_mb == 0 {
            return Err(ModelError::InvalidVmSize(name));
        }
        self.add_node(name, NodeKind::Vm { vcpus, memory_mb }, false)
    }

    /// Adds a virtual machine whose CPU reservation is *best effort*
    /// (the paper's §VI future work): the vCPUs describe the desired
    /// share but reserve no host capacity; only the memory is
    /// guaranteed.
    ///
    /// # Errors
    ///
    /// As [`vm`](Self::vm).
    pub fn vm_best_effort(
        &mut self,
        name: impl Into<String>,
        vcpus: u32,
        memory_mb: u64,
    ) -> Result<NodeId, ModelError> {
        let name = name.into();
        if vcpus == 0 || memory_mb == 0 {
            return Err(ModelError::InvalidVmSize(name));
        }
        self.add_node(name, NodeKind::Vm { vcpus, memory_mb }, true)
    }

    /// Adds a disk volume of the given size.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DuplicateName`] if the name is taken and
    /// [`ModelError::InvalidVolumeSize`] if `size_gb` is zero.
    pub fn volume(&mut self, name: impl Into<String>, size_gb: u64) -> Result<NodeId, ModelError> {
        let name = name.into();
        if size_gb == 0 {
            return Err(ModelError::InvalidVolumeSize(name));
        }
        self.add_node(name, NodeKind::Volume { size_gb }, false)
    }

    fn add_node(
        &mut self,
        name: String,
        kind: NodeKind,
        best_effort: bool,
    ) -> Result<NodeId, ModelError> {
        if self.node_names.contains_key(&name) {
            return Err(ModelError::DuplicateName(name));
        }
        let id = NodeId(self.nodes.len() as u32);
        self.node_names.insert(name.clone(), id);
        self.nodes.push(Node { id, name, kind, best_effort });
        Ok(id)
    }

    /// Adds an undirected bandwidth link between two nodes.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::SelfLoop`], [`ModelError::UnknownNode`],
    /// [`ModelError::DuplicateLink`], or
    /// [`ModelError::ZeroBandwidthLink`].
    pub fn link(
        &mut self,
        a: NodeId,
        b: NodeId,
        bandwidth: Bandwidth,
    ) -> Result<LinkId, ModelError> {
        self.link_impl(a, b, bandwidth, None)
    }

    /// Adds a link that additionally requires its endpoints to land
    /// within the same infrastructure unit of the given level (a
    /// latency bound; the paper's §VI future work).
    ///
    /// # Errors
    ///
    /// As [`link`](Self::link).
    pub fn link_within(
        &mut self,
        a: NodeId,
        b: NodeId,
        bandwidth: Bandwidth,
        proximity: Proximity,
    ) -> Result<LinkId, ModelError> {
        self.link_impl(a, b, bandwidth, Some(proximity))
    }

    fn link_impl(
        &mut self,
        a: NodeId,
        b: NodeId,
        bandwidth: Bandwidth,
        max_proximity: Option<Proximity>,
    ) -> Result<LinkId, ModelError> {
        let bound = self.nodes.len() as u32;
        for id in [a, b] {
            if id.0 >= bound {
                return Err(ModelError::UnknownNode(id.to_string()));
            }
        }
        if a == b {
            return Err(ModelError::SelfLoop(self.nodes[a.index()].name.clone()));
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        if bandwidth.is_zero() {
            return Err(ModelError::ZeroBandwidthLink(
                self.nodes[lo.index()].name.clone(),
                self.nodes[hi.index()].name.clone(),
            ));
        }
        if !self.link_pairs.insert((lo, hi)) {
            return Err(ModelError::DuplicateLink(
                self.nodes[lo.index()].name.clone(),
                self.nodes[hi.index()].name.clone(),
            ));
        }
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link { id, a: lo, b: hi, bandwidth, max_proximity });
        Ok(id)
    }

    /// Adds a named diversity zone over `members` at `level`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyDiversityZone`],
    /// [`ModelError::DuplicateZoneName`], [`ModelError::UnknownNode`],
    /// or [`ModelError::DuplicateZoneMember`].
    pub fn diversity_zone(
        &mut self,
        name: impl Into<String>,
        level: DiversityLevel,
        members: &[NodeId],
    ) -> Result<ZoneId, ModelError> {
        let name = name.into();
        if members.is_empty() {
            return Err(ModelError::EmptyDiversityZone(name));
        }
        if !self.zone_names.insert(name.clone()) {
            return Err(ModelError::DuplicateZoneName(name));
        }
        let bound = self.nodes.len() as u32;
        let mut seen = HashSet::with_capacity(members.len());
        for &m in members {
            if m.0 >= bound {
                return Err(ModelError::UnknownNode(m.to_string()));
            }
            if !seen.insert(m) {
                return Err(ModelError::DuplicateZoneMember(
                    name,
                    self.nodes[m.index()].name.clone(),
                ));
            }
        }
        let id = ZoneId(self.zones.len() as u32);
        self.zones.push(DiversityZone { id, name, level, members: members.to_vec() });
        Ok(id)
    }

    /// Finalizes the topology, building adjacency and zone indices.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyTopology`] if no node was added.
    pub fn build(self) -> Result<ApplicationTopology, ModelError> {
        ApplicationTopology::from_parts(self.name, self.nodes, self.links, self.zones)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_topology() {
        assert_eq!(TopologyBuilder::new("e").build().unwrap_err(), ModelError::EmptyTopology);
    }

    #[test]
    fn rejects_duplicate_node_name() {
        let mut b = TopologyBuilder::new("t");
        b.vm("x", 1, 1).unwrap();
        assert_eq!(b.volume("x", 10).unwrap_err(), ModelError::DuplicateName("x".into()));
    }

    #[test]
    fn rejects_invalid_sizes() {
        let mut b = TopologyBuilder::new("t");
        assert_eq!(b.vm("a", 0, 1024).unwrap_err(), ModelError::InvalidVmSize("a".into()));
        assert_eq!(b.vm("b", 1, 0).unwrap_err(), ModelError::InvalidVmSize("b".into()));
        assert_eq!(b.volume("c", 0).unwrap_err(), ModelError::InvalidVolumeSize("c".into()));
    }

    #[test]
    fn rejects_bad_links() {
        let mut b = TopologyBuilder::new("t");
        let a = b.vm("a", 1, 1024).unwrap();
        let c = b.vm("c", 1, 1024).unwrap();
        assert_eq!(
            b.link(a, a, Bandwidth::from_mbps(1)).unwrap_err(),
            ModelError::SelfLoop("a".into())
        );
        assert_eq!(
            b.link(a, c, Bandwidth::ZERO).unwrap_err(),
            ModelError::ZeroBandwidthLink("a".into(), "c".into())
        );
        b.link(a, c, Bandwidth::from_mbps(1)).unwrap();
        // Same pair in either order is a duplicate.
        assert_eq!(
            b.link(c, a, Bandwidth::from_mbps(2)).unwrap_err(),
            ModelError::DuplicateLink("a".into(), "c".into())
        );
        assert_eq!(
            b.link(a, NodeId(9), Bandwidth::from_mbps(1)).unwrap_err(),
            ModelError::UnknownNode("v9".into())
        );
    }

    #[test]
    fn rejects_bad_zones() {
        let mut b = TopologyBuilder::new("t");
        let a = b.vm("a", 1, 1024).unwrap();
        assert_eq!(
            b.diversity_zone("z", DiversityLevel::Host, &[]).unwrap_err(),
            ModelError::EmptyDiversityZone("z".into())
        );
        b.diversity_zone("z", DiversityLevel::Host, &[a]).unwrap();
        assert_eq!(
            b.diversity_zone("z", DiversityLevel::Host, &[a]).unwrap_err(),
            ModelError::DuplicateZoneName("z".into())
        );
        assert_eq!(
            b.diversity_zone("y", DiversityLevel::Host, &[a, a]).unwrap_err(),
            ModelError::DuplicateZoneMember("y".into(), "a".into())
        );
        assert_eq!(
            b.diversity_zone("w", DiversityLevel::Host, &[NodeId(5)]).unwrap_err(),
            ModelError::UnknownNode("v5".into())
        );
    }

    #[test]
    fn link_normalizes_endpoint_order() {
        let mut b = TopologyBuilder::new("t");
        let a = b.vm("a", 1, 1024).unwrap();
        let c = b.vm("c", 1, 1024).unwrap();
        b.link(c, a, Bandwidth::from_mbps(5)).unwrap();
        let t = b.build().unwrap();
        assert_eq!(t.links()[0].endpoints(), (a, c));
    }

    #[test]
    fn node_id_lookup_during_build() {
        let mut b = TopologyBuilder::new("t");
        let a = b.vm("a", 1, 1024).unwrap();
        assert_eq!(b.node_id("a"), Some(a));
        assert_eq!(b.node_id("zz"), None);
        assert_eq!(b.node_count(), 1);
    }

    #[test]
    fn round_trip_through_to_builder() {
        let mut b = TopologyBuilder::new("t");
        let a = b.vm("a", 1, 1024).unwrap();
        let c = b.vm("c", 2, 2048).unwrap();
        b.link(a, c, Bandwidth::from_mbps(10)).unwrap();
        b.diversity_zone("z", DiversityLevel::Rack, &[a, c]).unwrap();
        let t = b.build().unwrap();

        let mut b2 = t.to_builder();
        let d = b2.vm("d", 1, 512).unwrap();
        b2.link(c, d, Bandwidth::from_mbps(20)).unwrap();
        let t2 = b2.build().unwrap();
        assert_eq!(t2.node_count(), 3);
        assert_eq!(t2.links().len(), 2);
        assert_eq!(t2.zones().len(), 1);
        // Original ids remain stable.
        assert_eq!(t2.node_by_name("a").unwrap().id(), a);
    }
}
