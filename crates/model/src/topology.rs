use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::builder::TopologyBuilder;
use crate::diversity::{DiversityLevel, DiversityZone, Proximity, ZoneId};
use crate::error::ModelError;
use crate::link::{Link, LinkId};
use crate::node::{Node, NodeId, NodeKind};
use crate::resources::{Bandwidth, Resources};
use crate::stats::TopologyStats;

/// The paper's `T_a = <V, E>`: a validated, immutable application
/// topology of VMs, volumes, bandwidth links, and diversity zones.
///
/// Construct one with [`TopologyBuilder`]; mutate one by applying a
/// [`TopologyDelta`](crate::TopologyDelta), which produces a new
/// topology. Instances are internally indexed for O(1) node lookup and
/// O(degree) neighbor iteration.
///
/// ```
/// use ostro_model::{Bandwidth, TopologyBuilder};
///
/// # fn main() -> Result<(), ostro_model::ModelError> {
/// let mut b = TopologyBuilder::new("pair");
/// let a = b.vm("a", 1, 1024)?;
/// let c = b.vm("c", 1, 1024)?;
/// b.link(a, c, Bandwidth::from_mbps(10))?;
/// let t = b.build()?;
/// assert_eq!(t.neighbors(a), &[(c, Bandwidth::from_mbps(10))]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "TopologyData", into = "TopologyData")]
pub struct ApplicationTopology {
    pub(crate) name: String,
    pub(crate) nodes: Vec<Node>,
    pub(crate) links: Vec<Link>,
    pub(crate) zones: Vec<DiversityZone>,
    pub(crate) adjacency: Vec<Vec<(NodeId, Bandwidth)>>,
    pub(crate) node_zones: Vec<Vec<ZoneId>>,
    pub(crate) node_proximity: Vec<Vec<(NodeId, Proximity)>>,
    pub(crate) name_index: HashMap<String, NodeId>,
}

impl ApplicationTopology {
    /// The application name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All nodes, indexed by [`NodeId`].
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Looks up a node by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this topology.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Looks up a node by its unique name.
    #[must_use]
    pub fn node_by_name(&self, name: &str) -> Option<&Node> {
        self.name_index.get(name).map(|&id| self.node(id))
    }

    /// Number of nodes (VMs plus volumes).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of VM nodes.
    #[must_use]
    pub fn vm_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_vm()).count()
    }

    /// Number of volume nodes.
    #[must_use]
    pub fn volume_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_volume()).count()
    }

    /// All links, indexed by [`LinkId`].
    #[must_use]
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Looks up a link by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this topology.
    #[must_use]
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// The neighbors of `node` with the bandwidth demanded toward each.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this topology.
    #[must_use]
    pub fn neighbors(&self, node: NodeId) -> &[(NodeId, Bandwidth)] {
        &self.adjacency[node.index()]
    }

    /// The bandwidth demand between `a` and `b`, if they are linked.
    #[must_use]
    pub fn bandwidth_between(&self, a: NodeId, b: NodeId) -> Option<Bandwidth> {
        self.adjacency[a.index()].iter().find(|&&(n, _)| n == b).map(|&(_, bw)| bw)
    }

    /// All diversity zones, indexed by [`ZoneId`].
    #[must_use]
    pub fn zones(&self) -> &[DiversityZone] {
        &self.zones
    }

    /// Looks up a zone by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this topology.
    #[must_use]
    pub fn zone(&self, id: ZoneId) -> &DiversityZone {
        &self.zones[id.index()]
    }

    /// The zones a node belongs to (a node may be in several).
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this topology.
    #[must_use]
    pub fn zones_of(&self, node: NodeId) -> &[ZoneId] {
        &self.node_zones[node.index()]
    }

    /// The latency-bounded neighbors of `node`: pairs of (neighbor,
    /// required proximity).
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this topology.
    #[must_use]
    pub fn proximity_bounds(&self, node: NodeId) -> &[(NodeId, Proximity)] {
        &self.node_proximity[node.index()]
    }

    /// The strongest separation two nodes must observe because of shared
    /// diversity-zone membership, or `None` if no zone contains both.
    #[must_use]
    pub fn required_separation(&self, a: NodeId, b: NodeId) -> Option<DiversityLevel> {
        if a == b {
            return None;
        }
        self.node_zones[a.index()]
            .iter()
            .filter(|z| self.node_zones[b.index()].contains(z))
            .map(|&z| self.zones[z.index()].level)
            .max()
    }

    /// Sum of the bandwidth demands of all links.
    #[must_use]
    pub fn total_link_bandwidth(&self) -> Bandwidth {
        self.links.iter().map(Link::bandwidth).sum()
    }

    /// Sum of the host-local requirements of all nodes.
    #[must_use]
    pub fn total_requirements(&self) -> Resources {
        self.nodes.iter().map(Node::requirements).sum()
    }

    /// Total bandwidth demanded by links incident to `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this topology.
    #[must_use]
    pub fn incident_bandwidth(&self, node: NodeId) -> Bandwidth {
        self.adjacency[node.index()].iter().map(|&(_, bw)| bw).sum()
    }

    /// Per-resource averages used to order nodes for the greedy search.
    #[must_use]
    pub fn stats(&self) -> TopologyStats {
        TopologyStats::of(self)
    }

    /// Reconstructs a builder pre-populated with this topology's
    /// contents, for programmatic extension.
    #[must_use]
    pub fn to_builder(&self) -> TopologyBuilder {
        TopologyBuilder::from_topology(self)
    }

    pub(crate) fn from_parts(
        name: String,
        nodes: Vec<Node>,
        links: Vec<Link>,
        zones: Vec<DiversityZone>,
    ) -> Result<Self, ModelError> {
        if nodes.is_empty() {
            return Err(ModelError::EmptyTopology);
        }
        let mut adjacency = vec![Vec::new(); nodes.len()];
        for link in &links {
            adjacency[link.a.index()].push((link.b, link.bandwidth));
            adjacency[link.b.index()].push((link.a, link.bandwidth));
        }
        let mut node_zones = vec![Vec::new(); nodes.len()];
        for zone in &zones {
            for &m in &zone.members {
                node_zones[m.index()].push(zone.id);
            }
        }
        let mut node_proximity = vec![Vec::new(); nodes.len()];
        for link in &links {
            if let Some(p) = link.max_proximity {
                node_proximity[link.a.index()].push((link.b, p));
                node_proximity[link.b.index()].push((link.a, p));
            }
        }
        let name_index = nodes.iter().map(|n| (n.name.clone(), n.id)).collect();
        Ok(ApplicationTopology {
            name,
            nodes,
            links,
            zones,
            adjacency,
            node_zones,
            node_proximity,
            name_index,
        })
    }
}

/// Flat serialization form; indices are rebuilt on deserialization.
#[derive(Serialize, Deserialize)]
struct TopologyData {
    name: String,
    nodes: Vec<Node>,
    links: Vec<Link>,
    zones: Vec<DiversityZone>,
}

impl From<ApplicationTopology> for TopologyData {
    fn from(t: ApplicationTopology) -> Self {
        TopologyData { name: t.name, nodes: t.nodes, links: t.links, zones: t.zones }
    }
}

impl TryFrom<TopologyData> for ApplicationTopology {
    type Error = ModelError;

    fn try_from(d: TopologyData) -> Result<Self, Self::Error> {
        // Re-validate untrusted data through the builder path.
        let mut b = TopologyBuilder::new(&d.name);
        for n in &d.nodes {
            match n.kind {
                NodeKind::Vm { vcpus, memory_mb } if n.best_effort => {
                    b.vm_best_effort(&n.name, vcpus, memory_mb)?;
                }
                NodeKind::Vm { vcpus, memory_mb } => {
                    b.vm(&n.name, vcpus, memory_mb)?;
                }
                NodeKind::Volume { size_gb } => {
                    b.volume(&n.name, size_gb)?;
                }
            }
        }
        let bound = d.nodes.len() as u32;
        let check = |id: NodeId| -> Result<NodeId, ModelError> {
            if id.0 < bound {
                Ok(id)
            } else {
                Err(ModelError::UnknownNode(id.to_string()))
            }
        };
        for l in &d.links {
            match l.max_proximity {
                Some(p) => b.link_within(check(l.a)?, check(l.b)?, l.bandwidth, p)?,
                None => b.link(check(l.a)?, check(l.b)?, l.bandwidth)?,
            };
        }
        for z in &d.zones {
            let members: Vec<NodeId> =
                z.members.iter().map(|&m| check(m)).collect::<Result<_, _>>()?;
            b.diversity_zone(&z.name, z.level, &members)?;
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TopologyBuilder;

    fn sample() -> ApplicationTopology {
        let mut b = TopologyBuilder::new("sample");
        let web = b.vm("web", 2, 2048).unwrap();
        let db = b.vm("db", 4, 8192).unwrap();
        let vol = b.volume("vol", 120).unwrap();
        b.link(web, db, Bandwidth::from_mbps(100)).unwrap();
        b.link(db, vol, Bandwidth::from_mbps(200)).unwrap();
        b.diversity_zone("dz", DiversityLevel::Rack, &[web, db]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn counts_and_lookup() {
        let t = sample();
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.vm_count(), 2);
        assert_eq!(t.volume_count(), 1);
        assert_eq!(t.links().len(), 2);
        assert_eq!(t.node_by_name("db").unwrap().id(), NodeId(1));
        assert!(t.node_by_name("nope").is_none());
        assert_eq!(t.name(), "sample");
    }

    #[test]
    fn adjacency_is_symmetric() {
        let t = sample();
        let web = t.node_by_name("web").unwrap().id();
        let db = t.node_by_name("db").unwrap().id();
        assert_eq!(t.bandwidth_between(web, db), Some(Bandwidth::from_mbps(100)));
        assert_eq!(t.bandwidth_between(db, web), Some(Bandwidth::from_mbps(100)));
        let vol = t.node_by_name("vol").unwrap().id();
        assert_eq!(t.bandwidth_between(web, vol), None);
        assert_eq!(t.neighbors(db).len(), 2);
    }

    #[test]
    fn incident_bandwidth_sums_links() {
        let t = sample();
        let db = t.node_by_name("db").unwrap().id();
        assert_eq!(t.incident_bandwidth(db), Bandwidth::from_mbps(300));
        let vol = t.node_by_name("vol").unwrap().id();
        assert_eq!(t.incident_bandwidth(vol), Bandwidth::from_mbps(200));
    }

    #[test]
    fn required_separation_takes_strongest_zone() {
        let mut b = TopologyBuilder::new("t");
        let a = b.vm("a", 1, 1024).unwrap();
        let c = b.vm("c", 1, 1024).unwrap();
        b.diversity_zone("weak", DiversityLevel::Host, &[a, c]).unwrap();
        b.diversity_zone("strong", DiversityLevel::Pod, &[a, c]).unwrap();
        let t = b.build().unwrap();
        assert_eq!(t.required_separation(a, c), Some(DiversityLevel::Pod));
        assert_eq!(t.required_separation(a, a), None);
    }

    #[test]
    fn totals() {
        let t = sample();
        assert_eq!(t.total_link_bandwidth(), Bandwidth::from_mbps(300));
        assert_eq!(t.total_requirements(), Resources::new(6, 10_240, 120));
    }

    #[test]
    fn serde_round_trip_rebuilds_indices() {
        let t = sample();
        let json = serde_json::to_string(&t).unwrap();
        let back: ApplicationTopology = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
        let db = back.node_by_name("db").unwrap().id();
        assert_eq!(back.neighbors(db).len(), 2);
    }

    #[test]
    fn serde_rejects_out_of_range_node_ids() {
        let t = sample();
        let mut json: serde_json::Value = serde_json::to_value(&t).unwrap();
        json["links"][0]["a"] = serde_json::json!(99);
        let err = serde_json::from_value::<ApplicationTopology>(json);
        assert!(err.is_err());
    }
}
