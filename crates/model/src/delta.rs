use std::collections::HashSet;

use crate::builder::TopologyBuilder;
use crate::diversity::{DiversityLevel, Proximity};
use crate::error::ModelError;
use crate::node::{NodeId, NodeKind};
use crate::resources::Bandwidth;
use crate::topology::ApplicationTopology;

/// Handle to a node added by a [`TopologyDelta`] before the delta is
/// applied (the final [`NodeId`] is only known after `apply`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PendingNode(usize);

/// Either an existing node or a node the delta is adding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeltaNodeRef {
    /// A node that already exists in the base topology.
    Existing(NodeId),
    /// A node introduced by this delta.
    Pending(PendingNode),
}

impl From<NodeId> for DeltaNodeRef {
    fn from(id: NodeId) -> Self {
        DeltaNodeRef::Existing(id)
    }
}

impl From<PendingNode> for DeltaNodeRef {
    fn from(p: PendingNode) -> Self {
        DeltaNodeRef::Pending(p)
    }
}

/// An incremental update to an application topology (the paper's §IV-E
/// online scenario: "adding or removing VMs, or changing resource
/// requirements").
///
/// A delta is built up programmatically and then [`apply`]d to a base
/// topology, yielding a fresh validated topology plus a [`NodeMapping`]
/// that relates old and new node ids.
///
/// ```
/// use ostro_model::{Bandwidth, TopologyBuilder, TopologyDelta};
///
/// # fn main() -> Result<(), ostro_model::ModelError> {
/// let mut b = TopologyBuilder::new("app");
/// let web = b.vm("web", 2, 2048)?;
/// let t = b.build()?;
///
/// let mut delta = TopologyDelta::new();
/// let web2 = delta.add_vm("web2", 2, 2048);
/// delta.add_link(web, web2, Bandwidth::from_mbps(10));
/// let (t2, mapping) = delta.apply(&t)?;
///
/// assert_eq!(t2.node_count(), 2);
/// assert_eq!(mapping.new_id_of(web), Some(web));
/// let new_id = mapping.id_of_pending(web2);
/// assert_eq!(t2.node(new_id).name(), "web2");
/// # Ok(())
/// # }
/// ```
///
/// [`apply`]: Self::apply
#[derive(Debug, Clone, Default)]
pub struct TopologyDelta {
    add_nodes: Vec<(String, NodeKind, bool)>,
    add_links: Vec<(DeltaNodeRef, DeltaNodeRef, Bandwidth, Option<Proximity>)>,
    add_zones: Vec<(String, DiversityLevel, Vec<DeltaNodeRef>)>,
    extend_zones: Vec<(String, DeltaNodeRef)>,
    remove: Vec<NodeId>,
}

/// Relates node ids across a delta application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeMapping {
    old_to_new: Vec<Option<NodeId>>,
    pending_to_new: Vec<NodeId>,
}

impl NodeMapping {
    /// The new id of a pre-existing node, or `None` if it was removed.
    #[must_use]
    pub fn new_id_of(&self, old: NodeId) -> Option<NodeId> {
        self.old_to_new.get(old.index()).copied().flatten()
    }

    /// The id assigned to a node added by the delta.
    ///
    /// # Panics
    ///
    /// Panics if `pending` came from a different delta.
    #[must_use]
    pub fn id_of_pending(&self, pending: PendingNode) -> NodeId {
        self.pending_to_new[pending.0]
    }

    /// Ids of all nodes added by the delta.
    #[must_use]
    pub fn added_ids(&self) -> &[NodeId] {
        &self.pending_to_new
    }

    /// Iterates `(old, new)` pairs for surviving pre-existing nodes.
    pub fn surviving(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.old_to_new.iter().enumerate().filter_map(|(i, n)| n.map(|new| (NodeId(i as u32), new)))
    }
}

impl TopologyDelta {
    /// Starts an empty delta.
    #[must_use]
    pub fn new() -> Self {
        TopologyDelta::default()
    }

    /// Returns `true` if the delta makes no changes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.add_nodes.is_empty()
            && self.add_links.is_empty()
            && self.add_zones.is_empty()
            && self.extend_zones.is_empty()
            && self.remove.is_empty()
    }

    /// Schedules a new VM; size validation happens at [`apply`](Self::apply).
    pub fn add_vm(&mut self, name: impl Into<String>, vcpus: u32, memory_mb: u64) -> PendingNode {
        self.add_nodes.push((name.into(), NodeKind::Vm { vcpus, memory_mb }, false));
        PendingNode(self.add_nodes.len() - 1)
    }

    /// Schedules a new best-effort VM (see
    /// [`TopologyBuilder::vm_best_effort`](crate::TopologyBuilder::vm_best_effort)).
    pub fn add_vm_best_effort(
        &mut self,
        name: impl Into<String>,
        vcpus: u32,
        memory_mb: u64,
    ) -> PendingNode {
        self.add_nodes.push((name.into(), NodeKind::Vm { vcpus, memory_mb }, true));
        PendingNode(self.add_nodes.len() - 1)
    }

    /// Schedules a new volume; size validation happens at [`apply`](Self::apply).
    pub fn add_volume(&mut self, name: impl Into<String>, size_gb: u64) -> PendingNode {
        self.add_nodes.push((name.into(), NodeKind::Volume { size_gb }, false));
        PendingNode(self.add_nodes.len() - 1)
    }

    /// Schedules a new link between existing and/or pending nodes.
    pub fn add_link(
        &mut self,
        a: impl Into<DeltaNodeRef>,
        b: impl Into<DeltaNodeRef>,
        bandwidth: Bandwidth,
    ) {
        self.add_links.push((a.into(), b.into(), bandwidth, None));
    }

    /// Schedules a new latency-bounded link (see
    /// [`TopologyBuilder::link_within`](crate::TopologyBuilder::link_within)).
    pub fn add_link_within(
        &mut self,
        a: impl Into<DeltaNodeRef>,
        b: impl Into<DeltaNodeRef>,
        bandwidth: Bandwidth,
        proximity: Proximity,
    ) {
        self.add_links.push((a.into(), b.into(), bandwidth, Some(proximity)));
    }

    /// Schedules a new diversity zone.
    pub fn add_zone(
        &mut self,
        name: impl Into<String>,
        level: DiversityLevel,
        members: impl IntoIterator<Item = DeltaNodeRef>,
    ) {
        self.add_zones.push((name.into(), level, members.into_iter().collect()));
    }

    /// Schedules adding `member` to the existing zone named `zone`.
    pub fn extend_zone(&mut self, zone: impl Into<String>, member: impl Into<DeltaNodeRef>) {
        self.extend_zones.push((zone.into(), member.into()));
    }

    /// Schedules removal of an existing node together with its incident
    /// links and zone memberships.
    pub fn remove_node(&mut self, node: NodeId) {
        self.remove.push(node);
    }

    /// Applies the delta to `base`, producing a new validated topology
    /// and the id mapping.
    ///
    /// # Errors
    ///
    /// Propagates any [`ModelError`] from validation: unknown nodes or
    /// zones, duplicate names/links, invalid sizes, or a delta that both
    /// removes a node and still references it.
    pub fn apply(
        &self,
        base: &ApplicationTopology,
    ) -> Result<(ApplicationTopology, NodeMapping), ModelError> {
        let bound = base.node_count() as u32;
        let removed: HashSet<NodeId> = self.remove.iter().copied().collect();
        for &r in &removed {
            if r.0 >= bound {
                return Err(ModelError::UnknownNode(r.to_string()));
            }
        }
        let check_ref = |r: DeltaNodeRef| -> Result<(), ModelError> {
            if let DeltaNodeRef::Existing(id) = r {
                if id.0 >= bound {
                    return Err(ModelError::UnknownNode(id.to_string()));
                }
                if removed.contains(&id) {
                    return Err(ModelError::RemovedNodeInUse(base.node(id).name().to_owned()));
                }
            }
            Ok(())
        };
        for &(a, b, _, _) in &self.add_links {
            check_ref(a)?;
            check_ref(b)?;
        }
        for (_, _, members) in &self.add_zones {
            for &m in members {
                check_ref(m)?;
            }
        }
        for &(_, m) in &self.extend_zones {
            check_ref(m)?;
        }

        // Rebuild through the builder so all validation is re-applied.
        let mut builder = TopologyBuilder::new(base.name());
        let mut old_to_new: Vec<Option<NodeId>> = vec![None; base.node_count()];
        for node in base.nodes() {
            if removed.contains(&node.id()) {
                continue;
            }
            let new_id = match *node.kind() {
                NodeKind::Vm { vcpus, memory_mb } if node.is_best_effort() => {
                    builder.vm_best_effort(node.name(), vcpus, memory_mb)?
                }
                NodeKind::Vm { vcpus, memory_mb } => builder.vm(node.name(), vcpus, memory_mb)?,
                NodeKind::Volume { size_gb } => builder.volume(node.name(), size_gb)?,
            };
            old_to_new[node.id().index()] = Some(new_id);
        }
        let mut pending_to_new = Vec::with_capacity(self.add_nodes.len());
        for (name, kind, best_effort) in &self.add_nodes {
            let new_id = match *kind {
                NodeKind::Vm { vcpus, memory_mb } if *best_effort => {
                    builder.vm_best_effort(name, vcpus, memory_mb)?
                }
                NodeKind::Vm { vcpus, memory_mb } => builder.vm(name, vcpus, memory_mb)?,
                NodeKind::Volume { size_gb } => builder.volume(name, size_gb)?,
            };
            pending_to_new.push(new_id);
        }
        let mapping = NodeMapping { old_to_new, pending_to_new };

        let resolve = |r: DeltaNodeRef| -> NodeId {
            match r {
                // Checked above: existing refs are in-bounds and not removed.
                DeltaNodeRef::Existing(id) => mapping.old_to_new[id.index()].expect("checked"),
                DeltaNodeRef::Pending(p) => mapping.pending_to_new[p.0],
            }
        };

        for link in base.links() {
            let (Some(a), Some(b)) =
                (mapping.old_to_new[link.a().index()], mapping.old_to_new[link.b().index()])
            else {
                continue; // an endpoint was removed; drop the link
            };
            match link.max_proximity() {
                Some(p) => builder.link_within(a, b, link.bandwidth(), p)?,
                None => builder.link(a, b, link.bandwidth())?,
            };
        }
        for &(a, b, bw, proximity) in &self.add_links {
            match proximity {
                Some(p) => builder.link_within(resolve(a), resolve(b), bw, p)?,
                None => builder.link(resolve(a), resolve(b), bw)?,
            };
        }

        let mut extensions: Vec<(String, Vec<NodeId>)> = Vec::new();
        for (zone_name, member) in &self.extend_zones {
            if !base.zones().iter().any(|z| z.name() == zone_name.as_str())
                && !self.add_zones.iter().any(|(n, _, _)| n == zone_name)
            {
                return Err(ModelError::UnknownZone(zone_name.clone()));
            }
            match extensions.iter_mut().find(|(n, _)| n == zone_name) {
                Some((_, ms)) => ms.push(resolve(*member)),
                None => extensions.push((zone_name.clone(), vec![resolve(*member)])),
            }
        }
        let extra = |name: &str| -> Vec<NodeId> {
            extensions.iter().find(|(n, _)| n == name).map(|(_, ms)| ms.clone()).unwrap_or_default()
        };

        for zone in base.zones() {
            let mut members: Vec<NodeId> =
                zone.members().iter().filter_map(|&m| mapping.old_to_new[m.index()]).collect();
            members.extend(extra(zone.name()));
            if members.is_empty() {
                continue; // every member was removed; drop the zone
            }
            builder.diversity_zone(zone.name(), zone.level(), &members)?;
        }
        for (name, level, members) in &self.add_zones {
            let mut resolved: Vec<NodeId> = members.iter().map(|&m| resolve(m)).collect();
            resolved.extend(extra(name));
            builder.diversity_zone(name, *level, &resolved)?;
        }

        Ok((builder.build()?, mapping))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> (ApplicationTopology, NodeId, NodeId, NodeId) {
        let mut b = TopologyBuilder::new("base");
        let a = b.vm("a", 2, 2048).unwrap();
        let c = b.vm("c", 2, 2048).unwrap();
        let v = b.volume("v", 100).unwrap();
        b.link(a, c, Bandwidth::from_mbps(100)).unwrap();
        b.link(c, v, Bandwidth::from_mbps(50)).unwrap();
        b.diversity_zone("dz", DiversityLevel::Host, &[a, c]).unwrap();
        (b.build().unwrap(), a, c, v)
    }

    #[test]
    fn empty_delta_is_identity() {
        let (t, a, ..) = base();
        let delta = TopologyDelta::new();
        assert!(delta.is_empty());
        let (t2, m) = delta.apply(&t).unwrap();
        assert_eq!(t2, t);
        assert_eq!(m.new_id_of(a), Some(a));
        assert_eq!(m.added_ids().len(), 0);
    }

    #[test]
    fn adds_vm_with_link_and_zone_membership() {
        let (t, a, c, _) = base();
        let mut d = TopologyDelta::new();
        let n = d.add_vm("a2", 1, 1024);
        d.add_link(a, n, Bandwidth::from_mbps(20));
        d.extend_zone("dz", n);
        let (t2, m) = d.apply(&t).unwrap();
        assert_eq!(t2.node_count(), 4);
        let new_id = m.id_of_pending(n);
        assert_eq!(t2.node(new_id).name(), "a2");
        assert_eq!(
            t2.bandwidth_between(m.new_id_of(a).unwrap(), new_id),
            Some(Bandwidth::from_mbps(20))
        );
        let dz = &t2.zones()[0];
        assert_eq!(dz.members().len(), 3);
        assert!(dz.contains(new_id));
        assert!(!d.is_empty());
        let _ = c;
    }

    #[test]
    fn removal_drops_incident_links_and_zone_memberships() {
        let (t, a, c, v) = base();
        let mut d = TopologyDelta::new();
        d.remove_node(c);
        let (t2, m) = d.apply(&t).unwrap();
        assert_eq!(t2.node_count(), 2);
        assert_eq!(m.new_id_of(c), None);
        assert_eq!(t2.links().len(), 0);
        // dz survives with a single member (a).
        assert_eq!(t2.zones().len(), 1);
        assert_eq!(t2.zones()[0].members(), &[m.new_id_of(a).unwrap()]);
        assert!(t2.node_by_name("v").is_some());
        let _ = v;
    }

    #[test]
    fn removing_all_zone_members_drops_the_zone() {
        let (t, a, c, _) = base();
        let mut d = TopologyDelta::new();
        d.remove_node(a);
        d.remove_node(c);
        let (t2, _) = d.apply(&t).unwrap();
        assert!(t2.zones().is_empty());
        assert_eq!(t2.node_count(), 1);
    }

    #[test]
    fn rejects_link_to_removed_node() {
        let (t, a, c, _) = base();
        let mut d = TopologyDelta::new();
        d.remove_node(c);
        d.add_link(a, c, Bandwidth::from_mbps(5));
        assert_eq!(d.apply(&t).unwrap_err(), ModelError::RemovedNodeInUse("c".into()));
    }

    #[test]
    fn rejects_unknown_zone_extension() {
        let (t, a, ..) = base();
        let mut d = TopologyDelta::new();
        d.extend_zone("missing", a);
        assert_eq!(d.apply(&t).unwrap_err(), ModelError::UnknownZone("missing".into()));
    }

    #[test]
    fn extension_can_target_zone_added_by_same_delta() {
        let (t, a, c, _) = base();
        let mut d = TopologyDelta::new();
        let n = d.add_vm("n", 1, 1024);
        d.add_zone("fresh", DiversityLevel::Rack, [DeltaNodeRef::from(a)]);
        d.extend_zone("fresh", n);
        let (t2, m) = d.apply(&t).unwrap();
        let fresh = t2.zones().iter().find(|z| z.name() == "fresh").unwrap();
        assert_eq!(fresh.members().len(), 2);
        assert!(fresh.contains(m.id_of_pending(n)));
        let _ = c;
    }

    #[test]
    fn new_zone_over_new_nodes() {
        let (t, ..) = base();
        let mut d = TopologyDelta::new();
        let x = d.add_vm("x", 1, 1024);
        let y = d.add_vm("y", 1, 1024);
        d.add_zone("xy", DiversityLevel::Rack, [DeltaNodeRef::from(x), DeltaNodeRef::from(y)]);
        d.add_link(x, y, Bandwidth::from_mbps(5));
        let (t2, m) = d.apply(&t).unwrap();
        assert_eq!(t2.zones().len(), 2);
        assert_eq!(
            t2.bandwidth_between(m.id_of_pending(x), m.id_of_pending(y)),
            Some(Bandwidth::from_mbps(5))
        );
    }

    #[test]
    fn rejects_unknown_existing_node() {
        let (t, ..) = base();
        let mut d = TopologyDelta::new();
        d.add_link(NodeId(40), NodeId(41), Bandwidth::from_mbps(5));
        assert!(matches!(d.apply(&t).unwrap_err(), ModelError::UnknownNode(_)));
        let mut d2 = TopologyDelta::new();
        d2.remove_node(NodeId(40));
        assert!(matches!(d2.apply(&t).unwrap_err(), ModelError::UnknownNode(_)));
    }

    #[test]
    fn surviving_iterates_kept_nodes_in_order() {
        let (t, a, c, v) = base();
        let mut d = TopologyDelta::new();
        d.remove_node(a);
        let (_, m) = d.apply(&t).unwrap();
        let pairs: Vec<_> = m.surviving().collect();
        assert_eq!(pairs, vec![(c, NodeId(0)), (v, NodeId(1))]);
    }
}
