use std::fmt;

use serde::{Deserialize, Serialize};

use crate::diversity::Proximity;
use crate::node::NodeId;
use crate::resources::Bandwidth;

/// Identifier of a link within one [`ApplicationTopology`].
///
/// [`ApplicationTopology`]: crate::ApplicationTopology
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct LinkId(pub(crate) u32);

impl LinkId {
    /// The dense index of this link.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An undirected communication link between two topology nodes with a
/// guaranteed-bandwidth demand (the paper's *network pipe*).
///
/// Endpoints are stored in normalized order (`a < b`) so that a link
/// between any pair of nodes has a single canonical representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Link {
    pub(crate) id: LinkId,
    pub(crate) a: NodeId,
    pub(crate) b: NodeId,
    pub(crate) bandwidth: Bandwidth,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub(crate) max_proximity: Option<Proximity>,
}

impl Link {
    /// This link's id within its topology.
    #[must_use]
    pub const fn id(&self) -> LinkId {
        self.id
    }

    /// The lower-numbered endpoint.
    #[must_use]
    pub const fn a(&self) -> NodeId {
        self.a
    }

    /// The higher-numbered endpoint.
    #[must_use]
    pub const fn b(&self) -> NodeId {
        self.b
    }

    /// Both endpoints, lower-numbered first.
    #[must_use]
    pub const fn endpoints(&self) -> (NodeId, NodeId) {
        (self.a, self.b)
    }

    /// The bandwidth demand reserved for this link.
    #[must_use]
    pub const fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// The latency (proximity) bound on this link, if any: endpoints
    /// must share the given infrastructure unit.
    #[must_use]
    pub const fn max_proximity(&self) -> Option<Proximity> {
        self.max_proximity
    }

    /// Returns the endpoint opposite to `node`, or `None` if `node` is
    /// not an endpoint of this link.
    #[must_use]
    pub fn other(&self, node: NodeId) -> Option<NodeId> {
        if node == self.a {
            Some(self.b)
        } else if node == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// Returns `true` if `node` is one of this link's endpoints.
    #[must_use]
    pub fn touches(&self, node: NodeId) -> bool {
        node == self.a || node == self.b
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} <-{}-> {}", self.a, self.bandwidth, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> Link {
        Link {
            id: LinkId(0),
            a: NodeId(1),
            b: NodeId(4),
            bandwidth: Bandwidth::from_mbps(100),
            max_proximity: None,
        }
    }

    #[test]
    fn other_returns_opposite_endpoint() {
        let l = link();
        assert_eq!(l.other(NodeId(1)), Some(NodeId(4)));
        assert_eq!(l.other(NodeId(4)), Some(NodeId(1)));
        assert_eq!(l.other(NodeId(2)), None);
    }

    #[test]
    fn touches_checks_both_endpoints() {
        let l = link();
        assert!(l.touches(NodeId(1)));
        assert!(l.touches(NodeId(4)));
        assert!(!l.touches(NodeId(0)));
    }

    #[test]
    fn accessors_expose_normalized_pair() {
        let l = link();
        assert_eq!(l.endpoints(), (NodeId(1), NodeId(4)));
        assert!(l.a() < l.b());
        assert_eq!(l.bandwidth(), Bandwidth::from_mbps(100));
        assert_eq!(l.id().index(), 0);
    }
}
