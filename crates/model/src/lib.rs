//! Application topology abstraction for the Ostro placement scheduler.
//!
//! A *cloud application* forms a logical topology of virtual machines and
//! disk volumes interconnected by network links, together with placement
//! properties such as resource requirements and anti-affinity (*diversity
//! zone*) constraints. This crate models that abstraction — the paper's
//! `T_a = <V, E>` — independently of any physical infrastructure.
//!
//! # Example
//!
//! Build the three-node core of a tiny application: a web VM, a database
//! VM on a separate host, and the database's volume.
//!
//! ```
//! use ostro_model::{Bandwidth, DiversityLevel, TopologyBuilder};
//!
//! # fn main() -> Result<(), ostro_model::ModelError> {
//! let mut b = TopologyBuilder::new("tiny-app");
//! let web = b.vm("web", 2, 2048)?;
//! let db = b.vm("db", 4, 8192)?;
//! let vol = b.volume("db-vol", 120)?;
//! b.link(web, db, Bandwidth::from_mbps(100))?;
//! b.link(db, vol, Bandwidth::from_mbps(200))?;
//! b.diversity_zone("web-db-anti-affinity", DiversityLevel::Host, &[web, db])?;
//! let topology = b.build()?;
//!
//! assert_eq!(topology.vm_count(), 2);
//! assert_eq!(topology.volume_count(), 1);
//! assert_eq!(topology.total_link_bandwidth(), Bandwidth::from_mbps(300));
//! # Ok(())
//! # }
//! ```

mod builder;
mod delta;
mod diversity;
mod error;
mod link;
mod node;
mod resources;
mod stats;
mod topology;

pub use builder::TopologyBuilder;
pub use delta::{DeltaNodeRef, NodeMapping, PendingNode, TopologyDelta};
pub use diversity::{DiversityLevel, DiversityZone, Proximity, ZoneId};
pub use error::ModelError;
pub use link::{Link, LinkId};
pub use node::{Node, NodeId, NodeKind};
pub use resources::{Bandwidth, Resources};
pub use stats::TopologyStats;
pub use topology::ApplicationTopology;
