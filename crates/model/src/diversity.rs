use std::fmt;

use serde::{Deserialize, Serialize};

use crate::node::NodeId;

/// Identifier of a diversity zone within one topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ZoneId(pub(crate) u32);

impl ZoneId {
    /// The dense index of this zone.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ZoneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dz{}", self.0)
    }
}

/// The infrastructure level at which diversity-zone members must be
/// separated: each member must land in a *different* unit of this level.
///
/// Levels are ordered by how far apart they force members:
/// `Host < Rack < Pod < DataCenter`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DiversityLevel {
    /// Members must run on distinct host servers.
    Host,
    /// Members must run in distinct racks (distinct ToR switches).
    Rack,
    /// Members must run in distinct pods.
    Pod,
    /// Members must run in distinct data centers.
    DataCenter,
}

impl DiversityLevel {
    /// All levels, weakest separation first.
    pub const ALL: [DiversityLevel; 4] = [
        DiversityLevel::Host,
        DiversityLevel::Rack,
        DiversityLevel::Pod,
        DiversityLevel::DataCenter,
    ];
}

impl fmt::Display for DiversityLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DiversityLevel::Host => "host",
            DiversityLevel::Rack => "rack",
            DiversityLevel::Pod => "pod",
            DiversityLevel::DataCenter => "datacenter",
        };
        f.write_str(s)
    }
}

/// The dual of [`DiversityLevel`]: a *proximity* (latency) bound
/// requiring two linked nodes to sit within the **same** unit of the
/// given level — the paper's future-work "latency requirements for the
/// communication links between nodes" (§VI).
///
/// Ordered from tightest to loosest: `Host < Rack < Pod < DataCenter`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Proximity {
    /// Endpoints must share a host (memory-speed latency).
    Host,
    /// Endpoints must share a rack (one ToR hop).
    Rack,
    /// Endpoints must share a pod.
    Pod,
    /// Endpoints must share a data-center site.
    DataCenter,
}

impl fmt::Display for Proximity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Proximity::Host => "same-host",
            Proximity::Rack => "same-rack",
            Proximity::Pod => "same-pod",
            Proximity::DataCenter => "same-datacenter",
        };
        f.write_str(s)
    }
}

/// An anti-affinity constraint: a named set of nodes that must be spread
/// across distinct infrastructure units of a given [`DiversityLevel`].
///
/// The paper's example: "10 VMs running redundant database servers must
/// be deployed across 10 different racks" is a zone with `level = Rack`
/// and those 10 VMs as members. A node may belong to several zones.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DiversityZone {
    pub(crate) id: ZoneId,
    pub(crate) name: String,
    pub(crate) level: DiversityLevel,
    pub(crate) members: Vec<NodeId>,
}

impl DiversityZone {
    /// This zone's id within its topology.
    #[must_use]
    pub const fn id(&self) -> ZoneId {
        self.id
    }

    /// The tenant-assigned zone name (unique within the topology).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The separation level this zone enforces.
    #[must_use]
    pub const fn level(&self) -> DiversityLevel {
        self.level
    }

    /// The nodes that must be kept apart.
    #[must_use]
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Returns `true` if `node` belongs to this zone.
    #[must_use]
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.contains(&node)
    }
}

impl fmt::Display for DiversityZone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} members across distinct {}s)", self.name, self.members.len(), self.level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered_by_separation_strength() {
        assert!(DiversityLevel::Host < DiversityLevel::Rack);
        assert!(DiversityLevel::Rack < DiversityLevel::Pod);
        assert!(DiversityLevel::Pod < DiversityLevel::DataCenter);
        assert_eq!(DiversityLevel::ALL.len(), 4);
        assert!(DiversityLevel::ALL.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn proximity_is_ordered_tightest_first() {
        assert!(Proximity::Host < Proximity::Rack);
        assert!(Proximity::Rack < Proximity::Pod);
        assert!(Proximity::Pod < Proximity::DataCenter);
        assert_eq!(Proximity::Host.to_string(), "same-host");
        assert_eq!(Proximity::DataCenter.to_string(), "same-datacenter");
    }

    #[test]
    fn zone_membership() {
        let z = DiversityZone {
            id: ZoneId(0),
            name: "db-replicas".into(),
            level: DiversityLevel::Rack,
            members: vec![NodeId(0), NodeId(3)],
        };
        assert!(z.contains(NodeId(3)));
        assert!(!z.contains(NodeId(1)));
        assert_eq!(z.members(), &[NodeId(0), NodeId(3)]);
        assert_eq!(z.level(), DiversityLevel::Rack);
        assert_eq!(z.to_string(), "db-replicas (2 members across distinct racks)");
    }
}
