use std::error::Error;
use std::fmt;

/// Errors produced while constructing or mutating an application topology.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A topology must contain at least one node.
    EmptyTopology,
    /// Two nodes were given the same name.
    DuplicateName(String),
    /// A link connects a node to itself.
    SelfLoop(String),
    /// The same pair of nodes was linked twice.
    DuplicateLink(String, String),
    /// A referenced node does not exist in the topology.
    UnknownNode(String),
    /// A link was declared with zero bandwidth.
    ZeroBandwidthLink(String, String),
    /// A VM was declared with zero vCPUs or zero memory.
    InvalidVmSize(String),
    /// A volume was declared with zero capacity.
    InvalidVolumeSize(String),
    /// A diversity zone was declared without any members.
    EmptyDiversityZone(String),
    /// Two diversity zones were given the same name.
    DuplicateZoneName(String),
    /// A node was listed twice in the same diversity zone.
    DuplicateZoneMember(String, String),
    /// A delta attempted to remove a node that other delta entries still use.
    RemovedNodeInUse(String),
    /// A referenced diversity zone does not exist.
    UnknownZone(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyTopology => write!(f, "topology contains no nodes"),
            Self::DuplicateName(n) => write!(f, "duplicate node name `{n}`"),
            Self::SelfLoop(n) => write!(f, "link from node `{n}` to itself"),
            Self::DuplicateLink(a, b) => write!(f, "duplicate link between `{a}` and `{b}`"),
            Self::UnknownNode(n) => write!(f, "unknown node `{n}`"),
            Self::ZeroBandwidthLink(a, b) => {
                write!(f, "link between `{a}` and `{b}` has zero bandwidth")
            }
            Self::InvalidVmSize(n) => {
                write!(f, "VM `{n}` must have at least one vCPU and non-zero memory")
            }
            Self::InvalidVolumeSize(n) => write!(f, "volume `{n}` must have non-zero capacity"),
            Self::EmptyDiversityZone(z) => write!(f, "diversity zone `{z}` has no members"),
            Self::DuplicateZoneName(z) => write!(f, "duplicate diversity zone name `{z}`"),
            Self::DuplicateZoneMember(z, n) => {
                write!(f, "node `{n}` listed twice in diversity zone `{z}`")
            }
            Self::RemovedNodeInUse(n) => {
                write!(f, "delta removes node `{n}` but still references it")
            }
            Self::UnknownZone(z) => write!(f, "unknown diversity zone `{z}`"),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = ModelError::DuplicateLink("a".into(), "b".into());
        assert_eq!(e.to_string(), "duplicate link between `a` and `b`");
        let e = ModelError::EmptyTopology;
        assert!(e.to_string().contains("no nodes"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: Error>(_: &E) {}
        assert_error(&ModelError::EmptyTopology);
    }
}
