use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Network bandwidth, stored with megabit-per-second granularity.
///
/// Bandwidth appears on application links (demand), on physical links
/// (capacity), and in the objective function (total reserved bandwidth),
/// so it gets a dedicated newtype rather than a bare integer.
///
/// ```
/// use ostro_model::Bandwidth;
///
/// let demand = Bandwidth::from_mbps(100);
/// let capacity = Bandwidth::from_gbps(10);
/// assert!(demand <= capacity);
/// assert_eq!((capacity - demand).as_mbps(), 9_900);
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Zero bandwidth.
    pub const ZERO: Bandwidth = Bandwidth(0);

    /// Creates a bandwidth from megabits per second.
    #[must_use]
    pub const fn from_mbps(mbps: u64) -> Self {
        Bandwidth(mbps)
    }

    /// Creates a bandwidth from gigabits per second.
    #[must_use]
    pub const fn from_gbps(gbps: u64) -> Self {
        Bandwidth(gbps * 1_000)
    }

    /// Returns the value in megabits per second.
    #[must_use]
    pub const fn as_mbps(self) -> u64 {
        self.0
    }

    /// Returns the value in (fractional) gigabits per second.
    #[must_use]
    pub fn as_gbps(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns `true` if this is zero bandwidth.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Subtracts, clamping at zero instead of underflowing.
    #[must_use]
    pub const fn saturating_sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction; `None` if `rhs` exceeds `self`.
    #[must_use]
    pub const fn checked_sub(self, rhs: Bandwidth) -> Option<Bandwidth> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(Bandwidth(v)),
            None => None,
        }
    }

    /// Multiplies this bandwidth by an integer factor (e.g. a hop count).
    #[must_use]
    pub const fn scaled(self, factor: u64) -> Bandwidth {
        Bandwidth(self.0 * factor)
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl AddAssign for Bandwidth {
    fn add_assign(&mut self, rhs: Bandwidth) {
        self.0 += rhs.0;
    }
}

impl Sub for Bandwidth {
    type Output = Bandwidth;
    fn sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 - rhs.0)
    }
}

impl SubAssign for Bandwidth {
    fn sub_assign(&mut self, rhs: Bandwidth) {
        self.0 -= rhs.0;
    }
}

impl Sum for Bandwidth {
    fn sum<I: Iterator<Item = Bandwidth>>(iter: I) -> Bandwidth {
        iter.fold(Bandwidth::ZERO, Add::add)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000 && self.0.is_multiple_of(100) {
            write!(f, "{} Gbps", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{} Mbps", self.0)
        }
    }
}

/// A bundle of host-local resource quantities: vCPUs, memory, and disk.
///
/// Used both as a *requirement* (what a node needs) and as a *capacity*
/// (what a host can still provide). Network bandwidth is tracked
/// separately via [`Bandwidth`] because it lives on links, not hosts.
///
/// ```
/// use ostro_model::Resources;
///
/// let capacity = Resources::new(16, 32_768, 1_000);
/// let demand = Resources::new(4, 8_192, 120);
/// assert!(demand.fits_within(&capacity));
/// let left = capacity - demand;
/// assert_eq!(left.vcpus, 12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Resources {
    /// Virtual CPU count.
    pub vcpus: u32,
    /// Memory in mebibytes.
    pub memory_mb: u64,
    /// Disk space in gibibytes.
    pub disk_gb: u64,
}

impl Resources {
    /// No resources at all.
    pub const ZERO: Resources = Resources { vcpus: 0, memory_mb: 0, disk_gb: 0 };

    /// Creates a resource bundle.
    #[must_use]
    pub const fn new(vcpus: u32, memory_mb: u64, disk_gb: u64) -> Self {
        Resources { vcpus, memory_mb, disk_gb }
    }

    /// A compute-only bundle (no disk), as required by a VM.
    #[must_use]
    pub const fn compute(vcpus: u32, memory_mb: u64) -> Self {
        Resources { vcpus, memory_mb, disk_gb: 0 }
    }

    /// A storage-only bundle, as required by a disk volume.
    #[must_use]
    pub const fn storage(disk_gb: u64) -> Self {
        Resources { vcpus: 0, memory_mb: 0, disk_gb }
    }

    /// Returns `true` if every dimension of `self` fits within `capacity`.
    #[must_use]
    pub const fn fits_within(&self, capacity: &Resources) -> bool {
        self.vcpus <= capacity.vcpus
            && self.memory_mb <= capacity.memory_mb
            && self.disk_gb <= capacity.disk_gb
    }

    /// Returns `true` if all dimensions are zero.
    #[must_use]
    pub const fn is_zero(&self) -> bool {
        self.vcpus == 0 && self.memory_mb == 0 && self.disk_gb == 0
    }

    /// Checked subtraction across all dimensions.
    #[must_use]
    pub fn checked_sub(self, rhs: Resources) -> Option<Resources> {
        Some(Resources {
            vcpus: self.vcpus.checked_sub(rhs.vcpus)?,
            memory_mb: self.memory_mb.checked_sub(rhs.memory_mb)?,
            disk_gb: self.disk_gb.checked_sub(rhs.disk_gb)?,
        })
    }

    /// Per-dimension saturating subtraction.
    #[must_use]
    pub const fn saturating_sub(self, rhs: Resources) -> Resources {
        Resources {
            vcpus: self.vcpus.saturating_sub(rhs.vcpus),
            memory_mb: self.memory_mb.saturating_sub(rhs.memory_mb),
            disk_gb: self.disk_gb.saturating_sub(rhs.disk_gb),
        }
    }

    /// Per-dimension maximum of two bundles.
    #[must_use]
    pub fn max(self, rhs: Resources) -> Resources {
        Resources {
            vcpus: self.vcpus.max(rhs.vcpus),
            memory_mb: self.memory_mb.max(rhs.memory_mb),
            disk_gb: self.disk_gb.max(rhs.disk_gb),
        }
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, rhs: Resources) -> Resources {
        Resources {
            vcpus: self.vcpus + rhs.vcpus,
            memory_mb: self.memory_mb + rhs.memory_mb,
            disk_gb: self.disk_gb + rhs.disk_gb,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        *self = *self + rhs;
    }
}

impl Sub for Resources {
    type Output = Resources;
    fn sub(self, rhs: Resources) -> Resources {
        Resources {
            vcpus: self.vcpus - rhs.vcpus,
            memory_mb: self.memory_mb - rhs.memory_mb,
            disk_gb: self.disk_gb - rhs.disk_gb,
        }
    }
}

impl SubAssign for Resources {
    fn sub_assign(&mut self, rhs: Resources) {
        *self = *self - rhs;
    }
}

impl Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::ZERO, Add::add)
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} vCPU / {} MB mem / {} GB disk", self.vcpus, self.memory_mb, self.disk_gb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_units_round_trip() {
        assert_eq!(Bandwidth::from_gbps(10).as_mbps(), 10_000);
        assert_eq!(Bandwidth::from_mbps(1_500).as_gbps(), 1.5);
        assert!(Bandwidth::ZERO.is_zero());
        assert!(!Bandwidth::from_mbps(1).is_zero());
    }

    #[test]
    fn bandwidth_arithmetic() {
        let a = Bandwidth::from_mbps(100);
        let b = Bandwidth::from_mbps(30);
        assert_eq!(a + b, Bandwidth::from_mbps(130));
        assert_eq!(a - b, Bandwidth::from_mbps(70));
        assert_eq!(b.saturating_sub(a), Bandwidth::ZERO);
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(a.checked_sub(b), Some(Bandwidth::from_mbps(70)));
        assert_eq!(a.scaled(6), Bandwidth::from_mbps(600));
        let total: Bandwidth = [a, b, b].into_iter().sum();
        assert_eq!(total, Bandwidth::from_mbps(160));
    }

    #[test]
    fn bandwidth_display_picks_unit() {
        assert_eq!(Bandwidth::from_mbps(100).to_string(), "100 Mbps");
        assert_eq!(Bandwidth::from_gbps(10).to_string(), "10 Gbps");
        assert_eq!(Bandwidth::from_mbps(2_500).to_string(), "2.5 Gbps");
        assert_eq!(Bandwidth::from_mbps(1_001).to_string(), "1001 Mbps");
    }

    #[test]
    fn resources_fit_check_is_per_dimension() {
        let cap = Resources::new(8, 16_384, 500);
        assert!(Resources::new(8, 16_384, 500).fits_within(&cap));
        assert!(!Resources::new(9, 1, 1).fits_within(&cap));
        assert!(!Resources::new(1, 20_000, 1).fits_within(&cap));
        assert!(!Resources::new(1, 1, 501).fits_within(&cap));
        assert!(Resources::ZERO.fits_within(&cap));
    }

    #[test]
    fn resources_arithmetic() {
        let a = Resources::new(4, 4_096, 100);
        let b = Resources::new(1, 1_024, 40);
        assert_eq!(a + b, Resources::new(5, 5_120, 140));
        assert_eq!(a - b, Resources::new(3, 3_072, 60));
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(b.saturating_sub(a), Resources::ZERO);
        assert_eq!(a.max(Resources::new(2, 9_000, 10)), Resources::new(4, 9_000, 100));
        let total: Resources = [a, b].into_iter().sum();
        assert_eq!(total, a + b);
    }

    #[test]
    fn compute_and_storage_constructors() {
        let vm = Resources::compute(2, 2_048);
        assert_eq!(vm.disk_gb, 0);
        let vol = Resources::storage(120);
        assert_eq!(vol, Resources::new(0, 0, 120));
        assert!(Resources::ZERO.is_zero());
        assert!(!vm.is_zero());
    }
}
