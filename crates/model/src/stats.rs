use crate::node::NodeId;
use crate::topology::ApplicationTopology;

/// Per-resource averages over a topology, used to compute each node's
/// *relative weight* — the paper's node sort key for the greedy search:
///
/// > nodes are simply sorted by the sum of relative weights of resource
/// > types, Σ_x (r_x / R̄_x), where R̄_x is the average total requirement
/// > of resource type x across all VMs and disk volumes.
///
/// Bandwidth is included as a fourth resource type, with a node's
/// bandwidth requirement taken as the sum of its incident link demands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopologyStats {
    /// Mean vCPU requirement per node.
    pub avg_vcpus: f64,
    /// Mean memory requirement per node (MB).
    pub avg_memory_mb: f64,
    /// Mean disk requirement per node (GB).
    pub avg_disk_gb: f64,
    /// Mean incident bandwidth per node (Mbps).
    pub avg_bandwidth_mbps: f64,
}

impl TopologyStats {
    pub(crate) fn of(t: &ApplicationTopology) -> Self {
        let n = t.node_count() as f64;
        let total = t.total_requirements();
        // Every link is incident to exactly two nodes.
        let total_bw = t.total_link_bandwidth().as_mbps() as f64 * 2.0;
        TopologyStats {
            avg_vcpus: f64::from(total.vcpus) / n,
            avg_memory_mb: total.memory_mb as f64 / n,
            avg_disk_gb: total.disk_gb as f64 / n,
            avg_bandwidth_mbps: total_bw / n,
        }
    }

    /// The sort key Σ_x (r_x / R̄_x) for `node`. Resource types whose
    /// topology-wide average is zero contribute nothing (they cannot
    /// discriminate between nodes).
    #[must_use]
    pub fn relative_weight(&self, topology: &ApplicationTopology, node: NodeId) -> f64 {
        let req = topology.node(node).requirements();
        let bw = topology.incident_bandwidth(node).as_mbps() as f64;
        let mut weight = 0.0;
        if self.avg_vcpus > 0.0 {
            weight += f64::from(req.vcpus) / self.avg_vcpus;
        }
        if self.avg_memory_mb > 0.0 {
            weight += req.memory_mb as f64 / self.avg_memory_mb;
        }
        if self.avg_disk_gb > 0.0 {
            weight += req.disk_gb as f64 / self.avg_disk_gb;
        }
        if self.avg_bandwidth_mbps > 0.0 {
            weight += bw / self.avg_bandwidth_mbps;
        }
        weight
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::TopologyBuilder;
    use crate::resources::Bandwidth;

    #[test]
    fn averages_cover_all_node_kinds() {
        let mut b = TopologyBuilder::new("t");
        let a = b.vm("a", 2, 2000).unwrap();
        let c = b.vm("c", 4, 6000).unwrap();
        let v = b.volume("v", 300).unwrap();
        b.link(a, c, Bandwidth::from_mbps(100)).unwrap();
        b.link(c, v, Bandwidth::from_mbps(50)).unwrap();
        let t = b.build().unwrap();
        let s = t.stats();
        assert_eq!(s.avg_vcpus, 2.0);
        assert_eq!(s.avg_memory_mb, 8000.0 / 3.0);
        assert_eq!(s.avg_disk_gb, 100.0);
        assert_eq!(s.avg_bandwidth_mbps, 100.0);
    }

    #[test]
    fn heavier_nodes_have_larger_relative_weight() {
        let mut b = TopologyBuilder::new("t");
        let small = b.vm("small", 1, 1024).unwrap();
        let big = b.vm("big", 8, 16_384).unwrap();
        b.link(small, big, Bandwidth::from_mbps(10)).unwrap();
        let t = b.build().unwrap();
        let s = t.stats();
        assert!(s.relative_weight(&t, big) > s.relative_weight(&t, small));
    }

    #[test]
    fn zero_average_dimensions_are_skipped() {
        // VMs only, no volumes and no links: disk and bandwidth averages
        // are zero and must not divide by zero.
        let mut b = TopologyBuilder::new("t");
        let a = b.vm("a", 2, 2048).unwrap();
        b.vm("b", 2, 2048).unwrap();
        let t = b.build().unwrap();
        let s = t.stats();
        assert_eq!(s.avg_disk_gb, 0.0);
        assert_eq!(s.avg_bandwidth_mbps, 0.0);
        let w = s.relative_weight(&t, a);
        assert!(w.is_finite());
        assert_eq!(w, 2.0); // 1.0 from vcpus + 1.0 from memory
    }
}
