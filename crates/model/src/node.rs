use std::fmt;

use serde::{Deserialize, Serialize};

use crate::resources::Resources;

/// Identifier of a node within one [`ApplicationTopology`].
///
/// Node ids are dense indices assigned by the [`TopologyBuilder`] in
/// insertion order; they are only meaningful relative to the topology
/// that produced them.
///
/// [`ApplicationTopology`]: crate::ApplicationTopology
/// [`TopologyBuilder`]: crate::TopologyBuilder
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Creates a node id from a raw index.
    ///
    /// Intended for deserialization and test scaffolding; ordinarily ids
    /// come from [`TopologyBuilder`](crate::TopologyBuilder).
    #[must_use]
    pub const fn from_index(index: u32) -> Self {
        NodeId(index)
    }

    /// The dense index of this node.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// What a node *is*: a virtual machine or a disk volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A virtual machine with compute requirements.
    Vm {
        /// Virtual CPUs required.
        vcpus: u32,
        /// Memory required, in mebibytes.
        memory_mb: u64,
    },
    /// A block-storage disk volume.
    Volume {
        /// Volume size in gibibytes.
        size_gb: u64,
    },
}

impl NodeKind {
    /// The host-local resources this kind of node consumes.
    #[must_use]
    pub const fn requirements(&self) -> Resources {
        match *self {
            NodeKind::Vm { vcpus, memory_mb } => Resources::compute(vcpus, memory_mb),
            NodeKind::Volume { size_gb } => Resources::storage(size_gb),
        }
    }
}

/// A single element of an application topology: one VM or one volume.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Node {
    pub(crate) id: NodeId,
    pub(crate) name: String,
    pub(crate) kind: NodeKind,
    /// Best-effort CPU (the paper's §VI future work): the VM's vCPUs
    /// are scheduled opportunistically and reserve no host CPU, only
    /// memory. Always `false` for volumes.
    #[serde(default)]
    pub(crate) best_effort: bool,
}

impl Node {
    /// This node's id within its topology.
    #[must_use]
    pub const fn id(&self) -> NodeId {
        self.id
    }

    /// The tenant-assigned name (unique within the topology).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether this node is a VM or a volume, with its sizing.
    #[must_use]
    pub const fn kind(&self) -> &NodeKind {
        &self.kind
    }

    /// `true` if this node is a virtual machine.
    #[must_use]
    pub const fn is_vm(&self) -> bool {
        matches!(self.kind, NodeKind::Vm { .. })
    }

    /// `true` if this node is a disk volume.
    #[must_use]
    pub const fn is_volume(&self) -> bool {
        matches!(self.kind, NodeKind::Volume { .. })
    }

    /// `true` if this VM's CPU reservation is best-effort (its vCPUs
    /// are not reserved against host capacity).
    #[must_use]
    pub const fn is_best_effort(&self) -> bool {
        self.best_effort
    }

    /// The host-local resources this node consumes when placed. A
    /// best-effort VM reserves memory but no vCPUs (its CPU time is
    /// opportunistic).
    #[must_use]
    pub const fn requirements(&self) -> Resources {
        let full = self.kind.requirements();
        if self.best_effort {
            Resources::compute(0, full.memory_mb)
        } else {
            full
        }
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            NodeKind::Vm { vcpus, memory_mb } => {
                write!(f, "{} (VM, {} vCPU, {} MB)", self.name, vcpus, memory_mb)
            }
            NodeKind::Volume { size_gb } => {
                write!(f, "{} (volume, {} GB)", self.name, size_gb)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vm(id: u32, name: &str) -> Node {
        Node {
            id: NodeId(id),
            name: name.to_owned(),
            kind: NodeKind::Vm { vcpus: 2, memory_mb: 2_048 },
            best_effort: false,
        }
    }

    #[test]
    fn node_id_round_trips_index() {
        let id = NodeId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "v7");
    }

    #[test]
    fn vm_requirements_have_no_disk() {
        let n = vm(0, "web");
        assert!(n.is_vm());
        assert!(!n.is_volume());
        assert_eq!(n.requirements(), Resources::compute(2, 2_048));
        assert_eq!(n.requirements().disk_gb, 0);
    }

    #[test]
    fn best_effort_vm_reserves_memory_but_no_cpu() {
        let mut n = vm(0, "burst");
        n.best_effort = true;
        assert!(n.is_best_effort());
        assert_eq!(n.requirements(), Resources::compute(0, 2_048));
        // The declared sizing is still visible through the kind.
        assert_eq!(n.kind().requirements().vcpus, 2);
    }

    #[test]
    fn volume_requirements_are_disk_only() {
        let n = Node {
            id: NodeId(1),
            name: "data".into(),
            kind: NodeKind::Volume { size_gb: 120 },
            best_effort: false,
        };
        assert!(n.is_volume());
        assert_eq!(n.requirements(), Resources::storage(120));
        assert_eq!(n.requirements().vcpus, 0);
    }

    #[test]
    fn display_includes_sizing() {
        assert_eq!(vm(0, "web").to_string(), "web (VM, 2 vCPU, 2048 MB)");
    }
}
