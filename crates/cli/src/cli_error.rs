use std::error::Error;
use std::fmt;

/// Errors surfaced to the command-line user.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// Bad command line (unknown command/flag, missing value).
    Usage(String),
    /// A file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A JSON document failed to parse.
    Parse {
        /// The path involved.
        path: String,
        /// The underlying error.
        source: serde_json::Error,
    },
    /// The infrastructure spec was structurally invalid.
    Build(ostro_datacenter::BuildError),
    /// Template extraction or deployment failed.
    Heat(ostro_heat::HeatError),
    /// Placement failed.
    Placement(ostro_core::PlacementError),
    /// A churn simulation failed.
    Sim(ostro_sim::SimError),
    /// The scheduler journal could not be written, read, or replayed.
    Wal(ostro_core::WalError),
    /// A supplied capacity state does not match the infrastructure.
    StateMismatch {
        /// The state file.
        path: String,
        /// Hosts the infrastructure defines.
        expected: usize,
        /// Hosts the state file tracks.
        found: usize,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Usage(msg) => write!(f, "usage error: {msg}"),
            Self::Io { path, source } => write!(f, "cannot access `{path}`: {source}"),
            Self::Parse { path, source } => write!(f, "cannot parse `{path}`: {source}"),
            Self::Build(e) => write!(f, "invalid infrastructure: {e}"),
            Self::Heat(e) => write!(f, "{e}"),
            Self::Placement(e) => write!(f, "placement failed: {e}"),
            Self::Sim(e) => write!(f, "simulation failed: {e}"),
            Self::Wal(e) => write!(f, "scheduler journal failed: {e}"),
            Self::StateMismatch { path, expected, found } => {
                write!(
                    f,
                    "capacity state `{path}` tracks {found} hosts but the \
                     infrastructure has {expected}"
                )
            }
        }
    }
}

impl Error for CliError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
            Self::Parse { source, .. } => Some(source),
            Self::Build(e) => Some(e),
            Self::Heat(e) => Some(e),
            Self::Placement(e) => Some(e),
            Self::Sim(e) => Some(e),
            Self::Wal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ostro_datacenter::BuildError> for CliError {
    fn from(e: ostro_datacenter::BuildError) -> Self {
        CliError::Build(e)
    }
}

impl From<ostro_heat::HeatError> for CliError {
    fn from(e: ostro_heat::HeatError) -> Self {
        CliError::Heat(e)
    }
}

impl From<ostro_core::PlacementError> for CliError {
    fn from(e: ostro_core::PlacementError) -> Self {
        CliError::Placement(e)
    }
}

impl From<ostro_sim::SimError> for CliError {
    fn from(e: ostro_sim::SimError) -> Self {
        CliError::Sim(e)
    }
}

impl From<ostro_core::WalError> for CliError {
    fn from(e: ostro_core::WalError) -> Self {
        CliError::Wal(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_actionable() {
        let e = CliError::Usage("unknown flag `--frob`".into());
        assert!(e.to_string().contains("--frob"));
        let e: CliError = ostro_datacenter::BuildError::NoHosts.into();
        assert!(e.to_string().contains("invalid infrastructure"));
        assert!(e.source().is_some());
        let e = CliError::StateMismatch { path: "s.json".into(), expected: 32, found: 8 };
        assert!(e.to_string().contains("s.json"));
        assert!(e.to_string().contains("32"));
        assert!(e.to_string().contains('8'));
    }
}
