//! Binary entry point for the `ostro` CLI; all logic lives in the
//! library so it can be tested in-process.

fn main() {
    match ostro_cli::run(std::env::args().skip(1)) {
        Ok(output) => print!("{output}"),
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(match err {
                ostro_cli::CliError::Usage(_) => 2,
                _ => 1,
            });
        }
    }
}
