//! The `ostro` command-line planner: place QoS-enhanced Heat templates
//! onto JSON-described data centers from the shell.
//!
//! ```text
//! ostro inspect  --infra infra.json [--state state.json]
//! ostro place    --infra infra.json --template app.json
//!                [--algorithm egc|egbw|eg|bastar|dbastar]
//!                [--deadline-ms N] [--theta-bw X] [--theta-c X]
//!                [--seed N] [--state state.json] [--commit new-state.json]
//! ostro validate --infra infra.json --template app.json
//!                --placement placement.json [--state state.json]
//! ostro churn    --infra infra.json [--algorithm ...] [--arrivals N]
//!                [--lifetime N] [--seed N] [--crashes N]
//!                [--launch-failure-prob X] [--stale-race-prob X]
//! ostro serve    --infra infra.json [--requests N] [--depart-prob X]
//!                [--planners N] [--batch N] [--retries N] [--serial]
//!                [--maintain] [--wal-dir dir]
//! ostro maintain --infra infra.json [--arrivals N] [--decay X] [--seed N]
//!                [--ticks N] [--sweep-budget N] [--fail-stop N] [--gray N]
//!                [--flappy N] [--no-maintenance] [--wal-dir dir]
//! ostro example  infra|template
//! ```
//!
//! `place` prints a JSON document with the node → host decision, the
//! annotated template, and the metrics the paper reports; `--commit`
//! additionally writes the post-placement capacity state so a sequence
//! of invocations models a live cloud.

mod cli_error;
mod commands;

pub use cli_error::CliError;
pub use commands::{run, Command};
