//! Command parsing and execution. Everything returns its output as a
//! `String` so the logic is unit-testable without spawning processes.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ostro_core::{
    verify_placement, Algorithm, DegradePolicy, FragStats, HealthConfig, HealthState, MaintStats,
    MaintenanceConfig, MaintenanceLoad, MaintenancePlane, ObjectiveWeights, Placement,
    PlacementError, PlacementRequest, PlacementService, Scheduler, SchedulerSession, SearchStats,
    ServiceConfig, ServiceResponse, ServiceStats, TenantRecord, Ticket, Wal, WalOptions,
};
use ostro_datacenter::{CapacityState, HostId, InfraSpec, Infrastructure};
use ostro_heat::{annotate_template, extract_topology, HeatTemplate};
use ostro_model::{ApplicationTopology, Bandwidth, TopologyBuilder};
use ostro_sim::{HeartbeatConfig, HeartbeatPlan};
use serde::{Deserialize, Serialize};

use crate::cli_error::CliError;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Summarize an infrastructure (and optional state).
    Inspect {
        /// Path to the infrastructure spec.
        infra: String,
        /// Optional path to a capacity state.
        state: Option<String>,
    },
    /// Place a template, printing the decision document.
    Place {
        /// Path to the infrastructure spec.
        infra: String,
        /// Path to the QoS-enhanced Heat template.
        template: String,
        /// The algorithm to run.
        algorithm: Algorithm,
        /// Objective weights.
        weights: ObjectiveWeights,
        /// RNG seed.
        seed: u64,
        /// Scoring participants (0 = available_parallelism).
        score_threads: usize,
        /// Per-chunk cache budget in bytes (0 = default).
        chunk_bytes: usize,
        /// Two-level sharded placement: score pod digests first, then
        /// search only the top-K candidate pods.
        shard: bool,
        /// Candidate pods the coarse stage keeps (0 = engine default;
        /// only meaningful with `--shard`).
        pods: usize,
        /// Solve through a [`SchedulerSession`] instead of a cold
        /// per-request scheduler. Bit-identical results; exercises the
        /// online-service path and enables the session stats counters.
        session: bool,
        /// Include the search-effort counters in the output document.
        stats: bool,
        /// Optional path to the pre-existing capacity state.
        state: Option<String>,
        /// Optional path to write the post-commit state to.
        commit: Option<String>,
        /// Optional write-ahead-journal directory (implies the session
        /// path): mutations are journaled, and a non-empty journal's
        /// recovered books take the place of `--state`.
        wal_dir: Option<String>,
    },
    /// Re-check a placement document against all constraints.
    Validate {
        /// Path to the infrastructure spec.
        infra: String,
        /// Path to the template.
        template: String,
        /// Path to a placement document produced by `place`.
        placement: String,
        /// Optional path to the capacity state.
        state: Option<String>,
    },
    /// Run a churn simulation, optionally with fault injection.
    Churn {
        /// Path to the infrastructure spec.
        infra: String,
        /// The algorithm to run.
        algorithm: Algorithm,
        /// Objective weights.
        weights: ObjectiveWeights,
        /// Arrival events to simulate.
        arrivals: usize,
        /// Mean tenant lifetime in ticks.
        lifetime: usize,
        /// RNG seed (workload and fault plan).
        seed: u64,
        /// Host crashes to schedule (0 with the probabilities at 0
        /// disables fault injection entirely).
        crashes: usize,
        /// Per-attempt transient launch-failure probability.
        launch_failure_prob: f64,
        /// Per-tick stale-capacity race probability.
        stale_race_prob: f64,
        /// Probability that a stale race leaks its grab (orphan drift).
        race_leak_prob: f64,
        /// Anti-entropy sweep cadence in ticks (0 = never).
        reconcile_every: usize,
        /// Optional journal directory for crash-recovery drills.
        wal_dir: Option<String>,
        /// Ticks at which to kill + recover the scheduler.
        crash_at: Vec<usize>,
    },
    /// Drive a deterministic arrival/departure stream through the
    /// concurrent placement service (or, with `--serial`, through a
    /// warm session in strict event order) and report throughput,
    /// latency percentiles, the service's conflict/batching counters,
    /// and an order-independent decision digest.
    Serve {
        /// Path to the infrastructure spec.
        infra: String,
        /// The algorithm to run.
        algorithm: Algorithm,
        /// Objective weights.
        weights: ObjectiveWeights,
        /// Tenant arrivals in the stream.
        requests: usize,
        /// Per-draw departure probability after each arrival.
        depart_prob: f64,
        /// Stream seed (shapes, schedule, and solver tie-breaks).
        seed: u64,
        /// Planner threads.
        planners: usize,
        /// Maximum jobs per admission batch.
        batch: usize,
        /// Optimistic re-plans before a request serializes.
        retries: u32,
        /// Ingress-queue bound; placements over it are shed at the
        /// door with a typed `QueueFull` error (0 = unbounded).
        queue_depth: usize,
        /// Per-request admission deadline budget in milliseconds;
        /// placements that waited longer in the queue are shed with a
        /// typed `DeadlineExceeded` error (0 = no budget).
        budget_ms: u64,
        /// Enable load-aware degraded-mode planning: step the engine
        /// ladder down (expansion caps, then greedy) as the ingress
        /// queue deepens, with hysteresis on recovery.
        degrade: bool,
        /// Seed for a chaos fault plan (planner panics, latency
        /// spikes, WAL faults) injected into the run; absent = none.
        chaos_seed: Option<u64>,
        /// Two-level sharded placement for every planned request.
        shard: bool,
        /// Candidate pods the coarse stage keeps (0 = engine default).
        pods: usize,
        /// Bypass the service: replay the same stream through one warm
        /// session in event order (the baseline for the digest diff).
        serial: bool,
        /// Run the background maintenance plane after the stream
        /// drains: the surviving tenants become the ledger and a few
        /// all-healthy maintenance ticks defragment them through the
        /// service's authority lock (epoch bumps included).
        maintain: bool,
        /// Optional path to the pre-existing capacity state.
        state: Option<String>,
        /// Optional journal directory; acknowledged commits are
        /// group-commit fsynced before delivery.
        wal_dir: Option<String>,
    },
    /// Run a deterministic self-healing maintenance scenario: seeded
    /// fill/decay churn fragments the fleet, then the maintenance
    /// plane (phi-accrual health detection, suspicion-driven drains,
    /// budgeted defrag sweeps) repairs it. Prints fragmentation
    /// gauges before/after plus determinism digests.
    Maintain {
        /// Path to the infrastructure spec.
        infra: String,
        /// The planner algorithm for drain/defrag re-placements.
        algorithm: Algorithm,
        /// Objective weights.
        weights: ObjectiveWeights,
        /// Seeded tenant arrivals in the fill phase.
        arrivals: usize,
        /// Fraction of placed tenants departing in the decay phase.
        decay: f64,
        /// Seed for the workload and the heartbeat streams.
        seed: u64,
        /// Maintenance ticks to run after the decay.
        ticks: u64,
        /// Node-moves one defrag sweep may spend.
        sweep_budget: u32,
        /// Tenants one sweep examines (round-robin over the ledger).
        candidates: usize,
        /// Hosts whose heartbeats fail-stop mid-run (exercises the
        /// drain path: Suspect → Draining → Dead).
        fail_stop: usize,
        /// Hosts whose heartbeats slow down but stay regular (must
        /// NOT be suspected).
        gray: usize,
        /// Hosts that skip a few beats then recover (exercises the
        /// hysteretic Suspect → Healthy edge).
        flappy: usize,
        /// Two-level sharded placement for re-placements.
        shard: bool,
        /// Candidate pods the coarse stage keeps (0 = engine default).
        pods: usize,
        /// Run the churn but skip the maintenance plane entirely —
        /// the equal-churn baseline `scripts/verify.sh` compares
        /// fragmentation indices against.
        no_maintenance: bool,
        /// Optional path to the pre-existing capacity state.
        state: Option<String>,
        /// Optional journal directory; every migration is journaled.
        wal_dir: Option<String>,
    },
    /// Reconstruct scheduler state from a write-ahead journal.
    Recover {
        /// Path to the infrastructure spec.
        infra: String,
        /// The journal directory (`wal.log` + `snapshot.json`).
        wal_dir: String,
        /// Optional path to write the recovered capacity state to.
        state_out: Option<String>,
    },
    /// Print an example input file.
    Example {
        /// `infra` or `template`.
        kind: String,
    },
}

/// The JSON document `place` emits (and `validate` consumes).
#[derive(Debug, Serialize, Deserialize)]
pub struct PlacementDocument {
    /// Node name → host name decisions.
    pub assignments: BTreeMap<String, String>,
    /// Total reserved bandwidth in Mbps.
    pub reserved_bandwidth_mbps: u64,
    /// Previously idle hosts activated.
    pub new_active_hosts: usize,
    /// Distinct hosts used.
    pub hosts_used: usize,
    /// Normalized objective value.
    pub objective: f64,
    /// Solver wall-clock seconds.
    pub elapsed_secs: f64,
    /// Search-effort counters, present when `--stats` was passed.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub stats: Option<SearchStats>,
    /// The template with scheduler hints stamped in.
    pub annotated_template: HeatTemplate,
}

const USAGE: &str = "\
usage:
  ostro inspect  --infra <file> [--state <file>]
  ostro place    --infra <file> --template <file>
                 [--algorithm egc|egbw|eg|bastar|dbastar] [--deadline-ms N]
                 [--theta-bw X] [--theta-c X] [--seed N] [--score-threads N]
                 [--chunk-bytes N] [--session] [--stats] [--shard] [--pods N]
                 [--state <file>] [--commit <file>] [--wal-dir <dir>]
  ostro validate --infra <file> --template <file> --placement <file>
                 [--state <file>]
  ostro churn    --infra <file>
                 [--algorithm egc|egbw|eg|bastar|dbastar] [--deadline-ms N]
                 [--theta-bw X] [--theta-c X] [--seed N]
                 [--arrivals N] [--lifetime N] [--crashes N]
                 [--launch-failure-prob X] [--stale-race-prob X]
                 [--race-leak-prob X] [--reconcile-every N]
                 [--wal-dir <dir>] [--crash-at T1,T2,...]
  ostro serve    --infra <file> [--requests N] [--depart-prob X] [--seed N]
                 [--planners N] [--batch N] [--retries N] [--serial]
                 [--queue-depth N] [--budget-ms N] [--degrade] [--chaos-seed N]
                 [--shard] [--pods N] [--maintain]
                 [--algorithm egc|egbw|eg|bastar|dbastar] [--deadline-ms N]
                 [--theta-bw X] [--theta-c X]
                 [--state <file>] [--wal-dir <dir>]
  ostro maintain --infra <file> [--arrivals N] [--decay X] [--seed N]
                 [--ticks N] [--sweep-budget N] [--candidates N]
                 [--fail-stop N] [--gray N] [--flappy N] [--no-maintenance]
                 [--shard] [--pods N]
                 [--algorithm egc|egbw|eg|bastar|dbastar] [--deadline-ms N]
                 [--theta-bw X] [--theta-c X]
                 [--state <file>] [--wal-dir <dir>]
  ostro recover  --infra <file> --wal-dir <dir> [--state-out <file>]
  ostro example  infra|template";

impl Command {
    /// Parses an argument vector (without the program name).
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] with a human-readable message.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, CliError> {
        let mut iter = args.into_iter();
        let sub = iter.next().ok_or_else(|| CliError::Usage(USAGE.to_owned()))?;
        let mut flags: BTreeMap<String, String> = BTreeMap::new();
        let mut positional = Vec::new();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                // Boolean switches take no value.
                if matches!(
                    name,
                    "session"
                        | "stats"
                        | "serial"
                        | "degrade"
                        | "shard"
                        | "maintain"
                        | "no-maintenance"
                ) {
                    flags.insert(name.to_owned(), "true".to_owned());
                    continue;
                }
                let value = iter
                    .next()
                    .ok_or_else(|| CliError::Usage(format!("flag --{name} needs a value")))?;
                flags.insert(name.to_owned(), value);
            } else {
                positional.push(arg);
            }
        }
        let take = |flags: &mut BTreeMap<String, String>, name: &str| -> Result<String, CliError> {
            flags
                .remove(name)
                .ok_or_else(|| CliError::Usage(format!("missing required flag --{name}")))
        };
        let command = match sub.as_str() {
            "inspect" => {
                Command::Inspect { infra: take(&mut flags, "infra")?, state: flags.remove("state") }
            }
            "place" => {
                let algorithm = algorithm_flags(&mut flags)?;
                let weights = weight_flags(&mut flags)?;
                Command::Place {
                    infra: take(&mut flags, "infra")?,
                    template: take(&mut flags, "template")?,
                    algorithm,
                    weights,
                    seed: flags
                        .remove("seed")
                        .map(|v| parse_num(&v, "seed"))
                        .transpose()?
                        .unwrap_or(0xB0DE),
                    score_threads: flags
                        .remove("score-threads")
                        .map(|v| parse_num(&v, "score-threads"))
                        .transpose()?
                        .unwrap_or(0) as usize,
                    chunk_bytes: flags
                        .remove("chunk-bytes")
                        .map(|v| parse_num(&v, "chunk-bytes"))
                        .transpose()?
                        .unwrap_or(0) as usize,
                    shard: flags.remove("shard").is_some(),
                    pods: flags
                        .remove("pods")
                        .map(|v| parse_num(&v, "pods"))
                        .transpose()?
                        .unwrap_or(0) as usize,
                    session: flags.remove("session").is_some(),
                    stats: flags.remove("stats").is_some(),
                    state: flags.remove("state"),
                    commit: flags.remove("commit"),
                    wal_dir: flags.remove("wal-dir"),
                }
            }
            "validate" => Command::Validate {
                infra: take(&mut flags, "infra")?,
                template: take(&mut flags, "template")?,
                placement: take(&mut flags, "placement")?,
                state: flags.remove("state"),
            },
            "churn" => {
                let algorithm = algorithm_flags(&mut flags)?;
                let weights = weight_flags(&mut flags)?;
                Command::Churn {
                    infra: take(&mut flags, "infra")?,
                    algorithm,
                    weights,
                    arrivals: flags
                        .remove("arrivals")
                        .map(|v| parse_num(&v, "arrivals"))
                        .transpose()?
                        .unwrap_or(40) as usize,
                    lifetime: flags
                        .remove("lifetime")
                        .map(|v| parse_num(&v, "lifetime"))
                        .transpose()?
                        .unwrap_or(8) as usize,
                    seed: flags
                        .remove("seed")
                        .map(|v| parse_num(&v, "seed"))
                        .transpose()?
                        .unwrap_or(7),
                    crashes: flags
                        .remove("crashes")
                        .map(|v| parse_num(&v, "crashes"))
                        .transpose()?
                        .unwrap_or(0) as usize,
                    launch_failure_prob: flags
                        .remove("launch-failure-prob")
                        .map(|v| parse_float(&v, "launch-failure-prob"))
                        .transpose()?
                        .unwrap_or(0.0),
                    stale_race_prob: flags
                        .remove("stale-race-prob")
                        .map(|v| parse_float(&v, "stale-race-prob"))
                        .transpose()?
                        .unwrap_or(0.0),
                    race_leak_prob: flags
                        .remove("race-leak-prob")
                        .map(|v| parse_float(&v, "race-leak-prob"))
                        .transpose()?
                        .unwrap_or(0.0),
                    reconcile_every: flags
                        .remove("reconcile-every")
                        .map(|v| parse_num(&v, "reconcile-every"))
                        .transpose()?
                        .unwrap_or(0) as usize,
                    wal_dir: flags.remove("wal-dir"),
                    crash_at: flags
                        .remove("crash-at")
                        .map(|v| parse_tick_list(&v, "crash-at"))
                        .transpose()?
                        .unwrap_or_default(),
                }
            }
            "serve" => {
                let algorithm = algorithm_flags(&mut flags)?;
                let weights = weight_flags(&mut flags)?;
                Command::Serve {
                    infra: take(&mut flags, "infra")?,
                    algorithm,
                    weights,
                    requests: flags
                        .remove("requests")
                        .map(|v| parse_num(&v, "requests"))
                        .transpose()?
                        .unwrap_or(32) as usize,
                    depart_prob: flags
                        .remove("depart-prob")
                        .map(|v| parse_float(&v, "depart-prob"))
                        .transpose()?
                        .unwrap_or(0.3),
                    seed: flags
                        .remove("seed")
                        .map(|v| parse_num(&v, "seed"))
                        .transpose()?
                        .unwrap_or(0x5EED_57AE),
                    planners: flags
                        .remove("planners")
                        .map(|v| parse_num(&v, "planners"))
                        .transpose()?
                        .unwrap_or(2) as usize,
                    batch: flags
                        .remove("batch")
                        .map(|v| parse_num(&v, "batch"))
                        .transpose()?
                        .unwrap_or(8) as usize,
                    retries: flags
                        .remove("retries")
                        .map(|v| parse_num(&v, "retries"))
                        .transpose()?
                        .unwrap_or(3) as u32,
                    queue_depth: flags
                        .remove("queue-depth")
                        .map(|v| parse_num(&v, "queue-depth"))
                        .transpose()?
                        .unwrap_or(0) as usize,
                    budget_ms: flags
                        .remove("budget-ms")
                        .map(|v| parse_num(&v, "budget-ms"))
                        .transpose()?
                        .unwrap_or(0),
                    degrade: flags.remove("degrade").is_some(),
                    chaos_seed: flags
                        .remove("chaos-seed")
                        .map(|v| parse_num(&v, "chaos-seed"))
                        .transpose()?,
                    shard: flags.remove("shard").is_some(),
                    pods: flags
                        .remove("pods")
                        .map(|v| parse_num(&v, "pods"))
                        .transpose()?
                        .unwrap_or(0) as usize,
                    serial: flags.remove("serial").is_some(),
                    maintain: flags.remove("maintain").is_some(),
                    state: flags.remove("state"),
                    wal_dir: flags.remove("wal-dir"),
                }
            }
            "maintain" => {
                let algorithm = algorithm_flags(&mut flags)?;
                let weights = weight_flags(&mut flags)?;
                Command::Maintain {
                    infra: take(&mut flags, "infra")?,
                    algorithm,
                    weights,
                    arrivals: flags
                        .remove("arrivals")
                        .map(|v| parse_num(&v, "arrivals"))
                        .transpose()?
                        .unwrap_or(64) as usize,
                    decay: flags
                        .remove("decay")
                        .map(|v| parse_float(&v, "decay"))
                        .transpose()?
                        .unwrap_or(0.5),
                    seed: flags
                        .remove("seed")
                        .map(|v| parse_num(&v, "seed"))
                        .transpose()?
                        .unwrap_or(0xA117_5EED),
                    ticks: flags
                        .remove("ticks")
                        .map(|v| parse_num(&v, "ticks"))
                        .transpose()?
                        .unwrap_or(64),
                    sweep_budget: flags
                        .remove("sweep-budget")
                        .map(|v| parse_num(&v, "sweep-budget"))
                        .transpose()?
                        .unwrap_or(8) as u32,
                    candidates: flags
                        .remove("candidates")
                        .map(|v| parse_num(&v, "candidates"))
                        .transpose()?
                        .unwrap_or(16) as usize,
                    fail_stop: flags
                        .remove("fail-stop")
                        .map(|v| parse_num(&v, "fail-stop"))
                        .transpose()?
                        .unwrap_or(0) as usize,
                    gray: flags
                        .remove("gray")
                        .map(|v| parse_num(&v, "gray"))
                        .transpose()?
                        .unwrap_or(0) as usize,
                    flappy: flags
                        .remove("flappy")
                        .map(|v| parse_num(&v, "flappy"))
                        .transpose()?
                        .unwrap_or(0) as usize,
                    shard: flags.remove("shard").is_some(),
                    pods: flags
                        .remove("pods")
                        .map(|v| parse_num(&v, "pods"))
                        .transpose()?
                        .unwrap_or(0) as usize,
                    no_maintenance: flags.remove("no-maintenance").is_some(),
                    state: flags.remove("state"),
                    wal_dir: flags.remove("wal-dir"),
                }
            }
            "recover" => Command::Recover {
                infra: take(&mut flags, "infra")?,
                wal_dir: take(&mut flags, "wal-dir")?,
                state_out: flags.remove("state-out"),
            },
            "example" => Command::Example {
                kind: positional
                    .first()
                    .cloned()
                    .ok_or_else(|| CliError::Usage("example needs `infra` or `template`".into()))?,
            },
            other => return Err(CliError::Usage(format!("unknown command `{other}`\n{USAGE}"))),
        };
        if let Some(extra) = flags.keys().next() {
            return Err(CliError::Usage(format!("unknown flag --{extra}")));
        }
        Ok(command)
    }

    /// Executes the command, returning its stdout payload.
    ///
    /// # Errors
    ///
    /// Any [`CliError`].
    pub fn execute(&self) -> Result<String, CliError> {
        match self {
            Command::Inspect { infra, state } => inspect(infra, state.as_deref()),
            Command::Place {
                infra,
                template,
                algorithm,
                weights,
                seed,
                score_threads,
                chunk_bytes,
                shard,
                pods,
                session,
                stats,
                state,
                commit,
                wal_dir,
            } => place(&PlaceArgs {
                infra,
                template,
                algorithm: *algorithm,
                weights: *weights,
                seed: *seed,
                score_threads: *score_threads,
                chunk_bytes: *chunk_bytes,
                shard: *shard,
                pods: *pods,
                session: *session,
                stats: *stats,
                state: state.as_deref(),
                commit: commit.as_deref(),
                wal_dir: wal_dir.as_deref(),
            }),
            Command::Validate { infra, template, placement, state } => {
                validate(infra, template, placement, state.as_deref())
            }
            Command::Churn {
                infra,
                algorithm,
                weights,
                arrivals,
                lifetime,
                seed,
                crashes,
                launch_failure_prob,
                stale_race_prob,
                race_leak_prob,
                reconcile_every,
                wal_dir,
                crash_at,
            } => churn(&ChurnArgs {
                infra,
                algorithm: *algorithm,
                weights: *weights,
                arrivals: *arrivals,
                lifetime: *lifetime,
                seed: *seed,
                crashes: *crashes,
                launch_failure_prob: *launch_failure_prob,
                stale_race_prob: *stale_race_prob,
                race_leak_prob: *race_leak_prob,
                reconcile_every: *reconcile_every,
                wal_dir: wal_dir.as_deref(),
                crash_at,
            }),
            Command::Serve {
                infra,
                algorithm,
                weights,
                requests,
                depart_prob,
                seed,
                planners,
                batch,
                retries,
                queue_depth,
                budget_ms,
                degrade,
                chaos_seed,
                shard,
                pods,
                serial,
                maintain,
                state,
                wal_dir,
            } => serve(&ServeArgs {
                infra,
                algorithm: *algorithm,
                weights: *weights,
                requests: *requests,
                depart_prob: *depart_prob,
                seed: *seed,
                planners: *planners,
                batch: *batch,
                retries: *retries,
                queue_depth: *queue_depth,
                budget_ms: *budget_ms,
                degrade: *degrade,
                chaos_seed: *chaos_seed,
                shard: *shard,
                pods: *pods,
                serial: *serial,
                maintain: *maintain,
                state: state.as_deref(),
                wal_dir: wal_dir.as_deref(),
            }),
            Command::Maintain {
                infra,
                algorithm,
                weights,
                arrivals,
                decay,
                seed,
                ticks,
                sweep_budget,
                candidates,
                fail_stop,
                gray,
                flappy,
                shard,
                pods,
                no_maintenance,
                state,
                wal_dir,
            } => maintain_fleet(&MaintainArgs {
                infra,
                algorithm: *algorithm,
                weights: *weights,
                arrivals: *arrivals,
                decay: *decay,
                seed: *seed,
                ticks: *ticks,
                sweep_budget: *sweep_budget,
                candidates: *candidates,
                fail_stop: *fail_stop,
                gray: *gray,
                flappy: *flappy,
                shard: *shard,
                pods: *pods,
                no_maintenance: *no_maintenance,
                state: state.as_deref(),
                wal_dir: wal_dir.as_deref(),
            }),
            Command::Recover { infra, wal_dir, state_out } => {
                recover(infra, wal_dir, state_out.as_deref())
            }
            Command::Example { kind } => example(kind),
        }
    }
}

/// Parses and executes in one go — the whole CLI, minus process I/O.
///
/// # Errors
///
/// Any [`CliError`].
pub fn run<I: IntoIterator<Item = String>>(args: I) -> Result<String, CliError> {
    Command::parse(args)?.execute()
}

/// Shared `--algorithm` / `--deadline-ms` handling for `place`/`churn`.
fn algorithm_flags(flags: &mut BTreeMap<String, String>) -> Result<Algorithm, CliError> {
    let deadline = flags
        .remove("deadline-ms")
        .map(|v| parse_num(&v, "deadline-ms"))
        .transpose()?
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_millis(500));
    match flags.remove("algorithm").as_deref() {
        None | Some("eg") => Ok(Algorithm::Greedy),
        Some("egc") => Ok(Algorithm::GreedyCompute),
        Some("egbw") => Ok(Algorithm::GreedyBandwidth),
        Some("bastar") => Ok(Algorithm::BoundedAStar),
        Some("dbastar") => Ok(Algorithm::DeadlineBoundedAStar { deadline }),
        Some(other) => Err(CliError::Usage(format!("unknown algorithm `{other}`"))),
    }
}

/// Shared `--theta-bw` / `--theta-c` handling for `place`/`churn`.
fn weight_flags(flags: &mut BTreeMap<String, String>) -> Result<ObjectiveWeights, CliError> {
    let theta_bw =
        flags.remove("theta-bw").map(|v| parse_float(&v, "theta-bw")).transpose()?.unwrap_or(0.6);
    let theta_c = flags
        .remove("theta-c")
        .map(|v| parse_float(&v, "theta-c"))
        .transpose()?
        .unwrap_or(1.0 - theta_bw);
    Ok(ObjectiveWeights::new(theta_bw, theta_c)?)
}

fn parse_num(v: &str, flag: &str) -> Result<u64, CliError> {
    v.parse().map_err(|_| CliError::Usage(format!("--{flag}: `{v}` is not a number")))
}

fn parse_float(v: &str, flag: &str) -> Result<f64, CliError> {
    v.parse().map_err(|_| CliError::Usage(format!("--{flag}: `{v}` is not a number")))
}

/// Parses a comma-separated tick list, e.g. `--crash-at 5,13,20`.
fn parse_tick_list(v: &str, flag: &str) -> Result<Vec<usize>, CliError> {
    v.split(',')
        .filter(|part| !part.is_empty())
        .map(|part| parse_num(part.trim(), flag).map(|n| n as usize))
        .collect()
}

fn read_json<T: serde::de::DeserializeOwned>(path: &str) -> Result<T, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|source| CliError::Io { path: path.to_owned(), source })?;
    serde_json::from_str(&text).map_err(|source| CliError::Parse { path: path.to_owned(), source })
}

fn write_json<T: Serialize>(path: &str, value: &T) -> Result<(), CliError> {
    let text = serde_json::to_string_pretty(value).expect("serializable");
    std::fs::write(path, text).map_err(|source| CliError::Io { path: path.to_owned(), source })
}

fn load_infra(path: &str) -> Result<Infrastructure, CliError> {
    let spec: InfraSpec = read_json(path)?;
    Ok(spec.build()?)
}

fn load_state(infra: &Infrastructure, path: Option<&str>) -> Result<CapacityState, CliError> {
    match path {
        None => Ok(CapacityState::new(infra)),
        Some(path) => {
            let state: CapacityState = read_json(path)?;
            // A state file for a different fleet would index out of
            // bounds (or silently mis-account); refuse it up front.
            if state.host_count() != infra.host_count() {
                return Err(CliError::StateMismatch {
                    path: path.to_owned(),
                    expected: infra.host_count(),
                    found: state.host_count(),
                });
            }
            Ok(state)
        }
    }
}

fn inspect(infra_path: &str, state_path: Option<&str>) -> Result<String, CliError> {
    let infra = load_infra(infra_path)?;
    let state = load_state(&infra, state_path)?;
    let mut out = String::new();
    let total: ostro_model::Resources = infra.hosts().iter().map(|h| h.capacity()).sum();
    out.push_str(&format!(
        "sites: {}  pods: {}  racks: {}  hosts: {}\n",
        infra.sites().len(),
        infra.pods().iter().filter(|p| !p.is_transparent()).count(),
        infra.racks().len(),
        infra.host_count(),
    ));
    out.push_str(&format!(
        "total capacity: {total}\nactive hosts: {} / {}\nreserved bandwidth: {}\n",
        state.active_host_count(),
        infra.host_count(),
        state.total_reserved_bandwidth(&infra),
    ));
    Ok(out)
}

/// Everything `place` needs, bundled so the executor stays readable.
struct PlaceArgs<'a> {
    infra: &'a str,
    template: &'a str,
    algorithm: Algorithm,
    weights: ObjectiveWeights,
    seed: u64,
    score_threads: usize,
    chunk_bytes: usize,
    shard: bool,
    pods: usize,
    session: bool,
    stats: bool,
    state: Option<&'a str>,
    commit: Option<&'a str>,
    wal_dir: Option<&'a str>,
}

fn place(args: &PlaceArgs) -> Result<String, CliError> {
    let infra = load_infra(args.infra)?;
    let template: HeatTemplate = read_json(args.template)?;
    let mut state = load_state(&infra, args.state)?;
    let (topology, names) = extract_topology(&template)?;
    let request = PlacementRequest {
        algorithm: args.algorithm,
        weights: args.weights,
        seed: args.seed,
        score_threads: args.score_threads,
        chunk_bytes: args.chunk_bytes,
        shard: args.shard,
        pods_considered: args.pods,
        ..PlacementRequest::default()
    };
    // The session path produces bit-identical decisions; it exists so
    // the counters (and a long-running service built on this code
    // path) can be exercised from the command line. `--wal-dir`
    // implies it: the journal protocol is a session concern.
    let outcome = if args.session || args.wal_dir.is_some() {
        let mut session = match args.wal_dir {
            Some(dir) => {
                let (wal, recovery) =
                    Wal::open(std::path::Path::new(dir), &infra, WalOptions::default())?;
                // A non-empty journal is the durable continuation of an
                // earlier run; its books supersede any `--state` file.
                let mut session = if recovery.seq > 0 {
                    SchedulerSession::with_recovery(&infra, &recovery)
                } else {
                    SchedulerSession::with_state(&infra, state)
                };
                session.attach_wal(wal);
                session
            }
            None => SchedulerSession::with_state(&infra, state),
        };
        let outcome = session.place(&topology, &request)?;
        if args.commit.is_some() {
            session.commit(&topology, &outcome.placement)?;
        }
        if let Some(e) = session.take_wal_error() {
            return Err(e.into());
        }
        state = session.into_state();
        outcome
    } else {
        let scheduler = Scheduler::new(&infra);
        let outcome = scheduler.place(&topology, &state, &request)?;
        if args.commit.is_some() {
            scheduler.commit(&topology, &outcome.placement, &mut state)?;
        }
        outcome
    };
    let annotated = annotate_template(&template, &outcome.placement, &infra, &names);

    if let Some(commit_path) = args.commit {
        write_json(commit_path, &state)?;
    }

    let document = PlacementDocument {
        assignments: names
            .iter()
            .map(|(name, &node)| {
                (name.clone(), infra.host(outcome.placement.host_of(node)).name().to_owned())
            })
            .collect(),
        reserved_bandwidth_mbps: outcome.reserved_bandwidth.as_mbps(),
        new_active_hosts: outcome.new_active_hosts,
        hosts_used: outcome.hosts_used,
        objective: outcome.objective,
        elapsed_secs: outcome.elapsed.as_secs_f64(),
        stats: args.stats.then_some(outcome.stats),
        annotated_template: annotated,
    };
    Ok(serde_json::to_string_pretty(&document).expect("serializable") + "\n")
}

fn validate(
    infra_path: &str,
    template_path: &str,
    placement_path: &str,
    state_path: Option<&str>,
) -> Result<String, CliError> {
    let infra = load_infra(infra_path)?;
    let template: HeatTemplate = read_json(template_path)?;
    let state = load_state(&infra, state_path)?;
    let (topology, names) = extract_topology(&template)?;
    let document: PlacementDocument = read_json(placement_path)?;

    let host_by_name: BTreeMap<&str, HostId> =
        infra.hosts().iter().map(|h| (h.name(), h.id())).collect();
    let mut assignments = vec![HostId::from_index(0); topology.node_count()];
    for (name, &node) in &names {
        let host_name = document.assignments.get(name).ok_or_else(|| {
            CliError::Usage(format!("placement document is missing node `{name}`"))
        })?;
        let host = host_by_name.get(host_name.as_str()).ok_or_else(|| {
            CliError::Usage(format!("placement names unknown host `{host_name}`"))
        })?;
        assignments[node.index()] = *host;
    }
    let placement = Placement::new(assignments);
    let violations = verify_placement(&topology, &infra, &state, &placement)?;
    if violations.is_empty() {
        Ok("placement is valid\n".to_owned())
    } else {
        let mut out = format!("{} violation(s):\n", violations.len());
        for v in violations {
            out.push_str(&format!("  - {v}\n"));
        }
        Ok(out)
    }
}

/// Everything `churn` needs, bundled so the executor stays readable.
struct ChurnArgs<'a> {
    infra: &'a str,
    algorithm: Algorithm,
    weights: ObjectiveWeights,
    arrivals: usize,
    lifetime: usize,
    seed: u64,
    crashes: usize,
    launch_failure_prob: f64,
    stale_race_prob: f64,
    race_leak_prob: f64,
    reconcile_every: usize,
    wal_dir: Option<&'a str>,
    crash_at: &'a [usize],
}

fn churn(args: &ChurnArgs) -> Result<String, CliError> {
    let infra = load_infra(args.infra)?;
    let inject = args.crashes > 0
        || args.launch_failure_prob > 0.0
        || args.stale_race_prob > 0.0
        || args.race_leak_prob > 0.0;
    let faults = inject.then(|| ostro_sim::FaultConfig {
        seed: args.seed,
        host_crashes: args.crashes,
        launch_failure_prob: args.launch_failure_prob,
        stale_race_prob: args.stale_race_prob,
        race_leak_prob: args.race_leak_prob,
        ..ostro_sim::FaultConfig::default()
    });
    let recovery = args.wal_dir.map(|dir| ostro_sim::RecoveryConfig {
        wal_dir: dir.to_owned(),
        crash_ticks: args.crash_at.to_vec(),
        snapshot_every: 64,
    });
    let config = ostro_sim::ChurnConfig {
        arrivals: args.arrivals,
        mean_lifetime: args.lifetime.max(1),
        seed: args.seed,
        weights: args.weights,
        faults,
        recovery,
        reconcile_every: args.reconcile_every,
        ..ostro_sim::ChurnConfig::default()
    };
    let report = ostro_sim::run_churn(&infra, args.algorithm, &config)?;
    Ok(serde_json::to_string_pretty(&report).expect("serializable") + "\n")
}

/// Everything `serve` needs, bundled so the executor stays readable.
struct ServeArgs<'a> {
    infra: &'a str,
    algorithm: Algorithm,
    weights: ObjectiveWeights,
    requests: usize,
    depart_prob: f64,
    seed: u64,
    planners: usize,
    batch: usize,
    retries: u32,
    queue_depth: usize,
    budget_ms: u64,
    degrade: bool,
    chaos_seed: Option<u64>,
    shard: bool,
    pods: usize,
    serial: bool,
    maintain: bool,
    state: Option<&'a str>,
    wal_dir: Option<&'a str>,
}

/// Maintenance ticks `serve --maintain` runs once the stream drains.
const SERVE_MAINTENANCE_TICKS: u64 = 8;

/// The JSON document `serve` emits.
#[derive(Debug, Serialize, Deserialize)]
pub struct ServeReport {
    /// `"service"` or `"serial"`.
    pub mode: String,
    /// Hosts in the fleet.
    pub hosts: usize,
    /// Tenant arrivals offered.
    pub arrivals: usize,
    /// Departures in the schedule.
    pub departures: usize,
    /// Arrivals admitted.
    pub placed: usize,
    /// Arrivals the books could not fit.
    pub rejected: usize,
    /// Arrivals shed by the robustness machinery: the bounded ingress
    /// queue, the admission deadline budget, or a durability rollback.
    #[serde(default)]
    pub shed: usize,
    /// Arrivals whose planning invocation panicked; the panic was
    /// contained and surfaced as a typed error.
    #[serde(default)]
    pub panicked: usize,
    /// Tenants released back.
    pub released: usize,
    /// Offered arrivals over the driver's wall clock.
    pub requests_per_sec: f64,
    /// Median submit→acknowledge latency.
    pub p50_ms: f64,
    /// Tail submit→acknowledge latency.
    pub p99_ms: f64,
    /// Order-independent digest of the *decided* set — arrivals that
    /// were placed or genuinely rejected against the books. Equal
    /// digests mean every decided arrival got the same placement (or
    /// rejection). Shed and panicked arrivals are excluded (they fold
    /// into [`shed_digest`](Self::shed_digest) instead) so a
    /// `--planners 1 --batch 1` service run still matches `--serial`
    /// when nothing was shed.
    pub decision_digest: String,
    /// Order-independent digest of the shed/panicked set, tagged by
    /// shed class — the overload counterpart of the decision digest.
    #[serde(default)]
    pub shed_digest: String,
    /// The first journaling failure the run latched (durability was
    /// degraded from that point on); surfaced loudly rather than
    /// silently dropping acknowledged commits.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub wal_error: Option<String>,
    /// The service's cumulative counters (conflicts, stale admissions,
    /// re-plans, the batch-size histogram); absent in `--serial` mode.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub service: Option<ServiceStats>,
    /// Maintenance-plane counters from the post-stream defrag pass;
    /// present only with `--maintain`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub maintenance: Option<MaintStats>,
}

/// SplitMix64 finalizer — a cheap, stable bit mixer for the digest.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Tag folded into the decision digest for a genuine rejection (the
/// value predates the shed digest — keeping it preserves digest
/// compatibility with earlier serve reports).
const REJECTED_TAG: u64 = 0x0dec_1ded;

/// Shed-class tags folded into the shed digest, one per way the
/// robustness machinery can refuse an arrival without deciding it.
const SHED_QUEUE_TAG: u64 = 0x0dec_1ded;
const SHED_DEADLINE_TAG: u64 = 0xdead_11fe;
const SHED_PANIC_TAG: u64 = 0x009a_0a1c;
const SHED_DURABILITY_TAG: u64 = 0xd15c_f011;

/// How one arrival left the run: a committed placement, a genuine
/// rejection against the books, or a shed (admission control, a
/// contained panic, or a durability rollback — tagged by class).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Decision {
    Placed,
    Rejected,
    Shed(u64),
}

/// Classifies a service failure: overload/fault outcomes are sheds
/// (with their class tag); anything else is a real planning rejection.
fn classify_failure(err: &PlacementError) -> Decision {
    match err {
        PlacementError::QueueFull { .. } => Decision::Shed(SHED_QUEUE_TAG),
        PlacementError::DeadlineExceeded { .. } => Decision::Shed(SHED_DEADLINE_TAG),
        PlacementError::PlannerPanic { .. } => Decision::Shed(SHED_PANIC_TAG),
        PlacementError::Durability { .. } => Decision::Shed(SHED_DURABILITY_TAG),
        _ => Decision::Rejected,
    }
}

/// Order-independent digests of the run's outcome: one mixed hash per
/// arrival (its ordinal plus every node→host edge, or a class tag),
/// XOR-folded so any submission interleaving that reaches the same
/// per-arrival outcomes reaches the same digests.
///
/// Returns `(decision_digest, shed_digest)`. Shed arrivals fold only
/// into the shed digest, so the decision digest stays comparable
/// between a `--serial` replay (which never sheds) and a service run.
fn decision_digests(placements: &[Option<Placement>], decisions: &[Decision]) -> (u64, u64) {
    let mut decided = 0u64;
    let mut shed = 0u64;
    for (arrival, decision) in decisions.iter().enumerate() {
        let base = mix64(arrival as u64 ^ 0x9e37_79b9_7f4a_7c15);
        match decision {
            Decision::Placed => {
                let mut h = base;
                if let Some(p) = &placements[arrival] {
                    for (node, host) in p.assignments().iter().enumerate() {
                        h = mix64(h ^ ((node as u64) << 32) ^ host.index() as u64);
                    }
                }
                decided ^= h;
            }
            Decision::Rejected => decided ^= mix64(base ^ REJECTED_TAG),
            Decision::Shed(tag) => shed ^= mix64(base ^ tag),
        }
    }
    (decided, shed)
}

/// Nearest-rank percentile over an ascending-sorted latency list.
fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn serve(args: &ServeArgs) -> Result<String, CliError> {
    if args.maintain && args.serial {
        return Err(CliError::Usage(
            "--maintain exercises the service's maintenance path; drop --serial".into(),
        ));
    }
    let infra = load_infra(args.infra)?;
    let state = load_state(&infra, args.state)?;
    let plan = ostro_sim::arrival_stream(&ostro_sim::StreamConfig {
        requests: args.requests,
        depart_prob: args.depart_prob,
        seed: args.seed,
        burst: 0,
    })
    .map_err(ostro_sim::SimError::from)?;
    let shapes: Vec<Arc<ApplicationTopology>> = plan.shapes.iter().cloned().map(Arc::new).collect();
    let request = PlacementRequest {
        algorithm: args.algorithm,
        weights: args.weights,
        seed: args.seed,
        shard: args.shard,
        pods_considered: args.pods,
        ..PlacementRequest::default()
    };

    let mut session = match args.wal_dir {
        Some(dir) => {
            let (wal, recovery) =
                Wal::open(std::path::Path::new(dir), &infra, WalOptions::default())?;
            let mut session = if recovery.seq > 0 {
                SchedulerSession::with_recovery(&infra, &recovery)
            } else {
                SchedulerSession::with_state(&infra, state)
            };
            session.attach_wal(wal);
            // Snapshot the starting books so a replay of the journal
            // recovers onto the same base a crashed service would.
            session.checkpoint()?;
            session
        }
        None => SchedulerSession::with_state(&infra, state),
    };
    let chaos = args.chaos_seed.map(|seed| {
        ostro_sim::ChaosPlan::new(ostro_sim::ChaosConfig {
            seed,
            ..ostro_sim::ChaosConfig::default()
        })
    });
    if let Some(chaos) = &chaos {
        // No-op without `--wal-dir`; with one, journal writes draw
        // injected faults (the serve path's durability drill).
        session.set_wal_fault_hook(Some(chaos.wal_hook()));
    }

    let arrivals = plan.arrivals();
    let mut placements: Vec<Option<Placement>> = vec![None; arrivals];
    let mut decisions: Vec<Decision> = vec![Decision::Rejected; arrivals];
    let mut latencies: Vec<f64> = Vec::with_capacity(arrivals);
    let mut placed = 0usize;
    let mut released = 0usize;
    let wal_error;
    let mut service_stats = None;
    let mut maintenance_stats: Option<MaintStats> = None;
    let start = Instant::now();
    if args.serial {
        for event in &plan.events {
            match *event {
                ostro_sim::StreamEvent::Arrive { arrival, shape } => {
                    let t0 = Instant::now();
                    let outcome = session.place(&shapes[shape], &request);
                    latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                    match outcome {
                        Ok(outcome) => {
                            session.commit(&shapes[shape], &outcome.placement)?;
                            placements[arrival] = Some(outcome.placement);
                            decisions[arrival] = Decision::Placed;
                            placed += 1;
                        }
                        Err(_) => decisions[arrival] = Decision::Rejected,
                    }
                }
                ostro_sim::StreamEvent::Depart { arrival } => {
                    if let Some(placement) = placements[arrival].clone() {
                        session.release(&shapes[plan.shape_of[arrival]], &placement)?;
                        released += 1;
                    }
                }
            }
        }
        wal_error = session.take_wal_error().map(|e| e.to_string());
    } else {
        let config = ServiceConfig {
            planners: args.planners.max(1),
            batch: args.batch.max(1),
            max_retries: args.retries,
            queue_depth: args.queue_depth,
            deadline_ms: args.budget_ms,
            degrade: DegradePolicy { enabled: args.degrade, ..DegradePolicy::default() },
            ..ServiceConfig::default()
        };
        let mut service = PlacementService::new(session, config);
        if let Some(chaos) = &chaos {
            service.set_plan_hook(Some(chaos.plan_hook()));
        }
        let mut plane_slot: Option<MaintenancePlane> = None;
        service.serve(|handle| {
            let mut pending: Vec<Option<(Ticket, Instant)>> = (0..arrivals).map(|_| None).collect();
            let mut released_flags = vec![false; arrivals];
            let mut release_tickets: Vec<Ticket> = Vec::new();
            let resolve = |(ticket, t0): (Ticket, Instant)| -> (Option<Placement>, Decision, f64) {
                let (response, when) = ticket.wait_timed();
                let ms = when.duration_since(t0).as_secs_f64() * 1e3;
                match response {
                    ServiceResponse::Placed(outcome) => {
                        (Some(outcome.outcome.placement), Decision::Placed, ms)
                    }
                    ServiceResponse::Failed(err) => (None, classify_failure(&err), ms),
                    ServiceResponse::Released { .. } => (None, Decision::Rejected, ms),
                }
            };
            for event in &plan.events {
                match *event {
                    ostro_sim::StreamEvent::Arrive { arrival, shape } => {
                        let ticket = handle.submit(Arc::clone(&shapes[shape]), request.clone());
                        pending[arrival] = Some((ticket, Instant::now()));
                    }
                    ostro_sim::StreamEvent::Depart { arrival } => {
                        // A tenant can only be torn down once its own
                        // admission is acknowledged; resolve it now. A
                        // shed or rejected arrival has nothing to tear
                        // down — the departure is skipped.
                        if let Some(pair) = pending[arrival].take() {
                            let (placement, decision, ms) = resolve(pair);
                            latencies.push(ms);
                            decisions[arrival] = decision;
                            if let Some(placement) = placement {
                                placements[arrival] = Some(placement.clone());
                                placed += 1;
                                released_flags[arrival] = true;
                                release_tickets.push(handle.submit_release(
                                    Arc::clone(&shapes[plan.shape_of[arrival]]),
                                    placement,
                                ));
                            }
                        }
                    }
                }
            }
            for arrival in 0..arrivals {
                if let Some(pair) = pending[arrival].take() {
                    let (placement, decision, ms) = resolve(pair);
                    latencies.push(ms);
                    decisions[arrival] = decision;
                    if let Some(placement) = placement {
                        placements[arrival] = Some(placement);
                        placed += 1;
                    }
                }
            }
            for ticket in release_tickets {
                if matches!(ticket.wait(), ServiceResponse::Released { .. }) {
                    released += 1;
                }
            }
            if args.maintain {
                // The survivors become the maintenance ledger; a few
                // all-healthy ticks defragment them through the
                // service's authority lock.
                let mut ledger: Vec<TenantRecord> = (0..arrivals)
                    .filter(|&a| !released_flags[a])
                    .filter_map(|a| {
                        placements[a].clone().map(|placement| TenantRecord {
                            id: a as u64,
                            topology: Arc::clone(&shapes[plan.shape_of[a]]),
                            placement,
                        })
                    })
                    .collect();
                let cfg = MaintenanceConfig { request: request.clone(), ..Default::default() };
                let mut plane = MaintenancePlane::new(cfg, infra.host_count());
                for tick in 0..SERVE_MAINTENANCE_TICKS {
                    for i in 0..infra.host_count() {
                        plane.heartbeat(HostId::from_index(i as u32), tick);
                    }
                    handle.maintain(&mut plane, &mut ledger, tick);
                }
                plane_slot = Some(plane);
            }
        });
        maintenance_stats = plane_slot.map(|plane| *plane.stats());
        service_stats = Some(service.stats());
        let mut session = service.into_session();
        wal_error = session.take_wal_error().map(|e| e.to_string());
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    latencies.sort_by(f64::total_cmp);
    let mut rejected = 0usize;
    let mut shed = 0usize;
    let mut panicked = 0usize;
    for decision in &decisions {
        match decision {
            Decision::Placed => {}
            Decision::Rejected => rejected += 1,
            Decision::Shed(SHED_PANIC_TAG) => panicked += 1,
            Decision::Shed(_) => shed += 1,
        }
    }
    let (decided_digest, shed_digest) = decision_digests(&placements, &decisions);
    let report = ServeReport {
        mode: if args.serial { "serial" } else { "service" }.to_owned(),
        hosts: infra.host_count(),
        arrivals,
        departures: plan.departures(),
        placed,
        rejected,
        shed,
        panicked,
        released,
        requests_per_sec: arrivals as f64 / elapsed,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        decision_digest: format!("{decided_digest:016x}"),
        shed_digest: format!("{shed_digest:016x}"),
        wal_error,
        service: service_stats,
        maintenance: maintenance_stats,
    };
    Ok(serde_json::to_string_pretty(&report).expect("serializable") + "\n")
}

/// Everything `maintain` needs, bundled so the executor stays readable.
struct MaintainArgs<'a> {
    infra: &'a str,
    algorithm: Algorithm,
    weights: ObjectiveWeights,
    arrivals: usize,
    decay: f64,
    seed: u64,
    ticks: u64,
    sweep_budget: u32,
    candidates: usize,
    fail_stop: usize,
    gray: usize,
    flappy: usize,
    shard: bool,
    pods: usize,
    no_maintenance: bool,
    state: Option<&'a str>,
    wal_dir: Option<&'a str>,
}

/// The JSON document `maintain` emits. Every field is a pure function
/// of the inputs — no wall-clock — so `scripts/verify.sh` diffs two
/// same-seed runs whole.
#[derive(Debug, Serialize, Deserialize)]
pub struct MaintainReport {
    /// Hosts in the fleet.
    pub hosts: usize,
    /// Seeded arrivals offered in the fill phase.
    pub arrivals: usize,
    /// Arrivals the books admitted.
    pub placed: usize,
    /// Tenants departing in the decay phase.
    pub departures: usize,
    /// Tenants still placed when maintenance started.
    pub survivors: usize,
    /// Whether the maintenance plane ran (false with
    /// `--no-maintenance`).
    pub maintained: bool,
    /// Maintenance ticks run.
    pub ticks: u64,
    /// Fragmentation gauges after the decay, before maintenance.
    pub frag_before: FragStats,
    /// Fragmentation gauges after maintenance (equal to
    /// `frag_before` when it did not run).
    pub frag_after: FragStats,
    /// Maintenance-plane counters; absent with `--no-maintenance`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub maintenance: Option<MaintStats>,
    /// Hosts the failure detector is draining at the end of the run.
    #[serde(default)]
    pub draining_hosts: Vec<String>,
    /// Hosts declared dead (drain completed or φ past the threshold).
    #[serde(default)]
    pub dead_hosts: Vec<String>,
    /// Migrations in the plane's journal-ordered migration log.
    #[serde(default)]
    pub migrations: usize,
    /// Digest of the serialized migration log; two same-seed runs
    /// must agree bit-for-bit.
    pub migration_log_digest: String,
    /// Digest of every surviving tenant's final placement — the
    /// "final decision digest" the determinism gate diffs.
    pub placement_digest: String,
    /// The first journaling failure, if any.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub wal_error: Option<String>,
}

/// A hash mapped to the unit interval `[0, 1)` with 53-bit precision.
fn unit(x: u64) -> f64 {
    (mix64(x) >> 11) as f64 / (1u64 << 53) as f64
}

/// Seeded tenant family for `maintain`: short chains with linked
/// demands, derived from the splitmix mixer so the CLI needs no RNG.
fn maintenance_tenant(seed: u64, id: u64) -> ApplicationTopology {
    let h = mix64(seed ^ mix64(id ^ 0x7E4A_47));
    let vms = 2 + (h % 3) as usize;
    let mut b = TopologyBuilder::new(format!("t{id}"));
    let mut prev = None;
    for i in 0..vms {
        let hi = mix64(h ^ i as u64);
        let node = b
            .vm(format!("vm{i}"), 1 + (hi % 3) as u32, 1_024 * (1 + ((hi >> 8) % 3)))
            .expect("generated VM demand is valid");
        if let Some(p) = prev {
            b.link(p, node, Bandwidth::from_mbps(50 + ((hi >> 16) % 100)))
                .expect("generated link demand is valid");
        }
        prev = Some(node);
    }
    b.build().expect("generated topology is valid")
}

/// Folds the ledger's placements into one digest: equal digests mean
/// every surviving tenant ended on exactly the same hosts.
fn ledger_digest(ledger: &[TenantRecord]) -> u64 {
    let mut digest = 0u64;
    for t in ledger {
        digest = mix64(digest ^ t.id);
        for (node, host) in t.placement.iter() {
            digest = mix64(digest ^ (((node.index() as u64) << 32) | host.index() as u64));
        }
    }
    digest
}

/// FNV-1a over serialized text, splitmix-finalized.
fn text_digest(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    mix64(h)
}

fn maintain_fleet(args: &MaintainArgs) -> Result<String, CliError> {
    let infra = load_infra(args.infra)?;
    let state = load_state(&infra, args.state)?;
    let request = PlacementRequest {
        algorithm: args.algorithm,
        weights: args.weights,
        seed: args.seed,
        shard: args.shard,
        pods_considered: args.pods,
        ..PlacementRequest::default()
    };
    let mut session = match args.wal_dir {
        Some(dir) => {
            let (wal, recovery) =
                Wal::open(std::path::Path::new(dir), &infra, WalOptions::default())?;
            let mut session = if recovery.seq > 0 {
                SchedulerSession::with_recovery(&infra, &recovery)
            } else {
                SchedulerSession::with_state(&infra, state)
            };
            session.attach_wal(wal);
            session
        }
        None => SchedulerSession::with_state(&infra, state),
    };

    // Fill: seeded arrivals, committed as they land.
    let mut ledger: Vec<TenantRecord> = Vec::with_capacity(args.arrivals);
    let mut placed = 0usize;
    for id in 0..args.arrivals as u64 {
        let topology = maintenance_tenant(args.seed, id);
        let Ok(outcome) = session.place(&topology, &request) else { continue };
        session.commit(&topology, &outcome.placement)?;
        ledger.push(TenantRecord {
            id,
            topology: Arc::new(topology),
            placement: outcome.placement,
        });
        placed += 1;
    }

    // Decay: a seeded fraction departs, stranding the survivors.
    let mut departures = 0usize;
    let mut survivors = Vec::with_capacity(ledger.len());
    for t in ledger {
        if unit(args.seed ^ 0xD_EC_A7 ^ mix64(t.id)) < args.decay {
            session.release(&t.topology, &t.placement)?;
            departures += 1;
        } else {
            survivors.push(t);
        }
    }
    let mut ledger = survivors;
    let frag_before = FragStats::compute(&infra, session.state(), &ledger);

    let mut maintenance = None;
    let mut draining_hosts = Vec::new();
    let mut dead_hosts = Vec::new();
    let mut migrations = 0usize;
    let mut log_digest = text_digest("[]");
    if !args.no_maintenance {
        // A 2-tick heartbeat period (and a matching detector prior)
        // keeps fail-stop detection and the drain inside the default
        // 64-tick run.
        let hb = HeartbeatPlan::generate(
            &HeartbeatConfig {
                seed: args.seed,
                interval: 2,
                fail_stop: args.fail_stop,
                gray: args.gray,
                flappy: args.flappy,
                ..HeartbeatConfig::default()
            },
            infra.host_count(),
            args.ticks as usize,
        );
        let cfg = MaintenanceConfig {
            health: HealthConfig { expected_interval: 2, ..HealthConfig::default() },
            request: request.clone(),
            sweep_budget: args.sweep_budget,
            sweep_candidates: args.candidates.max(1),
            ..MaintenanceConfig::default()
        };
        let mut plane = MaintenancePlane::new(cfg, infra.host_count());
        for tick in 0..args.ticks {
            for host in hb.beats_at(tick) {
                plane.heartbeat(host, tick);
            }
            plane.tick(&mut session, &mut ledger, tick, MaintenanceLoad::default());
        }
        let host_names = |hosts: Vec<HostId>| -> Vec<String> {
            hosts.into_iter().map(|h| infra.host(h).name().to_owned()).collect()
        };
        draining_hosts = host_names(plane.monitor().hosts_in(HealthState::Draining));
        dead_hosts = host_names(plane.monitor().hosts_in(HealthState::Dead));
        migrations = plane.migration_log().len();
        log_digest =
            text_digest(&serde_json::to_string(plane.migration_log()).expect("serializable"));
        maintenance = Some(*plane.stats());
    }
    let frag_after = FragStats::compute(&infra, session.state(), &ledger);
    let wal_error = session.take_wal_error().map(|e| e.to_string());

    let report = MaintainReport {
        hosts: infra.host_count(),
        arrivals: args.arrivals,
        placed,
        departures,
        survivors: ledger.len(),
        maintained: !args.no_maintenance,
        ticks: if args.no_maintenance { 0 } else { args.ticks },
        frag_before,
        frag_after,
        maintenance,
        draining_hosts,
        dead_hosts,
        migrations,
        migration_log_digest: format!("{log_digest:016x}"),
        placement_digest: format!("{:016x}", ledger_digest(&ledger)),
        wal_error,
    };
    Ok(serde_json::to_string_pretty(&report).expect("serializable") + "\n")
}

/// The JSON document `recover` emits.
#[derive(Debug, Serialize, Deserialize)]
pub struct RecoveryDocument {
    /// Last mutation sequence number made durable.
    pub seq: u64,
    /// Sequence the snapshot covers, if one was taken.
    pub snapshot_seq: Option<u64>,
    /// Journal records replayed on top of the snapshot.
    pub records_replayed: u64,
    /// Whether a torn tail was truncated during recovery.
    pub truncated_tail: bool,
    /// Names of quarantined hosts carried over.
    pub quarantined: Vec<String>,
    /// Active hosts in the recovered books.
    pub active_hosts: usize,
}

fn recover(infra_path: &str, wal_dir: &str, state_out: Option<&str>) -> Result<String, CliError> {
    let infra = load_infra(infra_path)?;
    let recovery = ostro_core::recover(std::path::Path::new(wal_dir), &infra)?;
    if let Some(path) = state_out {
        write_json(path, &recovery.state)?;
    }
    let document = RecoveryDocument {
        seq: recovery.seq,
        snapshot_seq: recovery.snapshot_seq,
        records_replayed: recovery.records_replayed,
        truncated_tail: recovery.truncated_tail,
        quarantined: recovery
            .quarantined
            .iter()
            .map(|&h| infra.host(h).name().to_owned())
            .collect(),
        active_hosts: recovery.state.active_host_count(),
    };
    Ok(serde_json::to_string_pretty(&document).expect("serializable") + "\n")
}

fn example(kind: &str) -> Result<String, CliError> {
    match kind {
        "infra" => Ok(EXAMPLE_INFRA.trim_start().to_owned()),
        "template" => Ok(EXAMPLE_TEMPLATE.trim_start().to_owned()),
        other => Err(CliError::Usage(format!("unknown example `{other}` (infra|template)"))),
    }
}

const EXAMPLE_INFRA: &str = r#"
{
  "sites": [{
    "name": "east",
    "backbone_uplink_mbps": 400000,
    "racks": [
      {"name": "r0", "uplink_mbps": 100000, "hosts": 16,
       "host": {"vcpus": 16, "memory_mb": 32768, "disk_gb": 1000, "nic_mbps": 10000}},
      {"name": "r1", "uplink_mbps": 100000, "hosts": 16,
       "host": {"vcpus": 16, "memory_mb": 32768, "disk_gb": 1000, "nic_mbps": 10000}}
    ]
  }]
}
"#;

const EXAMPLE_TEMPLATE: &str = r#"
{
  "heat_template_version": "2015-04-30",
  "description": "two web servers on different hosts, a database, and its volume",
  "resources": {
    "web1": {"type": "OS::Nova::Server", "properties": {"vcpus": 2, "memory_mb": 4096}},
    "web2": {"type": "OS::Nova::Server", "properties": {"vcpus": 2, "memory_mb": 4096}},
    "db":   {"type": "OS::Nova::Server", "properties": {"vcpus": 4, "memory_mb": 8192}},
    "data": {"type": "OS::Cinder::Volume", "properties": {"size_gb": 200}},
    "p1": {"type": "ATT::QoS::Pipe",
           "properties": {"between": ["web1", "db"], "bandwidth_mbps": 100}},
    "p2": {"type": "ATT::QoS::Pipe",
           "properties": {"between": ["web2", "db"], "bandwidth_mbps": 100}},
    "att": {"type": "OS::Cinder::VolumeAttachment",
            "properties": {"instance": "db", "volume": "data",
                            "bandwidth_mbps": 300}},
    "dz": {"type": "ATT::QoS::DiversityZone",
           "properties": {"level": "host", "members": ["web1", "web2"]}}
  }
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    fn write_examples(dir: &std::path::Path) -> (String, String) {
        let infra = dir.join("infra.json");
        let template = dir.join("app.json");
        std::fs::write(&infra, example("infra").unwrap()).unwrap();
        std::fs::write(&template, example("template").unwrap()).unwrap();
        (infra.to_str().unwrap().to_owned(), template.to_str().unwrap().to_owned())
    }

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ostro-cli-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(Command::parse(argv("")), Err(CliError::Usage(_))));
        assert!(matches!(Command::parse(argv("frob")), Err(CliError::Usage(_))));
        assert!(matches!(Command::parse(argv("place --infra x.json")), Err(CliError::Usage(_))));
        assert!(matches!(
            Command::parse(argv("place --infra a --template b --algorithm quantum")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            Command::parse(argv("inspect --infra a --bogus 1")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parse_accepts_full_place_invocation() {
        let cmd = Command::parse(argv(
            "place --infra i.json --template t.json --algorithm dbastar \
             --deadline-ms 250 --theta-bw 0.99 --theta-c 0.01 --seed 7 \
             --score-threads 3 --chunk-bytes 65536 --session --stats \
             --shard --pods 6 --state s.json --commit out.json",
        ))
        .unwrap();
        match cmd {
            Command::Place {
                algorithm,
                weights,
                seed,
                score_threads,
                chunk_bytes,
                shard,
                pods,
                session,
                stats,
                state,
                commit,
                ..
            } => {
                assert_eq!(
                    algorithm,
                    Algorithm::DeadlineBoundedAStar { deadline: Duration::from_millis(250) }
                );
                assert_eq!(weights, ObjectiveWeights::BANDWIDTH_DOMINANT);
                assert_eq!(seed, 7);
                assert_eq!(score_threads, 3);
                assert_eq!(chunk_bytes, 65_536);
                assert!(session, "--session is a boolean switch");
                assert!(stats, "--stats is a boolean switch");
                assert!(shard, "--shard is a boolean switch");
                assert_eq!(pods, 6);
                assert_eq!(state.as_deref(), Some("s.json"));
                assert_eq!(commit.as_deref(), Some("out.json"));
            }
            other => panic!("wrong command {other:?}"),
        }
        // Without the switches both default off.
        match Command::parse(argv("place --infra i --template t")).unwrap() {
            Command::Place { session, stats, chunk_bytes, shard, pods, .. } => {
                assert!(!session);
                assert!(!stats);
                assert!(!shard);
                assert_eq!(pods, 0, "0 = engine default K");
                assert_eq!(chunk_bytes, 0);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn end_to_end_place_commit_inspect_validate() {
        let dir = tempdir("e2e");
        let (infra, template) = write_examples(&dir);
        let state_out = dir.join("state.json").to_str().unwrap().to_owned();
        let placement_out = dir.join("placement.json");

        // Place and commit.
        let output =
            run(argv(&format!("place --infra {infra} --template {template} --commit {state_out}")))
                .unwrap();
        std::fs::write(&placement_out, &output).unwrap();
        let doc: PlacementDocument = serde_json::from_str(&output).unwrap();
        assert_eq!(doc.assignments.len(), 4);
        assert_ne!(doc.assignments["web1"], doc.assignments["web2"]);

        // Inspect the committed state.
        let summary = run(argv(&format!("inspect --infra {infra} --state {state_out}"))).unwrap();
        assert!(summary.contains("hosts: 32"), "{summary}");
        assert!(!summary.contains("active hosts: 0 /"), "{summary}");

        // Validate against the pre-placement (fresh) state.
        let verdict = run(argv(&format!(
            "validate --infra {infra} --template {template} --placement {}",
            placement_out.to_str().unwrap()
        )))
        .unwrap();
        assert_eq!(verdict, "placement is valid\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn validate_reports_violations() {
        let dir = tempdir("bad");
        let (infra, template) = write_examples(&dir);
        let output = run(argv(&format!("place --infra {infra} --template {template}"))).unwrap();
        let mut doc: PlacementDocument = serde_json::from_str(&output).unwrap();
        // Break the anti-affinity by force.
        let w1 = doc.assignments["web1"].clone();
        doc.assignments.insert("web2".into(), w1);
        let bad = dir.join("bad.json");
        std::fs::write(&bad, serde_json::to_string(&doc).unwrap()).unwrap();
        let verdict = run(argv(&format!(
            "validate --infra {infra} --template {template} --placement {}",
            bad.to_str().unwrap()
        )))
        .unwrap();
        assert!(verdict.contains("violation"), "{verdict}");
        assert!(verdict.contains("insufficiently separated"), "{verdict}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sequential_placements_share_state() {
        let dir = tempdir("seq");
        let (infra, template) = write_examples(&dir);
        let state = dir.join("state.json").to_str().unwrap().to_owned();
        let first =
            run(argv(&format!("place --infra {infra} --template {template} --commit {state}")))
                .unwrap();
        let second = run(argv(&format!(
            "place --infra {infra} --template {template} --state {state} --commit {state}"
        )))
        .unwrap();
        let d1: PlacementDocument = serde_json::from_str(&first).unwrap();
        let d2: PlacementDocument = serde_json::from_str(&second).unwrap();
        // The second stack sees the first one's usage; with bandwidth-
        // friendly defaults it typically lands elsewhere, but at the
        // very least the committed state accumulated both.
        let summary = run(argv(&format!("inspect --infra {infra} --state {state}"))).unwrap();
        let reserved: u64 = d1.reserved_bandwidth_mbps + d2.reserved_bandwidth_mbps;
        let _ = reserved;
        assert!(summary.contains("reserved bandwidth"), "{summary}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn session_place_matches_cold_place_and_reports_stats() {
        let dir = tempdir("session");
        let (infra, template) = write_examples(&dir);
        let cold = run(argv(&format!("place --infra {infra} --template {template}"))).unwrap();
        let warm =
            run(argv(&format!("place --infra {infra} --template {template} --session --stats")))
                .unwrap();
        let cold: PlacementDocument = serde_json::from_str(&cold).unwrap();
        let warm: PlacementDocument = serde_json::from_str(&warm).unwrap();
        assert_eq!(cold.assignments, warm.assignments, "session must not change decisions");
        assert_eq!(cold.objective.to_bits(), warm.objective.to_bits());
        assert!(cold.stats.is_none(), "stats only appear with --stats");
        let stats = warm.stats.expect("--stats populates the counters");
        assert!(stats.heuristic_evals > 0);
        assert_eq!(stats.session_dirty_hosts, 0, "fresh session has nothing journaled");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn session_place_commit_round_trips_state() {
        let dir = tempdir("session-commit");
        let (infra, template) = write_examples(&dir);
        let cold_state = dir.join("cold.json").to_str().unwrap().to_owned();
        let warm_state = dir.join("warm.json").to_str().unwrap().to_owned();
        run(argv(&format!("place --infra {infra} --template {template} --commit {cold_state}")))
            .unwrap();
        run(argv(&format!(
            "place --infra {infra} --template {template} --session --commit {warm_state}"
        )))
        .unwrap();
        let cold: CapacityState =
            serde_json::from_str(&std::fs::read_to_string(&cold_state).unwrap()).unwrap();
        let warm: CapacityState =
            serde_json::from_str(&std::fs::read_to_string(&warm_state).unwrap()).unwrap();
        assert_eq!(cold, warm, "committed states must be identical");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_accepts_churn_invocation() {
        let cmd = Command::parse(argv(
            "churn --infra i.json --algorithm eg --arrivals 12 --lifetime 3 \
             --seed 9 --crashes 2 --launch-failure-prob 0.1 --stale-race-prob 0.25",
        ))
        .unwrap();
        match cmd {
            Command::Churn {
                arrivals,
                lifetime,
                seed,
                crashes,
                launch_failure_prob,
                stale_race_prob,
                ..
            } => {
                assert_eq!(arrivals, 12);
                assert_eq!(lifetime, 3);
                assert_eq!(seed, 9);
                assert_eq!(crashes, 2);
                assert!((launch_failure_prob - 0.1).abs() < 1e-12);
                assert!((stale_race_prob - 0.25).abs() < 1e-12);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(matches!(Command::parse(argv("churn --arrivals 5")), Err(CliError::Usage(_))));
    }

    #[test]
    fn churn_subcommand_reports_faults_deterministically() {
        let dir = tempdir("churn");
        let (infra, _) = write_examples(&dir);
        let cmdline = format!(
            "churn --infra {infra} --arrivals 8 --lifetime 4 --seed 5 \
             --crashes 2 --launch-failure-prob 0.05 --stale-race-prob 0.2"
        );
        let out = run(argv(&cmdline)).unwrap();
        let mut a: ostro_sim::ChurnReport = serde_json::from_str(&out).unwrap();
        assert_eq!(a.faults.crashes_injected, 2);
        assert_eq!(a.accepted + a.rejected + a.faults.deploy_failures, 8);
        let mut b: ostro_sim::ChurnReport =
            serde_json::from_str(&run(argv(&cmdline)).unwrap()).unwrap();
        a.mean_solver_secs = 0.0;
        b.mean_solver_secs = 0.0;
        assert_eq!(a, b, "same seed must yield an identical churn report");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_accepts_recovery_flags() {
        let cmd = Command::parse(argv(
            "churn --infra i.json --arrivals 10 --wal-dir /tmp/w \
             --crash-at 3,7 --reconcile-every 4 --race-leak-prob 0.5",
        ))
        .unwrap();
        match cmd {
            Command::Churn { wal_dir, crash_at, reconcile_every, race_leak_prob, .. } => {
                assert_eq!(wal_dir.as_deref(), Some("/tmp/w"));
                assert_eq!(crash_at, vec![3, 7]);
                assert_eq!(reconcile_every, 4);
                assert!((race_leak_prob - 0.5).abs() < 1e-12);
            }
            other => panic!("wrong command {other:?}"),
        }
        match Command::parse(argv("recover --infra i.json --wal-dir /tmp/w --state-out s.json"))
            .unwrap()
        {
            Command::Recover { infra, wal_dir, state_out } => {
                assert_eq!(infra, "i.json");
                assert_eq!(wal_dir, "/tmp/w");
                assert_eq!(state_out.as_deref(), Some("s.json"));
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(matches!(
            Command::parse(argv("churn --infra i --crash-at 3,x")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(Command::parse(argv("recover --infra i")), Err(CliError::Usage(_))));
    }

    #[test]
    fn mismatched_state_file_is_a_typed_error() {
        let dir = tempdir("mismatch");
        let (infra, template) = write_examples(&dir);
        // A state for a 4-host fleet against the 32-host example infra.
        let tiny = ostro_datacenter::InfrastructureBuilder::flat(
            "dc",
            1,
            4,
            ostro_model::Resources::new(8, 16_384, 500),
            ostro_model::Bandwidth::from_gbps(10),
            ostro_model::Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap();
        let state_path = dir.join("tiny.json").to_str().unwrap().to_owned();
        std::fs::write(&state_path, serde_json::to_string(&CapacityState::new(&tiny)).unwrap())
            .unwrap();
        let err =
            run(argv(&format!("place --infra {infra} --template {template} --state {state_path}")))
                .unwrap_err();
        match err {
            CliError::StateMismatch { path, expected, found } => {
                assert_eq!(path, state_path);
                assert_eq!(expected, 32);
                assert_eq!(found, 4);
            }
            other => panic!("wrong error {other:?}"),
        }
        // A partial (truncated) state file surfaces as a parse error,
        // not a panic.
        let torn = dir.join("torn.json").to_str().unwrap().to_owned();
        let full = serde_json::to_string(&CapacityState::new(&tiny)).unwrap();
        std::fs::write(&torn, &full[..full.len() / 2]).unwrap();
        let err = run(argv(&format!("place --infra {infra} --template {template} --state {torn}")))
            .unwrap_err();
        assert!(matches!(err, CliError::Parse { .. }), "{err:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_place_journal_survives_and_recovers() {
        let dir = tempdir("wal-place");
        let (infra, template) = write_examples(&dir);
        let wal = dir.join("wal");
        let wal_str = wal.to_str().unwrap().to_owned();
        let commit1 = dir.join("s1.json").to_str().unwrap().to_owned();
        let commit2 = dir.join("s2.json").to_str().unwrap().to_owned();

        // Two journaled commits; the second resumes from the journal.
        run(argv(&format!(
            "place --infra {infra} --template {template} --wal-dir {wal_str} --commit {commit1}"
        )))
        .unwrap();
        run(argv(&format!(
            "place --infra {infra} --template {template} --wal-dir {wal_str} --commit {commit2}"
        )))
        .unwrap();

        // The recovered books equal the second committed state.
        let out_path = dir.join("recovered.json").to_str().unwrap().to_owned();
        let doc = run(argv(&format!(
            "recover --infra {infra} --wal-dir {wal_str} --state-out {out_path}"
        )))
        .unwrap();
        let doc: RecoveryDocument = serde_json::from_str(&doc).unwrap();
        assert_eq!(doc.records_replayed, 2, "two commit records");
        assert!(!doc.truncated_tail);
        assert!(doc.active_hosts > 0);
        let committed: CapacityState =
            serde_json::from_str(&std::fs::read_to_string(&commit2).unwrap()).unwrap();
        let recovered: CapacityState =
            serde_json::from_str(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
        assert_eq!(recovered, committed, "journal replay must equal the committed state");

        // Corrupt-tail regression: chop bytes off the journal's last
        // record; recovery reports the truncation and still lands on
        // the first commit's books instead of failing.
        let log = wal.join("wal.log");
        let bytes = std::fs::read(&log).unwrap();
        std::fs::write(&log, &bytes[..bytes.len() - 3]).unwrap();
        let doc = run(argv(&format!("recover --infra {infra} --wal-dir {wal_str}"))).unwrap();
        let doc: RecoveryDocument = serde_json::from_str(&doc).unwrap();
        assert!(doc.truncated_tail, "torn tail must be reported");
        assert_eq!(doc.records_replayed, 1, "only the intact record survives");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn churn_crash_drills_match_the_uncrashed_run() {
        let dir = tempdir("churn-wal");
        let (infra, _) = write_examples(&dir);
        let wal = dir.join("wal").to_str().unwrap().to_owned();
        let base = format!(
            "churn --infra {infra} --arrivals 8 --lifetime 4 --seed 5 \
             --crashes 1 --launch-failure-prob 0.05 --stale-race-prob 0.3 \
             --race-leak-prob 0.5 --reconcile-every 2"
        );
        let crashed = run(argv(&format!("{base} --wal-dir {wal} --crash-at 3,6"))).unwrap();
        let clean = run(argv(&base)).unwrap();
        let mut a: ostro_sim::ChurnReport = serde_json::from_str(&crashed).unwrap();
        let mut b: ostro_sim::ChurnReport = serde_json::from_str(&clean).unwrap();
        assert_eq!(a.faults.scheduler_restarts, 2);
        a.mean_solver_secs = 0.0;
        a.faults.scheduler_restarts = 0;
        a.faults.wal_records_replayed = 0;
        b.mean_solver_secs = 0.0;
        assert_eq!(a, b, "crash drills must not change any decision");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_accepts_serve_invocation() {
        match Command::parse(argv(
            "serve --infra i.json --requests 12 --depart-prob 0.5 --seed 9 \
             --planners 3 --batch 4 --retries 2 --queue-depth 6 --budget-ms 250 \
             --degrade --chaos-seed 17 --shard --pods 3 --serial",
        ))
        .unwrap()
        {
            Command::Serve {
                requests,
                depart_prob,
                seed,
                planners,
                batch,
                retries,
                queue_depth,
                budget_ms,
                degrade,
                chaos_seed,
                shard,
                pods,
                serial,
                ..
            } => {
                assert_eq!(requests, 12);
                assert!((depart_prob - 0.5).abs() < 1e-12);
                assert_eq!(seed, 9);
                assert_eq!(planners, 3);
                assert_eq!(batch, 4);
                assert_eq!(retries, 2);
                assert_eq!(queue_depth, 6);
                assert_eq!(budget_ms, 250);
                assert!(degrade, "--degrade is a boolean switch");
                assert_eq!(chaos_seed, Some(17));
                assert!(shard, "--shard is a boolean switch");
                assert_eq!(pods, 3);
                assert!(serial, "--serial is a boolean switch");
            }
            other => panic!("wrong command {other:?}"),
        }
        match Command::parse(argv("serve --infra i.json")).unwrap() {
            Command::Serve { queue_depth, budget_ms, degrade, chaos_seed, shard, pods, .. } => {
                assert_eq!(queue_depth, 0, "unbounded queue by default");
                assert_eq!(budget_ms, 0, "no deadline budget by default");
                assert!(!degrade);
                assert_eq!(chaos_seed, None);
                assert!(!shard);
                assert_eq!(pods, 0);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(matches!(Command::parse(argv("serve --requests 5")), Err(CliError::Usage(_))));
    }

    #[test]
    fn place_stats_surface_the_shard_counters() {
        let dir = tempdir("shard-stats");
        let (infra, template) = write_examples(&dir);
        let output =
            run(argv(&format!("place --infra {infra} --template {template} --shard --stats")))
                .unwrap();
        let doc: PlacementDocument = serde_json::from_str(&output).unwrap();
        let stats = doc.stats.expect("--stats requested");
        // The example infra is a single transparent pod, so a sharded
        // request falls back to the plain search — and says so.
        assert_eq!(stats.shard_fallbacks, 1);
        assert_eq!(stats.pods_scanned, 0);
        assert!(output.contains("shard_fallbacks"), "counter missing from the document");
        // Fallback decisions are bit-identical to the unsharded run.
        let plain = run(argv(&format!("place --infra {infra} --template {template}"))).unwrap();
        let plain_doc: PlacementDocument = serde_json::from_str(&plain).unwrap();
        assert_eq!(doc.assignments, plain_doc.assignments);
        assert_eq!(doc.objective.to_bits(), plain_doc.objective.to_bits());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_single_planner_digest_matches_serial() {
        let dir = tempdir("serve");
        let (infra, _) = write_examples(&dir);
        let base = format!("serve --infra {infra} --requests 6 --depart-prob 0.4 --seed 11");
        let serial: ServeReport =
            serde_json::from_str(&run(argv(&format!("{base} --serial"))).unwrap()).unwrap();
        let service: ServeReport =
            serde_json::from_str(&run(argv(&format!("{base} --planners 1 --batch 1"))).unwrap())
                .unwrap();
        assert_eq!(serial.mode, "serial");
        assert_eq!(service.mode, "service");
        assert_eq!(serial.arrivals, 6);
        assert!(serial.service.is_none(), "serial mode has no service counters");
        // One planner, batch size one: the service degenerates to the
        // serial path and every decision must be identical.
        assert_eq!(serial.decision_digest, service.decision_digest);
        assert_eq!((serial.placed, serial.rejected), (service.placed, service.rejected));
        assert_eq!(serial.released, service.released);
        let stats = service.service.expect("service mode reports its counters");
        assert_eq!(stats.committed as usize, service.placed);
        assert_eq!(stats.commit_conflicts, 0, "a lone planner cannot conflict");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_concurrent_run_acknowledges_everything() {
        let dir = tempdir("serve-mt");
        let (infra, _) = write_examples(&dir);
        let wal = dir.join("wal").to_str().unwrap().to_owned();
        let out = run(argv(&format!(
            "serve --infra {infra} --requests 8 --depart-prob 0.4 --seed 3 \
             --planners 4 --batch 2 --wal-dir {wal}"
        )))
        .unwrap();
        let report: ServeReport = serde_json::from_str(&out).unwrap();
        assert_eq!(report.placed + report.rejected, report.arrivals);
        let stats = report.service.expect("service counters");
        assert!(stats.batches >= 1);
        assert!(stats.wal_syncs >= 1, "durable acks must group-commit");
        // The journal recovers to exactly the books the run left.
        let doc = run(argv(&format!("recover --infra {infra} --wal-dir {wal}"))).unwrap();
        let doc: RecoveryDocument = serde_json::from_str(&doc).unwrap();
        assert!(!doc.truncated_tail);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_overload_sheds_with_typed_breakdown() {
        let dir = tempdir("serve-shed");
        let (infra, _) = write_examples(&dir);
        let out = run(argv(&format!(
            "serve --infra {infra} --requests 32 --depart-prob 0.0 --seed 5 \
             --planners 1 --batch 1 --queue-depth 1 --degrade"
        )))
        .unwrap();
        let report: ServeReport = serde_json::from_str(&out).unwrap();
        assert_eq!(
            report.placed + report.rejected + report.shed + report.panicked,
            report.arrivals,
            "every arrival resolves into exactly one bucket"
        );
        assert!(report.shed > 0, "queue depth 1 under a 32-request burst must shed");
        assert_ne!(report.shed_digest, format!("{:016x}", 0u64), "sheds fold into the digest");
        let stats = report.service.expect("service counters");
        assert_eq!(
            stats.shed_queue_full + stats.shed_deadline,
            report.shed as u64,
            "the report's shed bucket is the service's admission counters"
        );
        assert!(report.wal_error.is_none(), "no journal, no journal error");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_chaos_run_accounts_for_every_arrival() {
        let dir = tempdir("serve-chaos");
        let (infra, _) = write_examples(&dir);
        let wal = dir.join("wal").to_str().unwrap().to_owned();
        let out = run(argv(&format!(
            "serve --infra {infra} --requests 10 --depart-prob 0.3 --seed 4 \
             --planners 2 --batch 2 --chaos-seed 99 --wal-dir {wal}"
        )))
        .unwrap();
        let report: ServeReport = serde_json::from_str(&out).unwrap();
        assert_eq!(
            report.placed + report.rejected + report.shed + report.panicked,
            report.arrivals,
            "chaos may shed or panic, but never lose an arrival"
        );
        // Whatever chaos injected, the journal still recovers; torn
        // tails are truncated, never fatal.
        let doc = run(argv(&format!("recover --infra {infra} --wal-dir {wal}"))).unwrap();
        let _: RecoveryDocument = serde_json::from_str(&doc).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_accepts_maintain_invocation() {
        match Command::parse(argv(
            "maintain --infra i.json --arrivals 40 --decay 0.6 --seed 3 --ticks 20 \
             --sweep-budget 4 --candidates 8 --fail-stop 2 --gray 1 --flappy 1 \
             --shard --pods 2 --no-maintenance --wal-dir /tmp/w",
        ))
        .unwrap()
        {
            Command::Maintain {
                arrivals,
                decay,
                seed,
                ticks,
                sweep_budget,
                candidates,
                fail_stop,
                gray,
                flappy,
                shard,
                pods,
                no_maintenance,
                wal_dir,
                ..
            } => {
                assert_eq!(arrivals, 40);
                assert!((decay - 0.6).abs() < 1e-12);
                assert_eq!(seed, 3);
                assert_eq!(ticks, 20);
                assert_eq!(sweep_budget, 4);
                assert_eq!(candidates, 8);
                assert_eq!(fail_stop, 2);
                assert_eq!(gray, 1);
                assert_eq!(flappy, 1);
                assert!(shard);
                assert_eq!(pods, 2);
                assert!(no_maintenance, "--no-maintenance is a boolean switch");
                assert_eq!(wal_dir.as_deref(), Some("/tmp/w"));
            }
            other => panic!("wrong command {other:?}"),
        }
        match Command::parse(argv("maintain --infra i.json")).unwrap() {
            Command::Maintain { arrivals, ticks, sweep_budget, no_maintenance, .. } => {
                assert_eq!(arrivals, 64);
                assert_eq!(ticks, 64);
                assert_eq!(sweep_budget, 8);
                assert!(!no_maintenance);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(matches!(Command::parse(argv("maintain --ticks 5")), Err(CliError::Usage(_))));
        assert!(matches!(
            Command::parse(argv("serve --infra i.json --serial --maintain")).unwrap().execute(),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn maintain_recovers_fragmentation_and_is_deterministic() {
        let dir = tempdir("maintain");
        let (infra, _) = write_examples(&dir);
        let cmdline = format!("maintain --infra {infra} --seed 7 --fail-stop 1");
        let out = run(argv(&cmdline)).unwrap();
        let report: MaintainReport = serde_json::from_str(&out).unwrap();
        assert!(report.maintained);
        assert!(
            report.frag_after.fleet_objective < report.frag_before.fleet_objective,
            "maintenance must strictly improve the fleet objective: {} -> {}",
            report.frag_before.fleet_objective,
            report.frag_after.fleet_objective,
        );
        assert!(report.frag_after.active_hosts < report.frag_before.active_hosts);
        assert_eq!(report.dead_hosts.len(), 1, "the fail-stop host must die");
        assert!(report.migrations > 0);
        // No wall-clock fields: two same-seed runs diff whole.
        assert_eq!(out, run(argv(&cmdline)).unwrap(), "maintain must be bit-deterministic");
        // The equal-churn baseline leaves the fragmentation in place.
        let base = run(argv(&format!("{cmdline} --no-maintenance"))).unwrap();
        let base: MaintainReport = serde_json::from_str(&base).unwrap();
        assert!(!base.maintained);
        assert_eq!(base.frag_before.fleet_objective, base.frag_after.fleet_objective);
        assert_eq!(base.frag_before.fleet_objective, report.frag_before.fleet_objective);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn maintain_journals_every_migration() {
        let dir = tempdir("maintain-wal");
        let (infra, _) = write_examples(&dir);
        let wal = dir.join("wal").to_str().unwrap().to_owned();
        let out = run(argv(&format!("maintain --infra {infra} --seed 7 --wal-dir {wal}"))).unwrap();
        let report: MaintainReport = serde_json::from_str(&out).unwrap();
        assert!(report.wal_error.is_none());
        assert!(report.migrations > 0);
        // The journal replays to books with exactly the run's active
        // hosts — migrations included.
        let doc = run(argv(&format!("recover --infra {infra} --wal-dir {wal}"))).unwrap();
        let doc: RecoveryDocument = serde_json::from_str(&doc).unwrap();
        assert!(!doc.truncated_tail);
        assert_eq!(doc.active_hosts, report.frag_after.active_hosts);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_maintain_defragments_after_the_stream() {
        let dir = tempdir("serve-maintain");
        let (infra, _) = write_examples(&dir);
        let out = run(argv(&format!(
            "serve --infra {infra} --requests 16 --depart-prob 0.5 --seed 11 \
             --planners 1 --batch 1 --maintain"
        )))
        .unwrap();
        let report: ServeReport = serde_json::from_str(&out).unwrap();
        let maintenance = report.maintenance.expect("--maintain reports the plane's counters");
        assert_eq!(maintenance.sweeps, 8, "one sweep per post-stream tick");
        let stats = report.service.expect("service counters");
        assert_eq!(stats.maintenance_ticks, 8);
        assert_eq!(
            stats.maintenance_migrations,
            maintenance.drain_migrations + maintenance.defrag_migrations,
            "the service's counter mirrors the plane's"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_files_surface_clean_errors() {
        let err = run(argv("inspect --infra /nonexistent/infra.json")).unwrap_err();
        assert!(matches!(err, CliError::Io { .. }));
        let dir = tempdir("badjson");
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{not json").unwrap();
        let err = run(argv(&format!("inspect --infra {}", bad.to_str().unwrap()))).unwrap_err();
        assert!(matches!(err, CliError::Parse { .. }));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn examples_are_valid_inputs() {
        let infra: InfraSpec = serde_json::from_str(&example("infra").unwrap()).unwrap();
        assert_eq!(infra.build().unwrap().host_count(), 32);
        let template: HeatTemplate = serde_json::from_str(&example("template").unwrap()).unwrap();
        assert_eq!(template.server_count(), 3);
        assert!(example("bogus").is_err());
    }
}
