//! Command parsing and execution. Everything returns its output as a
//! `String` so the logic is unit-testable without spawning processes.

use std::collections::BTreeMap;
use std::time::Duration;

use ostro_core::{
    verify_placement, Algorithm, ObjectiveWeights, Placement, PlacementRequest, Scheduler,
    SchedulerSession, SearchStats, Wal, WalOptions,
};
use ostro_datacenter::{CapacityState, HostId, InfraSpec, Infrastructure};
use ostro_heat::{annotate_template, extract_topology, HeatTemplate};
use serde::{Deserialize, Serialize};

use crate::cli_error::CliError;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Summarize an infrastructure (and optional state).
    Inspect {
        /// Path to the infrastructure spec.
        infra: String,
        /// Optional path to a capacity state.
        state: Option<String>,
    },
    /// Place a template, printing the decision document.
    Place {
        /// Path to the infrastructure spec.
        infra: String,
        /// Path to the QoS-enhanced Heat template.
        template: String,
        /// The algorithm to run.
        algorithm: Algorithm,
        /// Objective weights.
        weights: ObjectiveWeights,
        /// RNG seed.
        seed: u64,
        /// Scoring participants (0 = available_parallelism).
        score_threads: usize,
        /// Per-chunk cache budget in bytes (0 = default).
        chunk_bytes: usize,
        /// Solve through a [`SchedulerSession`] instead of a cold
        /// per-request scheduler. Bit-identical results; exercises the
        /// online-service path and enables the session stats counters.
        session: bool,
        /// Include the search-effort counters in the output document.
        stats: bool,
        /// Optional path to the pre-existing capacity state.
        state: Option<String>,
        /// Optional path to write the post-commit state to.
        commit: Option<String>,
        /// Optional write-ahead-journal directory (implies the session
        /// path): mutations are journaled, and a non-empty journal's
        /// recovered books take the place of `--state`.
        wal_dir: Option<String>,
    },
    /// Re-check a placement document against all constraints.
    Validate {
        /// Path to the infrastructure spec.
        infra: String,
        /// Path to the template.
        template: String,
        /// Path to a placement document produced by `place`.
        placement: String,
        /// Optional path to the capacity state.
        state: Option<String>,
    },
    /// Run a churn simulation, optionally with fault injection.
    Churn {
        /// Path to the infrastructure spec.
        infra: String,
        /// The algorithm to run.
        algorithm: Algorithm,
        /// Objective weights.
        weights: ObjectiveWeights,
        /// Arrival events to simulate.
        arrivals: usize,
        /// Mean tenant lifetime in ticks.
        lifetime: usize,
        /// RNG seed (workload and fault plan).
        seed: u64,
        /// Host crashes to schedule (0 with the probabilities at 0
        /// disables fault injection entirely).
        crashes: usize,
        /// Per-attempt transient launch-failure probability.
        launch_failure_prob: f64,
        /// Per-tick stale-capacity race probability.
        stale_race_prob: f64,
        /// Probability that a stale race leaks its grab (orphan drift).
        race_leak_prob: f64,
        /// Anti-entropy sweep cadence in ticks (0 = never).
        reconcile_every: usize,
        /// Optional journal directory for crash-recovery drills.
        wal_dir: Option<String>,
        /// Ticks at which to kill + recover the scheduler.
        crash_at: Vec<usize>,
    },
    /// Reconstruct scheduler state from a write-ahead journal.
    Recover {
        /// Path to the infrastructure spec.
        infra: String,
        /// The journal directory (`wal.log` + `snapshot.json`).
        wal_dir: String,
        /// Optional path to write the recovered capacity state to.
        state_out: Option<String>,
    },
    /// Print an example input file.
    Example {
        /// `infra` or `template`.
        kind: String,
    },
}

/// The JSON document `place` emits (and `validate` consumes).
#[derive(Debug, Serialize, Deserialize)]
pub struct PlacementDocument {
    /// Node name → host name decisions.
    pub assignments: BTreeMap<String, String>,
    /// Total reserved bandwidth in Mbps.
    pub reserved_bandwidth_mbps: u64,
    /// Previously idle hosts activated.
    pub new_active_hosts: usize,
    /// Distinct hosts used.
    pub hosts_used: usize,
    /// Normalized objective value.
    pub objective: f64,
    /// Solver wall-clock seconds.
    pub elapsed_secs: f64,
    /// Search-effort counters, present when `--stats` was passed.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub stats: Option<SearchStats>,
    /// The template with scheduler hints stamped in.
    pub annotated_template: HeatTemplate,
}

const USAGE: &str = "\
usage:
  ostro inspect  --infra <file> [--state <file>]
  ostro place    --infra <file> --template <file>
                 [--algorithm egc|egbw|eg|bastar|dbastar] [--deadline-ms N]
                 [--theta-bw X] [--theta-c X] [--seed N] [--score-threads N]
                 [--chunk-bytes N] [--session] [--stats]
                 [--state <file>] [--commit <file>] [--wal-dir <dir>]
  ostro validate --infra <file> --template <file> --placement <file>
                 [--state <file>]
  ostro churn    --infra <file>
                 [--algorithm egc|egbw|eg|bastar|dbastar] [--deadline-ms N]
                 [--theta-bw X] [--theta-c X] [--seed N]
                 [--arrivals N] [--lifetime N] [--crashes N]
                 [--launch-failure-prob X] [--stale-race-prob X]
                 [--race-leak-prob X] [--reconcile-every N]
                 [--wal-dir <dir>] [--crash-at T1,T2,...]
  ostro recover  --infra <file> --wal-dir <dir> [--state-out <file>]
  ostro example  infra|template";

impl Command {
    /// Parses an argument vector (without the program name).
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] with a human-readable message.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, CliError> {
        let mut iter = args.into_iter();
        let sub = iter.next().ok_or_else(|| CliError::Usage(USAGE.to_owned()))?;
        let mut flags: BTreeMap<String, String> = BTreeMap::new();
        let mut positional = Vec::new();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                // Boolean switches take no value.
                if matches!(name, "session" | "stats") {
                    flags.insert(name.to_owned(), "true".to_owned());
                    continue;
                }
                let value = iter
                    .next()
                    .ok_or_else(|| CliError::Usage(format!("flag --{name} needs a value")))?;
                flags.insert(name.to_owned(), value);
            } else {
                positional.push(arg);
            }
        }
        let take = |flags: &mut BTreeMap<String, String>, name: &str| -> Result<String, CliError> {
            flags
                .remove(name)
                .ok_or_else(|| CliError::Usage(format!("missing required flag --{name}")))
        };
        let command = match sub.as_str() {
            "inspect" => {
                Command::Inspect { infra: take(&mut flags, "infra")?, state: flags.remove("state") }
            }
            "place" => {
                let algorithm = algorithm_flags(&mut flags)?;
                let weights = weight_flags(&mut flags)?;
                Command::Place {
                    infra: take(&mut flags, "infra")?,
                    template: take(&mut flags, "template")?,
                    algorithm,
                    weights,
                    seed: flags
                        .remove("seed")
                        .map(|v| parse_num(&v, "seed"))
                        .transpose()?
                        .unwrap_or(0xB0DE),
                    score_threads: flags
                        .remove("score-threads")
                        .map(|v| parse_num(&v, "score-threads"))
                        .transpose()?
                        .unwrap_or(0) as usize,
                    chunk_bytes: flags
                        .remove("chunk-bytes")
                        .map(|v| parse_num(&v, "chunk-bytes"))
                        .transpose()?
                        .unwrap_or(0) as usize,
                    session: flags.remove("session").is_some(),
                    stats: flags.remove("stats").is_some(),
                    state: flags.remove("state"),
                    commit: flags.remove("commit"),
                    wal_dir: flags.remove("wal-dir"),
                }
            }
            "validate" => Command::Validate {
                infra: take(&mut flags, "infra")?,
                template: take(&mut flags, "template")?,
                placement: take(&mut flags, "placement")?,
                state: flags.remove("state"),
            },
            "churn" => {
                let algorithm = algorithm_flags(&mut flags)?;
                let weights = weight_flags(&mut flags)?;
                Command::Churn {
                    infra: take(&mut flags, "infra")?,
                    algorithm,
                    weights,
                    arrivals: flags
                        .remove("arrivals")
                        .map(|v| parse_num(&v, "arrivals"))
                        .transpose()?
                        .unwrap_or(40) as usize,
                    lifetime: flags
                        .remove("lifetime")
                        .map(|v| parse_num(&v, "lifetime"))
                        .transpose()?
                        .unwrap_or(8) as usize,
                    seed: flags
                        .remove("seed")
                        .map(|v| parse_num(&v, "seed"))
                        .transpose()?
                        .unwrap_or(7),
                    crashes: flags
                        .remove("crashes")
                        .map(|v| parse_num(&v, "crashes"))
                        .transpose()?
                        .unwrap_or(0) as usize,
                    launch_failure_prob: flags
                        .remove("launch-failure-prob")
                        .map(|v| parse_float(&v, "launch-failure-prob"))
                        .transpose()?
                        .unwrap_or(0.0),
                    stale_race_prob: flags
                        .remove("stale-race-prob")
                        .map(|v| parse_float(&v, "stale-race-prob"))
                        .transpose()?
                        .unwrap_or(0.0),
                    race_leak_prob: flags
                        .remove("race-leak-prob")
                        .map(|v| parse_float(&v, "race-leak-prob"))
                        .transpose()?
                        .unwrap_or(0.0),
                    reconcile_every: flags
                        .remove("reconcile-every")
                        .map(|v| parse_num(&v, "reconcile-every"))
                        .transpose()?
                        .unwrap_or(0) as usize,
                    wal_dir: flags.remove("wal-dir"),
                    crash_at: flags
                        .remove("crash-at")
                        .map(|v| parse_tick_list(&v, "crash-at"))
                        .transpose()?
                        .unwrap_or_default(),
                }
            }
            "recover" => Command::Recover {
                infra: take(&mut flags, "infra")?,
                wal_dir: take(&mut flags, "wal-dir")?,
                state_out: flags.remove("state-out"),
            },
            "example" => Command::Example {
                kind: positional
                    .first()
                    .cloned()
                    .ok_or_else(|| CliError::Usage("example needs `infra` or `template`".into()))?,
            },
            other => return Err(CliError::Usage(format!("unknown command `{other}`\n{USAGE}"))),
        };
        if let Some(extra) = flags.keys().next() {
            return Err(CliError::Usage(format!("unknown flag --{extra}")));
        }
        Ok(command)
    }

    /// Executes the command, returning its stdout payload.
    ///
    /// # Errors
    ///
    /// Any [`CliError`].
    pub fn execute(&self) -> Result<String, CliError> {
        match self {
            Command::Inspect { infra, state } => inspect(infra, state.as_deref()),
            Command::Place {
                infra,
                template,
                algorithm,
                weights,
                seed,
                score_threads,
                chunk_bytes,
                session,
                stats,
                state,
                commit,
                wal_dir,
            } => place(&PlaceArgs {
                infra,
                template,
                algorithm: *algorithm,
                weights: *weights,
                seed: *seed,
                score_threads: *score_threads,
                chunk_bytes: *chunk_bytes,
                session: *session,
                stats: *stats,
                state: state.as_deref(),
                commit: commit.as_deref(),
                wal_dir: wal_dir.as_deref(),
            }),
            Command::Validate { infra, template, placement, state } => {
                validate(infra, template, placement, state.as_deref())
            }
            Command::Churn {
                infra,
                algorithm,
                weights,
                arrivals,
                lifetime,
                seed,
                crashes,
                launch_failure_prob,
                stale_race_prob,
                race_leak_prob,
                reconcile_every,
                wal_dir,
                crash_at,
            } => churn(&ChurnArgs {
                infra,
                algorithm: *algorithm,
                weights: *weights,
                arrivals: *arrivals,
                lifetime: *lifetime,
                seed: *seed,
                crashes: *crashes,
                launch_failure_prob: *launch_failure_prob,
                stale_race_prob: *stale_race_prob,
                race_leak_prob: *race_leak_prob,
                reconcile_every: *reconcile_every,
                wal_dir: wal_dir.as_deref(),
                crash_at,
            }),
            Command::Recover { infra, wal_dir, state_out } => {
                recover(infra, wal_dir, state_out.as_deref())
            }
            Command::Example { kind } => example(kind),
        }
    }
}

/// Parses and executes in one go — the whole CLI, minus process I/O.
///
/// # Errors
///
/// Any [`CliError`].
pub fn run<I: IntoIterator<Item = String>>(args: I) -> Result<String, CliError> {
    Command::parse(args)?.execute()
}

/// Shared `--algorithm` / `--deadline-ms` handling for `place`/`churn`.
fn algorithm_flags(flags: &mut BTreeMap<String, String>) -> Result<Algorithm, CliError> {
    let deadline = flags
        .remove("deadline-ms")
        .map(|v| parse_num(&v, "deadline-ms"))
        .transpose()?
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_millis(500));
    match flags.remove("algorithm").as_deref() {
        None | Some("eg") => Ok(Algorithm::Greedy),
        Some("egc") => Ok(Algorithm::GreedyCompute),
        Some("egbw") => Ok(Algorithm::GreedyBandwidth),
        Some("bastar") => Ok(Algorithm::BoundedAStar),
        Some("dbastar") => Ok(Algorithm::DeadlineBoundedAStar { deadline }),
        Some(other) => Err(CliError::Usage(format!("unknown algorithm `{other}`"))),
    }
}

/// Shared `--theta-bw` / `--theta-c` handling for `place`/`churn`.
fn weight_flags(flags: &mut BTreeMap<String, String>) -> Result<ObjectiveWeights, CliError> {
    let theta_bw =
        flags.remove("theta-bw").map(|v| parse_float(&v, "theta-bw")).transpose()?.unwrap_or(0.6);
    let theta_c = flags
        .remove("theta-c")
        .map(|v| parse_float(&v, "theta-c"))
        .transpose()?
        .unwrap_or(1.0 - theta_bw);
    Ok(ObjectiveWeights::new(theta_bw, theta_c)?)
}

fn parse_num(v: &str, flag: &str) -> Result<u64, CliError> {
    v.parse().map_err(|_| CliError::Usage(format!("--{flag}: `{v}` is not a number")))
}

fn parse_float(v: &str, flag: &str) -> Result<f64, CliError> {
    v.parse().map_err(|_| CliError::Usage(format!("--{flag}: `{v}` is not a number")))
}

/// Parses a comma-separated tick list, e.g. `--crash-at 5,13,20`.
fn parse_tick_list(v: &str, flag: &str) -> Result<Vec<usize>, CliError> {
    v.split(',')
        .filter(|part| !part.is_empty())
        .map(|part| parse_num(part.trim(), flag).map(|n| n as usize))
        .collect()
}

fn read_json<T: serde::de::DeserializeOwned>(path: &str) -> Result<T, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|source| CliError::Io { path: path.to_owned(), source })?;
    serde_json::from_str(&text).map_err(|source| CliError::Parse { path: path.to_owned(), source })
}

fn write_json<T: Serialize>(path: &str, value: &T) -> Result<(), CliError> {
    let text = serde_json::to_string_pretty(value).expect("serializable");
    std::fs::write(path, text).map_err(|source| CliError::Io { path: path.to_owned(), source })
}

fn load_infra(path: &str) -> Result<Infrastructure, CliError> {
    let spec: InfraSpec = read_json(path)?;
    Ok(spec.build()?)
}

fn load_state(infra: &Infrastructure, path: Option<&str>) -> Result<CapacityState, CliError> {
    match path {
        None => Ok(CapacityState::new(infra)),
        Some(path) => {
            let state: CapacityState = read_json(path)?;
            // A state file for a different fleet would index out of
            // bounds (or silently mis-account); refuse it up front.
            if state.host_count() != infra.host_count() {
                return Err(CliError::StateMismatch {
                    path: path.to_owned(),
                    expected: infra.host_count(),
                    found: state.host_count(),
                });
            }
            Ok(state)
        }
    }
}

fn inspect(infra_path: &str, state_path: Option<&str>) -> Result<String, CliError> {
    let infra = load_infra(infra_path)?;
    let state = load_state(&infra, state_path)?;
    let mut out = String::new();
    let total: ostro_model::Resources = infra.hosts().iter().map(|h| h.capacity()).sum();
    out.push_str(&format!(
        "sites: {}  pods: {}  racks: {}  hosts: {}\n",
        infra.sites().len(),
        infra.pods().iter().filter(|p| !p.is_transparent()).count(),
        infra.racks().len(),
        infra.host_count(),
    ));
    out.push_str(&format!(
        "total capacity: {total}\nactive hosts: {} / {}\nreserved bandwidth: {}\n",
        state.active_host_count(),
        infra.host_count(),
        state.total_reserved_bandwidth(&infra),
    ));
    Ok(out)
}

/// Everything `place` needs, bundled so the executor stays readable.
struct PlaceArgs<'a> {
    infra: &'a str,
    template: &'a str,
    algorithm: Algorithm,
    weights: ObjectiveWeights,
    seed: u64,
    score_threads: usize,
    chunk_bytes: usize,
    session: bool,
    stats: bool,
    state: Option<&'a str>,
    commit: Option<&'a str>,
    wal_dir: Option<&'a str>,
}

fn place(args: &PlaceArgs) -> Result<String, CliError> {
    let infra = load_infra(args.infra)?;
    let template: HeatTemplate = read_json(args.template)?;
    let mut state = load_state(&infra, args.state)?;
    let (topology, names) = extract_topology(&template)?;
    let request = PlacementRequest {
        algorithm: args.algorithm,
        weights: args.weights,
        seed: args.seed,
        score_threads: args.score_threads,
        chunk_bytes: args.chunk_bytes,
        ..PlacementRequest::default()
    };
    // The session path produces bit-identical decisions; it exists so
    // the counters (and a long-running service built on this code
    // path) can be exercised from the command line. `--wal-dir`
    // implies it: the journal protocol is a session concern.
    let outcome = if args.session || args.wal_dir.is_some() {
        let mut session = match args.wal_dir {
            Some(dir) => {
                let (wal, recovery) =
                    Wal::open(std::path::Path::new(dir), &infra, WalOptions::default())?;
                // A non-empty journal is the durable continuation of an
                // earlier run; its books supersede any `--state` file.
                let mut session = if recovery.seq > 0 {
                    SchedulerSession::with_recovery(&infra, &recovery)
                } else {
                    SchedulerSession::with_state(&infra, state)
                };
                session.attach_wal(wal);
                session
            }
            None => SchedulerSession::with_state(&infra, state),
        };
        let outcome = session.place(&topology, &request)?;
        if args.commit.is_some() {
            session.commit(&topology, &outcome.placement)?;
        }
        if let Some(e) = session.take_wal_error() {
            return Err(e.into());
        }
        state = session.into_state();
        outcome
    } else {
        let scheduler = Scheduler::new(&infra);
        let outcome = scheduler.place(&topology, &state, &request)?;
        if args.commit.is_some() {
            scheduler.commit(&topology, &outcome.placement, &mut state)?;
        }
        outcome
    };
    let annotated = annotate_template(&template, &outcome.placement, &infra, &names);

    if let Some(commit_path) = args.commit {
        write_json(commit_path, &state)?;
    }

    let document = PlacementDocument {
        assignments: names
            .iter()
            .map(|(name, &node)| {
                (name.clone(), infra.host(outcome.placement.host_of(node)).name().to_owned())
            })
            .collect(),
        reserved_bandwidth_mbps: outcome.reserved_bandwidth.as_mbps(),
        new_active_hosts: outcome.new_active_hosts,
        hosts_used: outcome.hosts_used,
        objective: outcome.objective,
        elapsed_secs: outcome.elapsed.as_secs_f64(),
        stats: args.stats.then_some(outcome.stats),
        annotated_template: annotated,
    };
    Ok(serde_json::to_string_pretty(&document).expect("serializable") + "\n")
}

fn validate(
    infra_path: &str,
    template_path: &str,
    placement_path: &str,
    state_path: Option<&str>,
) -> Result<String, CliError> {
    let infra = load_infra(infra_path)?;
    let template: HeatTemplate = read_json(template_path)?;
    let state = load_state(&infra, state_path)?;
    let (topology, names) = extract_topology(&template)?;
    let document: PlacementDocument = read_json(placement_path)?;

    let host_by_name: BTreeMap<&str, HostId> =
        infra.hosts().iter().map(|h| (h.name(), h.id())).collect();
    let mut assignments = vec![HostId::from_index(0); topology.node_count()];
    for (name, &node) in &names {
        let host_name = document.assignments.get(name).ok_or_else(|| {
            CliError::Usage(format!("placement document is missing node `{name}`"))
        })?;
        let host = host_by_name.get(host_name.as_str()).ok_or_else(|| {
            CliError::Usage(format!("placement names unknown host `{host_name}`"))
        })?;
        assignments[node.index()] = *host;
    }
    let placement = Placement::new(assignments);
    let violations = verify_placement(&topology, &infra, &state, &placement)?;
    if violations.is_empty() {
        Ok("placement is valid\n".to_owned())
    } else {
        let mut out = format!("{} violation(s):\n", violations.len());
        for v in violations {
            out.push_str(&format!("  - {v}\n"));
        }
        Ok(out)
    }
}

/// Everything `churn` needs, bundled so the executor stays readable.
struct ChurnArgs<'a> {
    infra: &'a str,
    algorithm: Algorithm,
    weights: ObjectiveWeights,
    arrivals: usize,
    lifetime: usize,
    seed: u64,
    crashes: usize,
    launch_failure_prob: f64,
    stale_race_prob: f64,
    race_leak_prob: f64,
    reconcile_every: usize,
    wal_dir: Option<&'a str>,
    crash_at: &'a [usize],
}

fn churn(args: &ChurnArgs) -> Result<String, CliError> {
    let infra = load_infra(args.infra)?;
    let inject = args.crashes > 0
        || args.launch_failure_prob > 0.0
        || args.stale_race_prob > 0.0
        || args.race_leak_prob > 0.0;
    let faults = inject.then(|| ostro_sim::FaultConfig {
        seed: args.seed,
        host_crashes: args.crashes,
        launch_failure_prob: args.launch_failure_prob,
        stale_race_prob: args.stale_race_prob,
        race_leak_prob: args.race_leak_prob,
        ..ostro_sim::FaultConfig::default()
    });
    let recovery = args.wal_dir.map(|dir| ostro_sim::RecoveryConfig {
        wal_dir: dir.to_owned(),
        crash_ticks: args.crash_at.to_vec(),
        snapshot_every: 64,
    });
    let config = ostro_sim::ChurnConfig {
        arrivals: args.arrivals,
        mean_lifetime: args.lifetime.max(1),
        seed: args.seed,
        weights: args.weights,
        faults,
        recovery,
        reconcile_every: args.reconcile_every,
        ..ostro_sim::ChurnConfig::default()
    };
    let report = ostro_sim::run_churn(&infra, args.algorithm, &config)?;
    Ok(serde_json::to_string_pretty(&report).expect("serializable") + "\n")
}

/// The JSON document `recover` emits.
#[derive(Debug, Serialize, Deserialize)]
pub struct RecoveryDocument {
    /// Last mutation sequence number made durable.
    pub seq: u64,
    /// Sequence the snapshot covers, if one was taken.
    pub snapshot_seq: Option<u64>,
    /// Journal records replayed on top of the snapshot.
    pub records_replayed: u64,
    /// Whether a torn tail was truncated during recovery.
    pub truncated_tail: bool,
    /// Names of quarantined hosts carried over.
    pub quarantined: Vec<String>,
    /// Active hosts in the recovered books.
    pub active_hosts: usize,
}

fn recover(infra_path: &str, wal_dir: &str, state_out: Option<&str>) -> Result<String, CliError> {
    let infra = load_infra(infra_path)?;
    let recovery = ostro_core::recover(std::path::Path::new(wal_dir), &infra)?;
    if let Some(path) = state_out {
        write_json(path, &recovery.state)?;
    }
    let document = RecoveryDocument {
        seq: recovery.seq,
        snapshot_seq: recovery.snapshot_seq,
        records_replayed: recovery.records_replayed,
        truncated_tail: recovery.truncated_tail,
        quarantined: recovery
            .quarantined
            .iter()
            .map(|&h| infra.host(h).name().to_owned())
            .collect(),
        active_hosts: recovery.state.active_host_count(),
    };
    Ok(serde_json::to_string_pretty(&document).expect("serializable") + "\n")
}

fn example(kind: &str) -> Result<String, CliError> {
    match kind {
        "infra" => Ok(EXAMPLE_INFRA.trim_start().to_owned()),
        "template" => Ok(EXAMPLE_TEMPLATE.trim_start().to_owned()),
        other => Err(CliError::Usage(format!("unknown example `{other}` (infra|template)"))),
    }
}

const EXAMPLE_INFRA: &str = r#"
{
  "sites": [{
    "name": "east",
    "backbone_uplink_mbps": 400000,
    "racks": [
      {"name": "r0", "uplink_mbps": 100000, "hosts": 16,
       "host": {"vcpus": 16, "memory_mb": 32768, "disk_gb": 1000, "nic_mbps": 10000}},
      {"name": "r1", "uplink_mbps": 100000, "hosts": 16,
       "host": {"vcpus": 16, "memory_mb": 32768, "disk_gb": 1000, "nic_mbps": 10000}}
    ]
  }]
}
"#;

const EXAMPLE_TEMPLATE: &str = r#"
{
  "heat_template_version": "2015-04-30",
  "description": "two web servers on different hosts, a database, and its volume",
  "resources": {
    "web1": {"type": "OS::Nova::Server", "properties": {"vcpus": 2, "memory_mb": 4096}},
    "web2": {"type": "OS::Nova::Server", "properties": {"vcpus": 2, "memory_mb": 4096}},
    "db":   {"type": "OS::Nova::Server", "properties": {"vcpus": 4, "memory_mb": 8192}},
    "data": {"type": "OS::Cinder::Volume", "properties": {"size_gb": 200}},
    "p1": {"type": "ATT::QoS::Pipe",
           "properties": {"between": ["web1", "db"], "bandwidth_mbps": 100}},
    "p2": {"type": "ATT::QoS::Pipe",
           "properties": {"between": ["web2", "db"], "bandwidth_mbps": 100}},
    "att": {"type": "OS::Cinder::VolumeAttachment",
            "properties": {"instance": "db", "volume": "data",
                            "bandwidth_mbps": 300}},
    "dz": {"type": "ATT::QoS::DiversityZone",
           "properties": {"level": "host", "members": ["web1", "web2"]}}
  }
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    fn write_examples(dir: &std::path::Path) -> (String, String) {
        let infra = dir.join("infra.json");
        let template = dir.join("app.json");
        std::fs::write(&infra, example("infra").unwrap()).unwrap();
        std::fs::write(&template, example("template").unwrap()).unwrap();
        (infra.to_str().unwrap().to_owned(), template.to_str().unwrap().to_owned())
    }

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ostro-cli-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(Command::parse(argv("")), Err(CliError::Usage(_))));
        assert!(matches!(Command::parse(argv("frob")), Err(CliError::Usage(_))));
        assert!(matches!(Command::parse(argv("place --infra x.json")), Err(CliError::Usage(_))));
        assert!(matches!(
            Command::parse(argv("place --infra a --template b --algorithm quantum")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            Command::parse(argv("inspect --infra a --bogus 1")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parse_accepts_full_place_invocation() {
        let cmd = Command::parse(argv(
            "place --infra i.json --template t.json --algorithm dbastar \
             --deadline-ms 250 --theta-bw 0.99 --theta-c 0.01 --seed 7 \
             --score-threads 3 --chunk-bytes 65536 --session --stats \
             --state s.json --commit out.json",
        ))
        .unwrap();
        match cmd {
            Command::Place {
                algorithm,
                weights,
                seed,
                score_threads,
                chunk_bytes,
                session,
                stats,
                state,
                commit,
                ..
            } => {
                assert_eq!(
                    algorithm,
                    Algorithm::DeadlineBoundedAStar { deadline: Duration::from_millis(250) }
                );
                assert_eq!(weights, ObjectiveWeights::BANDWIDTH_DOMINANT);
                assert_eq!(seed, 7);
                assert_eq!(score_threads, 3);
                assert_eq!(chunk_bytes, 65_536);
                assert!(session, "--session is a boolean switch");
                assert!(stats, "--stats is a boolean switch");
                assert_eq!(state.as_deref(), Some("s.json"));
                assert_eq!(commit.as_deref(), Some("out.json"));
            }
            other => panic!("wrong command {other:?}"),
        }
        // Without the switches both default off.
        match Command::parse(argv("place --infra i --template t")).unwrap() {
            Command::Place { session, stats, chunk_bytes, .. } => {
                assert!(!session);
                assert!(!stats);
                assert_eq!(chunk_bytes, 0);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn end_to_end_place_commit_inspect_validate() {
        let dir = tempdir("e2e");
        let (infra, template) = write_examples(&dir);
        let state_out = dir.join("state.json").to_str().unwrap().to_owned();
        let placement_out = dir.join("placement.json");

        // Place and commit.
        let output =
            run(argv(&format!("place --infra {infra} --template {template} --commit {state_out}")))
                .unwrap();
        std::fs::write(&placement_out, &output).unwrap();
        let doc: PlacementDocument = serde_json::from_str(&output).unwrap();
        assert_eq!(doc.assignments.len(), 4);
        assert_ne!(doc.assignments["web1"], doc.assignments["web2"]);

        // Inspect the committed state.
        let summary = run(argv(&format!("inspect --infra {infra} --state {state_out}"))).unwrap();
        assert!(summary.contains("hosts: 32"), "{summary}");
        assert!(!summary.contains("active hosts: 0 /"), "{summary}");

        // Validate against the pre-placement (fresh) state.
        let verdict = run(argv(&format!(
            "validate --infra {infra} --template {template} --placement {}",
            placement_out.to_str().unwrap()
        )))
        .unwrap();
        assert_eq!(verdict, "placement is valid\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn validate_reports_violations() {
        let dir = tempdir("bad");
        let (infra, template) = write_examples(&dir);
        let output = run(argv(&format!("place --infra {infra} --template {template}"))).unwrap();
        let mut doc: PlacementDocument = serde_json::from_str(&output).unwrap();
        // Break the anti-affinity by force.
        let w1 = doc.assignments["web1"].clone();
        doc.assignments.insert("web2".into(), w1);
        let bad = dir.join("bad.json");
        std::fs::write(&bad, serde_json::to_string(&doc).unwrap()).unwrap();
        let verdict = run(argv(&format!(
            "validate --infra {infra} --template {template} --placement {}",
            bad.to_str().unwrap()
        )))
        .unwrap();
        assert!(verdict.contains("violation"), "{verdict}");
        assert!(verdict.contains("insufficiently separated"), "{verdict}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sequential_placements_share_state() {
        let dir = tempdir("seq");
        let (infra, template) = write_examples(&dir);
        let state = dir.join("state.json").to_str().unwrap().to_owned();
        let first =
            run(argv(&format!("place --infra {infra} --template {template} --commit {state}")))
                .unwrap();
        let second = run(argv(&format!(
            "place --infra {infra} --template {template} --state {state} --commit {state}"
        )))
        .unwrap();
        let d1: PlacementDocument = serde_json::from_str(&first).unwrap();
        let d2: PlacementDocument = serde_json::from_str(&second).unwrap();
        // The second stack sees the first one's usage; with bandwidth-
        // friendly defaults it typically lands elsewhere, but at the
        // very least the committed state accumulated both.
        let summary = run(argv(&format!("inspect --infra {infra} --state {state}"))).unwrap();
        let reserved: u64 = d1.reserved_bandwidth_mbps + d2.reserved_bandwidth_mbps;
        let _ = reserved;
        assert!(summary.contains("reserved bandwidth"), "{summary}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn session_place_matches_cold_place_and_reports_stats() {
        let dir = tempdir("session");
        let (infra, template) = write_examples(&dir);
        let cold = run(argv(&format!("place --infra {infra} --template {template}"))).unwrap();
        let warm =
            run(argv(&format!("place --infra {infra} --template {template} --session --stats")))
                .unwrap();
        let cold: PlacementDocument = serde_json::from_str(&cold).unwrap();
        let warm: PlacementDocument = serde_json::from_str(&warm).unwrap();
        assert_eq!(cold.assignments, warm.assignments, "session must not change decisions");
        assert_eq!(cold.objective.to_bits(), warm.objective.to_bits());
        assert!(cold.stats.is_none(), "stats only appear with --stats");
        let stats = warm.stats.expect("--stats populates the counters");
        assert!(stats.heuristic_evals > 0);
        assert_eq!(stats.session_dirty_hosts, 0, "fresh session has nothing journaled");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn session_place_commit_round_trips_state() {
        let dir = tempdir("session-commit");
        let (infra, template) = write_examples(&dir);
        let cold_state = dir.join("cold.json").to_str().unwrap().to_owned();
        let warm_state = dir.join("warm.json").to_str().unwrap().to_owned();
        run(argv(&format!("place --infra {infra} --template {template} --commit {cold_state}")))
            .unwrap();
        run(argv(&format!(
            "place --infra {infra} --template {template} --session --commit {warm_state}"
        )))
        .unwrap();
        let cold: CapacityState =
            serde_json::from_str(&std::fs::read_to_string(&cold_state).unwrap()).unwrap();
        let warm: CapacityState =
            serde_json::from_str(&std::fs::read_to_string(&warm_state).unwrap()).unwrap();
        assert_eq!(cold, warm, "committed states must be identical");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_accepts_churn_invocation() {
        let cmd = Command::parse(argv(
            "churn --infra i.json --algorithm eg --arrivals 12 --lifetime 3 \
             --seed 9 --crashes 2 --launch-failure-prob 0.1 --stale-race-prob 0.25",
        ))
        .unwrap();
        match cmd {
            Command::Churn {
                arrivals,
                lifetime,
                seed,
                crashes,
                launch_failure_prob,
                stale_race_prob,
                ..
            } => {
                assert_eq!(arrivals, 12);
                assert_eq!(lifetime, 3);
                assert_eq!(seed, 9);
                assert_eq!(crashes, 2);
                assert!((launch_failure_prob - 0.1).abs() < 1e-12);
                assert!((stale_race_prob - 0.25).abs() < 1e-12);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(matches!(Command::parse(argv("churn --arrivals 5")), Err(CliError::Usage(_))));
    }

    #[test]
    fn churn_subcommand_reports_faults_deterministically() {
        let dir = tempdir("churn");
        let (infra, _) = write_examples(&dir);
        let cmdline = format!(
            "churn --infra {infra} --arrivals 8 --lifetime 4 --seed 5 \
             --crashes 2 --launch-failure-prob 0.05 --stale-race-prob 0.2"
        );
        let out = run(argv(&cmdline)).unwrap();
        let mut a: ostro_sim::ChurnReport = serde_json::from_str(&out).unwrap();
        assert_eq!(a.faults.crashes_injected, 2);
        assert_eq!(a.accepted + a.rejected + a.faults.deploy_failures, 8);
        let mut b: ostro_sim::ChurnReport =
            serde_json::from_str(&run(argv(&cmdline)).unwrap()).unwrap();
        a.mean_solver_secs = 0.0;
        b.mean_solver_secs = 0.0;
        assert_eq!(a, b, "same seed must yield an identical churn report");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_accepts_recovery_flags() {
        let cmd = Command::parse(argv(
            "churn --infra i.json --arrivals 10 --wal-dir /tmp/w \
             --crash-at 3,7 --reconcile-every 4 --race-leak-prob 0.5",
        ))
        .unwrap();
        match cmd {
            Command::Churn { wal_dir, crash_at, reconcile_every, race_leak_prob, .. } => {
                assert_eq!(wal_dir.as_deref(), Some("/tmp/w"));
                assert_eq!(crash_at, vec![3, 7]);
                assert_eq!(reconcile_every, 4);
                assert!((race_leak_prob - 0.5).abs() < 1e-12);
            }
            other => panic!("wrong command {other:?}"),
        }
        match Command::parse(argv("recover --infra i.json --wal-dir /tmp/w --state-out s.json"))
            .unwrap()
        {
            Command::Recover { infra, wal_dir, state_out } => {
                assert_eq!(infra, "i.json");
                assert_eq!(wal_dir, "/tmp/w");
                assert_eq!(state_out.as_deref(), Some("s.json"));
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(matches!(
            Command::parse(argv("churn --infra i --crash-at 3,x")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(Command::parse(argv("recover --infra i")), Err(CliError::Usage(_))));
    }

    #[test]
    fn mismatched_state_file_is_a_typed_error() {
        let dir = tempdir("mismatch");
        let (infra, template) = write_examples(&dir);
        // A state for a 4-host fleet against the 32-host example infra.
        let tiny = ostro_datacenter::InfrastructureBuilder::flat(
            "dc",
            1,
            4,
            ostro_model::Resources::new(8, 16_384, 500),
            ostro_model::Bandwidth::from_gbps(10),
            ostro_model::Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap();
        let state_path = dir.join("tiny.json").to_str().unwrap().to_owned();
        std::fs::write(&state_path, serde_json::to_string(&CapacityState::new(&tiny)).unwrap())
            .unwrap();
        let err =
            run(argv(&format!("place --infra {infra} --template {template} --state {state_path}")))
                .unwrap_err();
        match err {
            CliError::StateMismatch { path, expected, found } => {
                assert_eq!(path, state_path);
                assert_eq!(expected, 32);
                assert_eq!(found, 4);
            }
            other => panic!("wrong error {other:?}"),
        }
        // A partial (truncated) state file surfaces as a parse error,
        // not a panic.
        let torn = dir.join("torn.json").to_str().unwrap().to_owned();
        let full = serde_json::to_string(&CapacityState::new(&tiny)).unwrap();
        std::fs::write(&torn, &full[..full.len() / 2]).unwrap();
        let err = run(argv(&format!("place --infra {infra} --template {template} --state {torn}")))
            .unwrap_err();
        assert!(matches!(err, CliError::Parse { .. }), "{err:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_place_journal_survives_and_recovers() {
        let dir = tempdir("wal-place");
        let (infra, template) = write_examples(&dir);
        let wal = dir.join("wal");
        let wal_str = wal.to_str().unwrap().to_owned();
        let commit1 = dir.join("s1.json").to_str().unwrap().to_owned();
        let commit2 = dir.join("s2.json").to_str().unwrap().to_owned();

        // Two journaled commits; the second resumes from the journal.
        run(argv(&format!(
            "place --infra {infra} --template {template} --wal-dir {wal_str} --commit {commit1}"
        )))
        .unwrap();
        run(argv(&format!(
            "place --infra {infra} --template {template} --wal-dir {wal_str} --commit {commit2}"
        )))
        .unwrap();

        // The recovered books equal the second committed state.
        let out_path = dir.join("recovered.json").to_str().unwrap().to_owned();
        let doc = run(argv(&format!(
            "recover --infra {infra} --wal-dir {wal_str} --state-out {out_path}"
        )))
        .unwrap();
        let doc: RecoveryDocument = serde_json::from_str(&doc).unwrap();
        assert_eq!(doc.records_replayed, 2, "two commit records");
        assert!(!doc.truncated_tail);
        assert!(doc.active_hosts > 0);
        let committed: CapacityState =
            serde_json::from_str(&std::fs::read_to_string(&commit2).unwrap()).unwrap();
        let recovered: CapacityState =
            serde_json::from_str(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
        assert_eq!(recovered, committed, "journal replay must equal the committed state");

        // Corrupt-tail regression: chop bytes off the journal's last
        // record; recovery reports the truncation and still lands on
        // the first commit's books instead of failing.
        let log = wal.join("wal.log");
        let bytes = std::fs::read(&log).unwrap();
        std::fs::write(&log, &bytes[..bytes.len() - 3]).unwrap();
        let doc = run(argv(&format!("recover --infra {infra} --wal-dir {wal_str}"))).unwrap();
        let doc: RecoveryDocument = serde_json::from_str(&doc).unwrap();
        assert!(doc.truncated_tail, "torn tail must be reported");
        assert_eq!(doc.records_replayed, 1, "only the intact record survives");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn churn_crash_drills_match_the_uncrashed_run() {
        let dir = tempdir("churn-wal");
        let (infra, _) = write_examples(&dir);
        let wal = dir.join("wal").to_str().unwrap().to_owned();
        let base = format!(
            "churn --infra {infra} --arrivals 8 --lifetime 4 --seed 5 \
             --crashes 1 --launch-failure-prob 0.05 --stale-race-prob 0.3 \
             --race-leak-prob 0.5 --reconcile-every 2"
        );
        let crashed = run(argv(&format!("{base} --wal-dir {wal} --crash-at 3,6"))).unwrap();
        let clean = run(argv(&base)).unwrap();
        let mut a: ostro_sim::ChurnReport = serde_json::from_str(&crashed).unwrap();
        let mut b: ostro_sim::ChurnReport = serde_json::from_str(&clean).unwrap();
        assert_eq!(a.faults.scheduler_restarts, 2);
        a.mean_solver_secs = 0.0;
        a.faults.scheduler_restarts = 0;
        a.faults.wal_records_replayed = 0;
        b.mean_solver_secs = 0.0;
        assert_eq!(a, b, "crash drills must not change any decision");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_files_surface_clean_errors() {
        let err = run(argv("inspect --infra /nonexistent/infra.json")).unwrap_err();
        assert!(matches!(err, CliError::Io { .. }));
        let dir = tempdir("badjson");
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{not json").unwrap();
        let err = run(argv(&format!("inspect --infra {}", bad.to_str().unwrap()))).unwrap_err();
        assert!(matches!(err, CliError::Parse { .. }));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn examples_are_valid_inputs() {
        let infra: InfraSpec = serde_json::from_str(&example("infra").unwrap()).unwrap();
        assert_eq!(infra.build().unwrap().host_count(), 32);
        let template: HeatTemplate = serde_json::from_str(&example("template").unwrap()).unwrap();
        assert_eq!(template.server_count(), 3);
        assert!(example("bogus").is_err());
    }
}
