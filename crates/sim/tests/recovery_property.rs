//! Property test for the crash → quarantine → evacuate → re-deploy
//! cycle: across many randomized rounds, capacity accounting never
//! leaks or double-releases, and a quarantined host never appears in
//! any placement produced after its crash.

use ostro_core::{
    Algorithm, DeployPolicy, NoFaults, ObjectiveWeights, PlacementRequest, Scheduler,
};
use ostro_datacenter::{CapacityState, HostId, Infrastructure};
use ostro_model::ApplicationTopology;
use ostro_sim::requirements::RequirementMix;
use ostro_sim::scenarios::sized_datacenter;
use ostro_sim::workloads::{mesh, multi_tier};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

struct Tenant {
    topology: ApplicationTopology,
    assignment: Vec<Option<HostId>>,
}

fn request(seed: u64) -> PlacementRequest {
    PlacementRequest {
        algorithm: Algorithm::Greedy,
        weights: ObjectiveWeights::SIMULATION,
        seed,
        ..PlacementRequest::default()
    }
}

/// Releasing every tenant from a scratch copy must restore exactly
/// `baseline` (fresh + the quarantines applied so far): any surplus is
/// a leak, any deficit a double-release — and either fails loudly here.
fn assert_books_balance(
    scheduler: &Scheduler<'_>,
    state: &CapacityState,
    tenants: &[Tenant],
    baseline: &CapacityState,
    round: usize,
) {
    let mut scratch = state.clone();
    for tenant in tenants {
        scheduler
            .release_partial(&tenant.topology, &tenant.assignment, &mut scratch)
            .unwrap_or_else(|e| panic!("round {round}: release failed (double-release?): {e}"));
    }
    assert_eq!(&scratch, baseline, "round {round}: leaked reservations");
}

#[test]
fn random_crash_evacuate_replace_cycles_never_leak() {
    let mut rng = SmallRng::seed_from_u64(0xDEAD_4057);
    let (infra, _): (Infrastructure, _) = sized_datacenter(8, 6, false, &mut rng).unwrap();
    let scheduler = Scheduler::new(&infra);
    let mut state = CapacityState::new(&infra);
    // `baseline` tracks fresh + quarantines; equality against it after
    // releasing everything is the no-leak/no-double-release invariant.
    let mut baseline = CapacityState::new(&infra);
    let mix = RequirementMix::homogeneous();
    let mut tenants: Vec<Tenant> = Vec::new();
    let mut crashed: Vec<HostId> = Vec::new();
    let policy = DeployPolicy::default();

    for round in 0..12 {
        // Admit a couple of tenants (while hosts remain).
        for arrival in 0..2 {
            let seed = round as u64 * 97 + arrival;
            let topology = if rng.gen_bool(0.5) {
                multi_tier(25, &mix, &mut rng).unwrap()
            } else {
                mesh(rng.gen_range(3..7), &mix, &mut rng).unwrap()
            };
            let req = request(seed);
            if let Ok(outcome) = scheduler.place(&topology, &state, &req) {
                let report = scheduler
                    .deploy(
                        &topology,
                        &outcome.placement,
                        &mut state,
                        &req,
                        &policy,
                        &[],
                        &mut NoFaults,
                    )
                    .unwrap();
                tenants.push(Tenant { topology, assignment: report.assignment });
            }
        }

        // Crash one host that is still alive.
        let alive: Vec<HostId> =
            infra.hosts().iter().map(|h| h.id()).filter(|h| !crashed.contains(h)).collect();
        if alive.len() <= 1 {
            break;
        }
        let victim = alive[rng.gen_range(0..alive.len())];
        crashed.push(victim);
        state.quarantine_host(victim);
        baseline.quarantine_host(victim);

        // Evacuate + re-deploy every affected tenant.
        let mut kept = Vec::with_capacity(tenants.len());
        for mut tenant in tenants {
            if !tenant.assignment.contains(&Some(victim)) {
                kept.push(tenant);
                continue;
            }
            let req = request(round as u64);
            // An Err means the tenant is abandoned: evacuate released it
            // fully, so it simply drops out of `kept`.
            if let Ok(evac) = scheduler.evacuate(
                &tenant.topology,
                &tenant.assignment,
                &mut state,
                &req,
                victim,
                4,
            ) {
                let report = scheduler
                    .deploy(
                        &tenant.topology,
                        &evac.online.outcome.placement,
                        &mut state,
                        &req,
                        &policy,
                        &[],
                        &mut NoFaults,
                    )
                    .unwrap_or_else(|e| panic!("round {round}: re-deploy failed: {e}"));
                tenant.assignment = report.assignment;
                kept.push(tenant);
            }
        }
        tenants = kept;

        // Invariant 1: no placement ever touches a crashed host.
        for tenant in &tenants {
            for host in tenant.assignment.iter().flatten() {
                assert!(
                    !crashed.contains(host),
                    "round {round}: node still assigned to crashed host {host}"
                );
            }
        }
        // Invariant 2: quarantined hosts expose zero capacity to any
        // future candidate generation.
        for &host in &crashed {
            assert_eq!(state.available(host), ostro_model::Resources::ZERO);
            assert_eq!(state.nic_available(host), ostro_model::Bandwidth::ZERO);
        }
        // Invariant 3: the books balance exactly.
        assert_books_balance(&scheduler, &state, &tenants, &baseline, round);
    }

    assert!(!crashed.is_empty(), "the property run must exercise at least one crash");
}

/// A fresh placement computed *after* a quarantine never selects the
/// quarantined host, even when that host was the emptiest candidate.
#[test]
fn quarantined_host_is_excluded_from_candidate_generation() {
    let mut rng = SmallRng::seed_from_u64(3);
    let (infra, _) = sized_datacenter(2, 4, false, &mut rng).unwrap();
    let scheduler = Scheduler::new(&infra);
    let mut state = CapacityState::new(&infra);
    let mix = RequirementMix::homogeneous();

    for round in 0..infra.host_count() - 1 {
        let victim = infra
            .hosts()
            .iter()
            .map(|h| h.id())
            .find(|&h| state.available(h) != ostro_model::Resources::ZERO)
            .expect("a live host remains");
        state.quarantine_host(victim);
        let topology = mesh(3, &mix, &mut rng).unwrap();
        let req = request(round as u64);
        match scheduler.place(&topology, &state, &req) {
            Ok(outcome) => {
                assert!(
                    outcome.placement.assignments().iter().all(|&h| h != victim),
                    "round {round}: placement used quarantined host {victim}"
                );
            }
            Err(_) => break, // fleet too depleted — acceptable endgame
        }
    }
}
