//! The QFS (Quantcast File System) cloud-storage application of §IV-A,
//! Fig. 5: one benchmarking client, one meta server, twelve chunk
//! servers, and fifteen disk volumes.
//!
//! Sizing and bandwidth follow the figure's legend: large VMs are
//! 4 vCPU / 8 GB, small VMs 2 vCPU / 2 GB; large volumes are 120 GB,
//! small volumes 10 GB; high-bandwidth links carry 100 Mbps and
//! low-bandwidth links 10 Mbps. The twelve chunk servers form a
//! host-level diversity zone (the figure's dashed boundary).

use ostro_model::{ApplicationTopology, Bandwidth, DiversityLevel, ModelError, TopologyBuilder};

/// Number of chunk-server VMs in the QFS application.
pub const QFS_CHUNK_SERVERS: usize = 12;

/// Number of disk volumes in the QFS application.
pub const QFS_VOLUMES: usize = 15;

const HIGH_BW: Bandwidth = Bandwidth::from_mbps(100);
const LOW_BW: Bandwidth = Bandwidth::from_mbps(10);

/// Builds the QFS application topology of Fig. 5.
///
/// Layout: the client talks to every chunk server at high bandwidth and
/// to the meta server at low bandwidth; chunk servers heartbeat the
/// meta server at low bandwidth; each chunk server writes its own large
/// volume at high bandwidth; the client, the meta server, and the meta
/// server's log each use a small volume at low bandwidth
/// (12 + 3 = 15 volumes in total).
///
/// # Errors
///
/// Never fails in practice; the signature propagates [`ModelError`]
/// for uniformity with the generated workloads.
pub fn qfs_topology() -> Result<ApplicationTopology, ModelError> {
    let mut b = TopologyBuilder::new("qfs");

    // Large VM: the benchmarking client.
    let client = b.vm("client", 4, 8_192)?;
    // Small VM: the meta server.
    let meta = b.vm("meta", 2, 2_048)?;
    // Small VMs: the chunk servers.
    let mut chunks = Vec::with_capacity(QFS_CHUNK_SERVERS);
    for i in 0..QFS_CHUNK_SERVERS {
        chunks.push(b.vm(format!("chunk{i}"), 2, 2_048)?);
    }

    b.link(client, meta, LOW_BW)?;
    for &chunk in &chunks {
        b.link(client, chunk, HIGH_BW)?;
        b.link(meta, chunk, LOW_BW)?;
    }

    // Large volumes: one per chunk server.
    for (i, &chunk) in chunks.iter().enumerate() {
        let vol = b.volume(format!("chunk{i}-vol"), 120)?;
        b.link(chunk, vol, HIGH_BW)?;
    }
    // Small volumes: client scratch, meta state, meta log.
    let client_vol = b.volume("client-vol", 10)?;
    b.link(client, client_vol, LOW_BW)?;
    let meta_vol = b.volume("meta-vol", 10)?;
    b.link(meta, meta_vol, LOW_BW)?;
    let meta_log = b.volume("meta-log", 10)?;
    b.link(meta, meta_log, LOW_BW)?;

    // The chunk servers must sit on twelve distinct hosts.
    b.diversity_zone("chunk-servers", DiversityLevel::Host, &chunks)?;

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_figure_5() {
        let t = qfs_topology().unwrap();
        assert_eq!(t.vm_count(), 1 + 1 + QFS_CHUNK_SERVERS); // client + meta + chunks
        assert_eq!(t.volume_count(), QFS_VOLUMES);
        assert_eq!(t.zones().len(), 1);
        assert_eq!(t.zones()[0].members().len(), QFS_CHUNK_SERVERS);
        assert_eq!(t.zones()[0].level(), DiversityLevel::Host);
    }

    #[test]
    fn link_structure_matches_figure_5() {
        let t = qfs_topology().unwrap();
        let client = t.node_by_name("client").unwrap().id();
        let meta = t.node_by_name("meta").unwrap().id();
        // Client: 12 chunks + meta + its volume.
        assert_eq!(t.neighbors(client).len(), QFS_CHUNK_SERVERS + 2);
        // Meta: client + 12 chunks + 2 volumes.
        assert_eq!(t.neighbors(meta).len(), QFS_CHUNK_SERVERS + 3);
        // Each chunk server: client + meta + its volume.
        let chunk = t.node_by_name("chunk0").unwrap().id();
        assert_eq!(t.neighbors(chunk).len(), 3);
        // Total links: 1 + 12 + 12 + 12 + 3.
        assert_eq!(t.links().len(), 40);
    }

    #[test]
    fn requirements_are_heterogeneous() {
        let t = qfs_topology().unwrap();
        let client = t.node_by_name("client").unwrap();
        assert_eq!(client.requirements().vcpus, 4);
        let chunk = t.node_by_name("chunk3").unwrap();
        assert_eq!(chunk.requirements().vcpus, 2);
        let big_vol = t.node_by_name("chunk0-vol").unwrap();
        assert_eq!(big_vol.requirements().disk_gb, 120);
        let small_vol = t.node_by_name("meta-log").unwrap();
        assert_eq!(small_vol.requirements().disk_gb, 10);
    }

    #[test]
    fn total_demand_is_fixed() {
        let t = qfs_topology().unwrap();
        // 1*10 + 12*100 + 12*10 + 12*100 + 3*10 = 2560 Mbps.
        assert_eq!(t.total_link_bandwidth(), Bandwidth::from_mbps(2_560));
    }
}
