//! The paper's three evaluation applications.
//!
//! * [`qfs_topology`] — the QFS cloud-storage application of Fig. 5.
//! * [`multi_tier`] — the 5-tier enterprise topology of Fig. 2 (left).
//! * [`mesh`] — the mesh-communication topology of Fig. 2 (right).
//!
//! The paper specifies per-VM *total* bandwidth demands (Table III);
//! the generators spread each VM's demand across its links so that a
//! VM's incident bandwidth approximates its class demand: a link
//! between `a` and `b` carries `(bw_a/deg_a + bw_b/deg_b) / 2`.

mod mesh;
mod multi_tier;
mod qfs;

pub use mesh::{mesh, MESH_GROUP_SIZE};
pub use multi_tier::{multi_tier, FAN_IN, MULTI_TIER_TIERS};
pub use qfs::{qfs_topology, QFS_CHUNK_SERVERS, QFS_VOLUMES};

use ostro_model::{Bandwidth, ModelError, NodeId, TopologyBuilder};

use crate::requirements::RequirementClass;

/// Adds `edges` to `builder`, splitting each endpoint's class bandwidth
/// across its degree (minimum 1 Mbps per link).
pub(crate) fn add_links_with_split_bandwidth(
    builder: &mut TopologyBuilder,
    nodes: &[NodeId],
    classes: &[RequirementClass],
    edges: &[(usize, usize)],
) -> Result<(), ModelError> {
    let mut degree = vec![0u64; nodes.len()];
    for &(a, b) in edges {
        degree[a] += 1;
        degree[b] += 1;
    }
    for &(a, b) in edges {
        let share_a = classes[a].bandwidth_mbps as f64 / degree[a] as f64;
        let share_b = classes[b].bandwidth_mbps as f64 / degree[b] as f64;
        let mbps = (((share_a + share_b) / 2.0).round() as u64).max(1);
        builder.link(nodes[a], nodes[b], Bandwidth::from_mbps(mbps))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ostro_model::ApplicationTopology;

    fn build(edges: &[(usize, usize)], bw: &[u64]) -> ApplicationTopology {
        let mut b = TopologyBuilder::new("t");
        let nodes: Vec<NodeId> =
            (0..bw.len()).map(|i| b.vm(format!("v{i}"), 1, 1024).unwrap()).collect();
        let classes: Vec<RequirementClass> = bw
            .iter()
            .map(|&bandwidth_mbps| RequirementClass {
                fraction: 0.0,
                vcpus: 1,
                memory_mb: 1024,
                bandwidth_mbps,
            })
            .collect();
        add_links_with_split_bandwidth(&mut b, &nodes, &classes, edges).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn single_link_averages_both_demands() {
        let t = build(&[(0, 1)], &[100, 50]);
        assert_eq!(t.links()[0].bandwidth(), Bandwidth::from_mbps(75));
    }

    #[test]
    fn incident_bandwidth_approximates_class_demand() {
        // Star: v0 linked to v1..v4, all demanding 100.
        let t = build(&[(0, 1), (0, 2), (0, 3), (0, 4)], &[100, 100, 100, 100, 100]);
        let hub = t.node_by_name("v0").unwrap().id();
        let incident = t.incident_bandwidth(hub).as_mbps();
        // Each link: (100/4 + 100/1)/2 = 62.5 -> 63; hub sees 4*63.
        assert_eq!(incident, 252);
    }

    #[test]
    fn tiny_demands_floor_at_one() {
        let t = build(&[(0, 1), (0, 2)], &[1, 1, 1]);
        for l in t.links() {
            assert!(l.bandwidth() >= Bandwidth::from_mbps(1));
        }
    }
}
