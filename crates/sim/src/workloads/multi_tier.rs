//! The multi-tier application topology of §IV-C (Fig. 2, left): five
//! tiers, each split into two host-level diversity zones, with each VM
//! linked to a few VMs of the previous tier.

use ostro_model::{ApplicationTopology, DiversityLevel, ModelError, NodeId, TopologyBuilder};
use rand::Rng;

use crate::requirements::RequirementMix;
use crate::workloads::add_links_with_split_bandwidth;

/// The paper's multi-tier applications always have five tiers.
pub const MULTI_TIER_TIERS: usize = 5;

/// Links per VM toward the previous tier.
pub const FAN_IN: usize = 3;

/// Generates a multi-tier topology with `total_vms` VMs spread evenly
/// over [`MULTI_TIER_TIERS`] tiers (the paper scales 25–200 in steps of
/// 25, i.e. 5–40 VMs per tier).
///
/// Each tier is divided into two host-level diversity zones; each VM in
/// tier *t+1* links to [`FAN_IN`] VMs of tier *t* round-robin. Resource
/// requirements are drawn from `mix` in exact proportions.
///
/// # Errors
///
/// Propagates [`ModelError`] (cannot occur for valid sizes).
///
/// # Panics
///
/// Panics if `total_vms` is not a positive multiple of
/// [`MULTI_TIER_TIERS`].
pub fn multi_tier<R: Rng + ?Sized>(
    total_vms: usize,
    mix: &RequirementMix,
    rng: &mut R,
) -> Result<ApplicationTopology, ModelError> {
    assert!(
        total_vms > 0 && total_vms.is_multiple_of(MULTI_TIER_TIERS),
        "total_vms must be a positive multiple of {MULTI_TIER_TIERS}, got {total_vms}"
    );
    let per_tier = total_vms / MULTI_TIER_TIERS;
    let mut builder = TopologyBuilder::new(format!("multi-tier-{total_vms}"));
    let classes = mix.assign(total_vms, rng);

    let mut nodes: Vec<NodeId> = Vec::with_capacity(total_vms);
    for tier in 0..MULTI_TIER_TIERS {
        for i in 0..per_tier {
            let idx = tier * per_tier + i;
            let class = classes[idx];
            nodes.push(builder.vm(format!("tier{tier}-vm{i}"), class.vcpus, class.memory_mb)?);
        }
    }

    let mut edges: Vec<(usize, usize)> = Vec::new();
    for tier in 1..MULTI_TIER_TIERS {
        for i in 0..per_tier {
            let this = tier * per_tier + i;
            for j in 0..FAN_IN.min(per_tier) {
                let prev = (tier - 1) * per_tier + (i + j) % per_tier;
                edges.push((prev, this));
            }
        }
    }
    add_links_with_split_bandwidth(&mut builder, &nodes, &classes, &edges)?;

    for tier in 0..MULTI_TIER_TIERS {
        let start = tier * per_tier;
        let half = per_tier.div_ceil(2);
        let first: Vec<NodeId> = nodes[start..start + half].to_vec();
        let second: Vec<NodeId> = nodes[start + half..start + per_tier].to_vec();
        builder.diversity_zone(format!("tier{tier}-dz0"), DiversityLevel::Host, &first)?;
        if !second.is_empty() {
            builder.diversity_zone(format!("tier{tier}-dz1"), DiversityLevel::Host, &second)?;
        }
    }

    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn structure_matches_spec() {
        let mix = RequirementMix::heterogeneous();
        let mut rng = SmallRng::seed_from_u64(1);
        let t = multi_tier(50, &mix, &mut rng).unwrap();
        assert_eq!(t.vm_count(), 50);
        assert_eq!(t.volume_count(), 0);
        // 4 inter-tier layers x 10 VMs x 3 fan-in.
        assert_eq!(t.links().len(), 4 * 10 * 3);
        // 2 zones per tier.
        assert_eq!(t.zones().len(), 10);
        assert!(t.zones().iter().all(|z| z.level() == DiversityLevel::Host));
        assert!(t.zones().iter().all(|z| z.members().len() == 5));
    }

    #[test]
    fn tier0_has_no_upstream_links() {
        let mix = RequirementMix::homogeneous();
        let mut rng = SmallRng::seed_from_u64(2);
        let t = multi_tier(25, &mix, &mut rng).unwrap();
        let v = t.node_by_name("tier0-vm0").unwrap().id();
        // tier0 nodes only link downward to tier1.
        for &(n, _) in t.neighbors(v) {
            assert!(t.node(n).name().starts_with("tier1-"));
        }
        // Last tier links only upward.
        let last = t.node_by_name("tier4-vm0").unwrap().id();
        assert_eq!(t.neighbors(last).len(), 3);
    }

    #[test]
    fn heterogeneous_mix_is_exact() {
        let mix = RequirementMix::heterogeneous();
        let mut rng = SmallRng::seed_from_u64(3);
        let t = multi_tier(100, &mix, &mut rng).unwrap();
        let small = t.nodes().iter().filter(|n| n.requirements().vcpus == 1).count();
        assert_eq!(small, 40);
    }

    #[test]
    fn deterministic_per_seed() {
        let mix = RequirementMix::heterogeneous();
        let a = multi_tier(25, &mix, &mut SmallRng::seed_from_u64(5)).unwrap();
        let b = multi_tier(25, &mix, &mut SmallRng::seed_from_u64(5)).unwrap();
        assert_eq!(a, b);
        let c = multi_tier(25, &mix, &mut SmallRng::seed_from_u64(6)).unwrap();
        assert_ne!(a, c, "different seeds shuffle classes differently");
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn rejects_non_multiple_sizes() {
        let mix = RequirementMix::homogeneous();
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = multi_tier(23, &mix, &mut rng);
    }
}
