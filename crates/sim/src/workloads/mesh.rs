//! The mesh-communication topology of §IV-C (Fig. 2, right): disjoint
//! host-level diversity groups of five VMs, with links between VMs of
//! ~80% of all group pairs.

use ostro_model::{ApplicationTopology, DiversityLevel, ModelError, NodeId, TopologyBuilder};
use rand::Rng;

use crate::requirements::RequirementMix;
use crate::workloads::add_links_with_split_bandwidth;

/// Every mesh diversity group holds five VMs (the paper's `dhost` of 5).
pub const MESH_GROUP_SIZE: usize = 5;

/// Probability that any two groups communicate.
const GROUP_LINK_PROBABILITY: f64 = 0.8;

/// Generates a mesh topology of `groups` diversity groups (the paper
/// scales 5–40 groups, i.e. 25–200 VMs).
///
/// For each group pair selected with probability 0.8, the i-th VM of
/// one group links to the i-th VM of the other. Requirements are drawn
/// from `mix` in exact proportions.
///
/// # Errors
///
/// Propagates [`ModelError`] (cannot occur for valid sizes).
///
/// # Panics
///
/// Panics if `groups == 0`.
pub fn mesh<R: Rng + ?Sized>(
    groups: usize,
    mix: &RequirementMix,
    rng: &mut R,
) -> Result<ApplicationTopology, ModelError> {
    assert!(groups > 0, "need at least one group");
    let total = groups * MESH_GROUP_SIZE;
    let mut builder = TopologyBuilder::new(format!("mesh-{total}"));
    let classes = mix.assign(total, rng);

    let mut nodes: Vec<NodeId> = Vec::with_capacity(total);
    for g in 0..groups {
        for i in 0..MESH_GROUP_SIZE {
            let class = classes[g * MESH_GROUP_SIZE + i];
            nodes.push(builder.vm(format!("g{g}-vm{i}"), class.vcpus, class.memory_mb)?);
        }
    }

    let mut edges: Vec<(usize, usize)> = Vec::new();
    for g1 in 0..groups {
        for g2 in (g1 + 1)..groups {
            if rng.gen_range(0.0..1.0) < GROUP_LINK_PROBABILITY {
                for i in 0..MESH_GROUP_SIZE {
                    edges.push((g1 * MESH_GROUP_SIZE + i, g2 * MESH_GROUP_SIZE + i));
                }
            }
        }
    }
    add_links_with_split_bandwidth(&mut builder, &nodes, &classes, &edges)?;

    for g in 0..groups {
        let members: Vec<NodeId> = nodes[g * MESH_GROUP_SIZE..(g + 1) * MESH_GROUP_SIZE].to_vec();
        builder.diversity_zone(format!("g{g}-dz"), DiversityLevel::Host, &members)?;
    }

    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn structure_matches_spec() {
        let mix = RequirementMix::heterogeneous();
        let mut rng = SmallRng::seed_from_u64(1);
        let t = mesh(10, &mix, &mut rng).unwrap();
        assert_eq!(t.vm_count(), 50);
        assert_eq!(t.zones().len(), 10);
        assert!(t.zones().iter().all(|z| z.members().len() == MESH_GROUP_SIZE));
        assert!(t.zones().iter().all(|z| z.level() == DiversityLevel::Host));
        // Links come in bundles of MESH_GROUP_SIZE per selected pair.
        assert_eq!(t.links().len() % MESH_GROUP_SIZE, 0);
    }

    #[test]
    fn about_80_percent_of_group_pairs_communicate() {
        let mix = RequirementMix::homogeneous();
        let mut rng = SmallRng::seed_from_u64(99);
        let groups = 30;
        let t = mesh(groups, &mix, &mut rng).unwrap();
        let pairs = t.links().len() / MESH_GROUP_SIZE;
        let possible = groups * (groups - 1) / 2;
        let fraction = pairs as f64 / possible as f64;
        assert!((0.7..0.9).contains(&fraction), "got {fraction}");
    }

    #[test]
    fn no_links_within_a_group() {
        let mix = RequirementMix::homogeneous();
        let mut rng = SmallRng::seed_from_u64(7);
        let t = mesh(6, &mix, &mut rng).unwrap();
        for link in t.links() {
            let (a, b) = link.endpoints();
            let ga = t.node(a).name().split('-').next().unwrap().to_owned();
            let gb = t.node(b).name().split('-').next().unwrap().to_owned();
            assert_ne!(ga, gb, "{} <-> {}", t.node(a).name(), t.node(b).name());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mix = RequirementMix::heterogeneous();
        let a = mesh(8, &mix, &mut SmallRng::seed_from_u64(4)).unwrap();
        let b = mesh(8, &mix, &mut SmallRng::seed_from_u64(4)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn single_group_has_no_links() {
        let mix = RequirementMix::homogeneous();
        let mut rng = SmallRng::seed_from_u64(1);
        let t = mesh(1, &mix, &mut rng).unwrap();
        assert_eq!(t.links().len(), 0);
        assert_eq!(t.vm_count(), MESH_GROUP_SIZE);
    }
}
