//! Deterministic heartbeat and gray-failure streams for the
//! maintenance plane.
//!
//! A [`HeartbeatPlan`] is the liveness-signal counterpart of
//! [`FaultPlan`](crate::faults::FaultPlan): generated once per run from
//! a [`HeartbeatConfig`], it pre-computes which hosts misbehave and
//! how, and then answers `beats(host, tick)` as a pure function of the
//! plan — two runs with the same seed feed the
//! [`HealthMonitor`](ostro_core::HealthMonitor) bit-identical streams
//! regardless of how the surrounding simulation interleaves.
//!
//! Three failure shapes are scheduled, each exercising a different
//! edge of the phi-accrual detector:
//!
//! * **Fail-stop** hosts beat normally until a seeded death tick, then
//!   fall silent forever — φ climbs unbounded and the host escalates
//!   `Suspect → Draining → Dead`.
//! * **Gray** hosts degrade without dying: after a seeded onset their
//!   heartbeat interval stretches by an integer factor. Because the
//!   detector normalizes elapsed time by the host's *own* observed
//!   mean, a slow-but-steady host inflates its mean and stays
//!   unsuspected — the plan exists so tests can assert exactly that.
//! * **Flappy** hosts skip a seeded window of beats and then resume,
//!   exercising the hysteretic `Suspect → Healthy` recovery path
//!   without ever deserving a drain.

use ostro_core::HealthMonitor;
use ostro_datacenter::HostId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Knobs of a seeded heartbeat plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeartbeatConfig {
    /// Seed for every liveness stream (independent of workload and
    /// fault seeds).
    pub seed: u64,
    /// Base heartbeat period, in ticks. Each host gets a seeded phase
    /// so the fleet's beats spread across the period.
    pub interval: u64,
    /// Hosts that fail-stop: beat normally, then fall silent forever.
    pub fail_stop: usize,
    /// Hosts that go gray: their interval stretches by
    /// [`gray_stretch`](Self::gray_stretch) after a seeded onset.
    pub gray: usize,
    /// Hosts that flap: skip [`flap_beats`](Self::flap_beats) beats
    /// once, then resume on schedule.
    pub flappy: usize,
    /// Integer factor a gray host's interval stretches by.
    pub gray_stretch: u64,
    /// Consecutive beats a flappy host skips.
    pub flap_beats: u64,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            seed: 0xBEA7_5EED,
            interval: 5,
            fail_stop: 1,
            gray: 1,
            flappy: 1,
            gray_stretch: 3,
            flap_beats: 2,
        }
    }
}

/// The shape of one host's scheduled misbehavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Affliction {
    /// Silence begins at the tick and never ends.
    FailStop { death: u64 },
    /// The interval multiplies by `stretch` from `onset` on.
    Gray { onset: u64 },
    /// Beats whose on-schedule tick falls in `[from, to)` are skipped.
    Flap { from: u64, to: u64 },
}

/// A fully materialized liveness schedule for one run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeartbeatPlan {
    config: HeartbeatConfig,
    /// Afflicted hosts, ascending by host index; at most one
    /// affliction per host.
    afflicted: Vec<(HostId, Affliction)>,
    host_count: usize,
}

impl HeartbeatPlan {
    /// Generates the plan for a run of `horizon` ticks over
    /// `host_count` hosts. Victims are distinct; deaths, onsets, and
    /// flap windows land in the middle of the run so the detector sees
    /// both the healthy prefix and the misbehavior.
    #[must_use]
    pub fn generate(config: &HeartbeatConfig, host_count: usize, horizon: usize) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed ^ 0x4EA2_7BEA_75EE_D000);
        let horizon = horizon.max(4) as u64;
        let wanted =
            (config.fail_stop + config.gray + config.flappy).min(host_count.saturating_sub(1));
        let mut victims: Vec<HostId> = Vec::with_capacity(wanted);
        while victims.len() < wanted {
            let host = HostId::from_index(rng.gen_range(0..host_count as u32));
            if !victims.contains(&host) {
                victims.push(host);
            }
        }
        let mut afflicted: Vec<(HostId, Affliction)> = Vec::with_capacity(wanted);
        for (i, &host) in victims.iter().enumerate() {
            let mid = rng.gen_range(horizon / 4..horizon / 2).max(1);
            let affliction = if i < config.fail_stop.min(wanted) {
                Affliction::FailStop { death: mid }
            } else if i < (config.fail_stop + config.gray).min(wanted) {
                Affliction::Gray { onset: mid }
            } else {
                let gap = config.flap_beats.max(1) * config.interval.max(1);
                Affliction::Flap { from: mid, to: mid + gap }
            };
            afflicted.push((host, affliction));
        }
        afflicted.sort_unstable_by_key(|&(host, _)| host.index());
        HeartbeatPlan { config: config.clone(), afflicted, host_count }
    }

    /// The configuration this plan was generated from.
    #[must_use]
    pub fn config(&self) -> &HeartbeatConfig {
        &self.config
    }

    /// Hosts scheduled to fail-stop, ascending by index.
    #[must_use]
    pub fn fail_stop_hosts(&self) -> Vec<HostId> {
        self.hosts_where(|a| matches!(a, Affliction::FailStop { .. }))
    }

    /// Hosts scheduled to go gray, ascending by index.
    #[must_use]
    pub fn gray_hosts(&self) -> Vec<HostId> {
        self.hosts_where(|a| matches!(a, Affliction::Gray { .. }))
    }

    /// Hosts scheduled to flap, ascending by index.
    #[must_use]
    pub fn flappy_hosts(&self) -> Vec<HostId> {
        self.hosts_where(|a| matches!(a, Affliction::Flap { .. }))
    }

    fn hosts_where(&self, pred: impl Fn(Affliction) -> bool) -> Vec<HostId> {
        self.afflicted.iter().filter(|&&(_, a)| pred(a)).map(|&(h, _)| h).collect()
    }

    fn affliction(&self, host: HostId) -> Option<Affliction> {
        self.afflicted
            .binary_search_by_key(&host.index(), |&(h, _)| h.index())
            .ok()
            .map(|i| self.afflicted[i].1)
    }

    /// A host's seeded phase: beats land on ticks where
    /// `(tick + phase) % interval == 0`, spreading the fleet's beats
    /// across the period.
    fn phase(&self, host: HostId) -> u64 {
        let interval = self.config.interval.max(1);
        hash(&[self.config.seed, 0xBEA7, host.index() as u64]) % interval
    }

    /// Whether `host` emits a heartbeat at `tick`. Pure function of
    /// the plan — no draw order, no hidden state.
    #[must_use]
    pub fn beats(&self, host: HostId, tick: u64) -> bool {
        let interval = self.config.interval.max(1);
        let phase = self.phase(host);
        let on_schedule = (tick + phase).is_multiple_of(interval);
        match self.affliction(host) {
            None => on_schedule,
            Some(Affliction::FailStop { death }) => on_schedule && tick < death,
            Some(Affliction::Gray { onset }) => {
                if tick < onset {
                    on_schedule
                } else {
                    // Same phase, stretched period: still perfectly
                    // regular, just slower.
                    let stretched = interval * self.config.gray_stretch.max(2);
                    (tick + phase).is_multiple_of(stretched)
                }
            }
            Some(Affliction::Flap { from, to }) => on_schedule && !(from..to).contains(&tick),
        }
    }

    /// All hosts beating at `tick`, ascending by index.
    #[must_use]
    pub fn beats_at(&self, tick: u64) -> Vec<HostId> {
        (0..self.host_count)
            .map(|i| HostId::from_index(i as u32))
            .filter(|&h| self.beats(h, tick))
            .collect()
    }

    /// Feeds one tick's beats into a [`HealthMonitor`], ascending by
    /// host index.
    pub fn drive(&self, monitor: &mut HealthMonitor, tick: u64) {
        for host in self.beats_at(tick) {
            monitor.heartbeat(host, tick);
        }
    }
}

/// Order-sensitive splitmix64 hash of a word sequence (the same
/// stateless idiom [`crate::faults`] uses).
fn hash(parts: &[u64]) -> u64 {
    let mut h = 0xBEA7_5EED_0DD0_F417u64;
    for &p in parts {
        h = h.wrapping_add(p).wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use ostro_core::{HealthConfig, HealthState};

    fn plan() -> HeartbeatPlan {
        HeartbeatPlan::generate(&HeartbeatConfig::default(), 24, 120)
    }

    #[test]
    fn same_seed_same_plan_and_stream() {
        let a = plan();
        let b = plan();
        assert_eq!(a, b);
        for tick in 0..120 {
            assert_eq!(a.beats_at(tick), b.beats_at(tick));
        }
    }

    #[test]
    fn victims_are_distinct_and_typed() {
        let p = plan();
        assert_eq!(p.fail_stop_hosts().len(), 1);
        assert_eq!(p.gray_hosts().len(), 1);
        assert_eq!(p.flappy_hosts().len(), 1);
        let mut all: Vec<_> =
            p.fail_stop_hosts().into_iter().chain(p.gray_hosts()).chain(p.flappy_hosts()).collect();
        all.sort_unstable_by_key(|h| h.index());
        all.dedup();
        assert_eq!(all.len(), 3, "one affliction per host");
    }

    #[test]
    fn fail_stop_host_goes_silent_and_only_it_dies() {
        let p = plan();
        let dead = p.fail_stop_hosts()[0];
        let last_beat = (0..120).filter(|&t| p.beats(dead, t)).max().expect("beats before death");
        assert!((last_beat + 1..120).all(|t| !p.beats(dead, t)), "silence is forever");

        let mut monitor = HealthMonitor::new(HealthConfig::default(), 24);
        // Past the plan horizon every stream is pure silence-or-schedule,
        // so keep driving until the silent host's phi crosses dead_phi.
        for tick in 0..360u64 {
            p.drive(&mut monitor, tick);
            monitor.evaluate(tick);
        }
        assert_eq!(monitor.state(dead), HealthState::Dead);
        // Gray and flappy hosts never deserve a drain.
        assert_eq!(monitor.state(p.gray_hosts()[0]), HealthState::Healthy);
        assert_eq!(monitor.state(p.flappy_hosts()[0]), HealthState::Healthy);
    }

    #[test]
    fn gray_host_slows_but_stays_regular() {
        let p = plan();
        let gray = p.gray_hosts()[0];
        let beats: Vec<u64> = (0..120).filter(|&t| p.beats(gray, t)).collect();
        assert!(beats.len() >= 4, "a gray host keeps beating");
        let gaps: Vec<u64> = beats.windows(2).map(|w| w[1] - w[0]).collect();
        let max_gap = *gaps.iter().max().expect("gaps");
        let min_gap = *gaps.iter().min().expect("gaps");
        assert!(max_gap > min_gap, "the interval must stretch after onset");
        let stretched = p.config().interval * p.config().gray_stretch;
        assert!(gaps.iter().all(|&g| g == min_gap || g % stretched == 0 || g <= stretched));
    }

    #[test]
    fn flappy_host_recovers_through_hysteresis() {
        let p = plan();
        let flappy = p.flappy_hosts()[0];
        let mut monitor = HealthMonitor::new(HealthConfig::default(), 24);
        let mut suspected = false;
        for tick in 0..240u64 {
            p.drive(&mut monitor, tick);
            monitor.evaluate(tick);
            if monitor.state(flappy) == HealthState::Suspect {
                suspected = true;
            }
        }
        assert!(suspected, "the skipped beats must raise suspicion");
        assert_eq!(
            monitor.state(flappy),
            HealthState::Healthy,
            "resumed beats must clear the suspicion hysteretically"
        );
    }
}
