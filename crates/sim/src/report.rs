//! Fixed-width text rendering for experiment results, matching the
//! layout of the paper's tables.

use std::fmt::Write as _;
use std::time::Duration;

use crate::runner::ComparisonRow;

/// A simple right-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        TextTable { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (missing cells render empty; extras are kept).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let columns = self.rows.iter().map(Vec::len).chain([self.headers.len()]).max().unwrap_or(0);
        let mut widths = vec![0usize; columns];
        let all = std::iter::once(&self.headers).chain(self.rows.iter());
        for row in all {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, row: &[String]| {
            for i in 0..columns {
                let cell = row.get(i).map_or("", String::as_str);
                if i == 0 {
                    let _ = write!(out, "{cell:<width$}", width = widths[0]);
                } else {
                    let _ = write!(out, "  {cell:>width$}", width = widths[i]);
                }
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

/// Formats Mbps with the unit the paper's tables use.
#[must_use]
pub fn fmt_mbps(mbps: f64) -> String {
    if mbps >= 10_000.0 {
        format!("{:.1} Gbps", mbps / 1_000.0)
    } else {
        format!("{mbps:.0} Mbps")
    }
}

/// Formats a duration as seconds with millisecond precision.
#[must_use]
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Renders comparison rows in the layout of Tables I/II (one column
/// per algorithm).
#[must_use]
pub fn render_table_one_style(title: &str, rows: &[ComparisonRow]) -> String {
    let mut table =
        TextTable::new(std::iter::once(String::new()).chain(rows.iter().map(|r| r.label.clone())));
    table.row(
        std::iter::once("Bandwidth (Mbps)".to_owned())
            .chain(rows.iter().map(|r| format!("{:.0}", r.bandwidth_mbps))),
    );
    table.row(
        std::iter::once("New active hosts".to_owned())
            .chain(rows.iter().map(|r| format!("{:.1}", r.new_hosts))),
    );
    table.row(
        std::iter::once("Run-time (sec)".to_owned())
            .chain(rows.iter().map(|r| fmt_secs(r.runtime))),
    );
    format!("{title}\n{}", table.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["algo", "bw", "hosts"]);
        t.row(["EGC", "4480", "0"]);
        t.row(["DBA*", "1980", "1"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("algo"));
        assert!(lines[2].starts_with("EGC"));
        // All data lines are equally wide.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = TextTable::new(["a"]);
        t.row(["x", "y"]);
        t.row::<&str>([]);
        let s = t.render();
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(fmt_mbps(4480.0), "4480 Mbps");
        assert_eq!(fmt_mbps(1_523_000.0), "1523.0 Gbps");
        assert_eq!(fmt_secs(Duration::from_millis(82)), "0.082");
    }

    #[test]
    fn table_one_style_has_paper_rows() {
        let rows = vec![ComparisonRow {
            label: "EG".into(),
            bandwidth_mbps: 2000.0,
            new_hosts: 0.0,
            total_hosts: 12.0,
            runtime: Duration::from_millis(84),
            objective: 0.2,
            runs: 1,
        }];
        let s = render_table_one_style("Table I", &rows);
        assert!(s.contains("Table I"));
        assert!(s.contains("Bandwidth (Mbps)"));
        assert!(s.contains("New active hosts"));
        assert!(s.contains("Run-time (sec)"));
        assert!(s.contains("2000"));
    }
}
