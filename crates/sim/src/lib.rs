#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! Evaluation substrate for the Ostro reproduction: the workload
//! generators, availability scenarios, and experiment runners behind
//! every table and figure of the paper's §IV.
//!
//! * [`requirements`] — Table III's heterogeneous VM mix and the
//!   homogeneous control.
//! * [`availability`] — Table IV's non-uniform per-rack availability
//!   profile and the uniform (all idle) control.
//! * [`workloads`] — the three applications the paper evaluates: the
//!   QFS storage application (Fig. 5), the 5-tier multi-tier topology,
//!   and the mesh-communication topology (Fig. 2).
//! * [`scenarios`] — the testbed (16 hosts, one ToR) and the simulated
//!   data center (2400 hosts, 150 racks).
//! * [`faults`] — seeded fault-injection plans (host crashes, transient
//!   launch failures, stale-capacity races) for the churn simulator's
//!   failure-aware deployment pipeline.
//! * [`heartbeats`] — seeded liveness streams (fail-stop silence, gray
//!   slowdowns, flapping) feeding the maintenance plane's phi-accrual
//!   failure detector.
//! * [`stream`] — deterministic concurrent arrival/departure schedules
//!   for the placement service benchmark and `ostro serve`.
//! * [`runner`] — algorithm comparison harness with seeded averaging.
//! * [`report`] — fixed-width text tables matching the paper's layout.
//!
//! # Example
//!
//! Reproduce one cell of Table I: EG on the QFS application under
//! non-uniform availability.
//!
//! ```
//! use ostro_core::{Algorithm, PlacementRequest, Scheduler};
//! use ostro_sim::scenarios::qfs_testbed;
//! use ostro_sim::workloads::qfs_topology;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (infra, state) = qfs_testbed(true)?; // non-uniform availability
//! let topology = qfs_topology()?;
//! let scheduler = Scheduler::new(&infra);
//! let request = PlacementRequest::with_algorithm(Algorithm::Greedy)
//!     .weights(ostro_core::ObjectiveWeights::BANDWIDTH_DOMINANT);
//! let outcome = scheduler.place(&topology, &state, &request)?;
//! assert_eq!(outcome.placement.assignments().len(), topology.node_count());
//! # Ok(())
//! # }
//! ```

pub mod availability;
pub mod churn;
pub mod faults;
pub mod heartbeats;
pub mod report;
pub mod requirements;
pub mod runner;
pub mod scenarios;
pub mod stream;
pub mod workloads;

pub use availability::AvailabilityProfile;
pub use churn::{run_churn, ChurnConfig, ChurnReport, FaultStats, RecoveryConfig};
pub use faults::{ChaosConfig, ChaosPlan, FaultConfig, FaultPlan, PlanProbe};
pub use heartbeats::{HeartbeatConfig, HeartbeatPlan};
pub use requirements::{RequirementClass, RequirementMix};
pub use runner::{run_comparison, ComparisonRow, SimError};
pub use stream::{arrival_stream, StreamConfig, StreamEvent, StreamPlan};
