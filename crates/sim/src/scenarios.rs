//! The two physical environments of the paper's evaluation: the
//! 16-host QFS testbed (§IV-A) and the 2400-host simulated data center
//! (§IV-C), each in uniform (all idle) and non-uniform variants.

use ostro_datacenter::{BuildError, CapacityState, Infrastructure, InfrastructureBuilder, LinkRef};
use ostro_model::{Bandwidth, Resources};
use rand::Rng;

use crate::availability::AvailabilityProfile;

/// Hosts in the QFS testbed.
pub const TESTBED_HOSTS: usize = 16;

/// Racks in the simulated data center.
pub const SIM_RACKS: usize = 150;

/// Hosts per rack in the simulated data center.
pub const SIM_HOSTS_PER_RACK: usize = 16;

/// Builds the §IV-A testbed: 16 hosts (16 cores / 32 GB / 1 TB) behind
/// one ToR switch with 3.2 Gbps host links.
///
/// With `non_uniform`, the first twelve hosts carry pre-existing load
/// in three utilization tiers (light / medium / constrained, four hosts
/// each) and the last four are idle, exactly as §IV-A describes; the
/// uniform variant leaves all sixteen idle.
///
/// # Errors
///
/// Propagates [`BuildError`] (cannot occur for these fixed parameters).
pub fn qfs_testbed(non_uniform: bool) -> Result<(Infrastructure, CapacityState), BuildError> {
    let infra = InfrastructureBuilder::flat(
        "testbed",
        1,
        TESTBED_HOSTS,
        Resources::new(16, 32 * 1024, 1_000),
        Bandwidth::from_mbps(3_200),
        Bandwidth::from_gbps(40),
    )
    .build()?;
    let mut state = CapacityState::new(&infra);
    if non_uniform {
        // (available cores, available memory GB, NIC Mbps in use) per host.
        #[rustfmt::skip]
        let plan: [(u32, u64, u64); 12] = [
            // Lightly utilized: 8 or 10 cores and > 20 GB free.
            (8, 22, 400), (10, 24, 400), (8, 26, 400), (10, 21, 400),
            // Medium: 5-6 cores, 15-19 GB free.
            (6, 15, 800), (6, 17, 800), (6, 19, 800), (6, 16, 800),
            // Constrained: < 5 cores, < 15 GB free.
            (4, 4, 1_200), (4, 5, 1_200), (4, 6, 1_200), (4, 7, 1_200),
        ];
        for (i, &(avail_cores, avail_mem_gb, nic_used)) in plan.iter().enumerate() {
            let host = infra.hosts()[i].id();
            // Cannot fail: every plan entry is within the 16-core /
            // 32 GB / 10 Gbps host envelope. Checked in debug builds.
            let used = Resources::new(16 - avail_cores, (32 - avail_mem_gb) * 1024, 100);
            let reserved = state.reserve_node(host, used);
            debug_assert!(reserved.is_ok(), "preload fits by construction");
            let preloaded =
                state.preload_link(LinkRef::HostNic(host), Bandwidth::from_mbps(nic_used));
            debug_assert!(preloaded.is_ok(), "preload fits by construction");
        }
    }
    Ok((infra, state))
}

/// Builds the §IV-C simulated data center: 150 racks × 16 hosts
/// (16 cores / 32 GB / 1 TB each), host↔ToR 10 Gbps, ToR↔root
/// 100 Gbps, no pod layer.
///
/// With `non_uniform`, availability follows Table IV (sampled with
/// `rng`); otherwise every host is idle.
///
/// # Errors
///
/// Propagates [`BuildError`] (cannot occur for these fixed parameters).
pub fn simulated_datacenter<R: Rng + ?Sized>(
    non_uniform: bool,
    rng: &mut R,
) -> Result<(Infrastructure, CapacityState), BuildError> {
    sized_datacenter(SIM_RACKS, SIM_HOSTS_PER_RACK, non_uniform, rng)
}

/// Like [`simulated_datacenter`] but with an arbitrary scale — used by
/// criterion benches that cannot afford 2400 hosts per sample.
///
/// # Errors
///
/// Propagates [`BuildError`] if `racks` or `hosts_per_rack` is zero.
pub fn sized_datacenter<R: Rng + ?Sized>(
    racks: usize,
    hosts_per_rack: usize,
    non_uniform: bool,
    rng: &mut R,
) -> Result<(Infrastructure, CapacityState), BuildError> {
    let infra = InfrastructureBuilder::flat(
        "simdc",
        racks,
        hosts_per_rack,
        Resources::new(16, 32 * 1024, 1_000),
        Bandwidth::from_gbps(10),
        Bandwidth::from_gbps(100),
    )
    .build()?;
    let state = if non_uniform {
        AvailabilityProfile::table_iv().apply(&infra, rng)
    } else {
        CapacityState::new(&infra)
    };
    Ok((infra, state))
}

/// Builds a multi-site infrastructure (the paper notes Ostro "accounts
/// for any graphical topology representing multiple connected data
/// centers"): `sites` sites, each with a pod layer of `pods_per_site`
/// pods × `racks_per_pod` racks × `hosts_per_rack` hosts.
///
/// Host/link capacities match [`simulated_datacenter`]; pod uplinks are
/// 200 Gbps and site backbone uplinks 400 Gbps.
///
/// # Errors
///
/// Propagates [`BuildError`] if any dimension is zero.
pub fn multi_site_datacenter<R: Rng + ?Sized>(
    sites: usize,
    pods_per_site: usize,
    racks_per_pod: usize,
    hosts_per_rack: usize,
    non_uniform: bool,
    rng: &mut R,
) -> Result<(Infrastructure, CapacityState), BuildError> {
    let mut b = InfrastructureBuilder::new();
    let capacity = Resources::new(16, 32 * 1024, 1_000);
    for s in 0..sites {
        let site = b.site(format!("site{s}"), Bandwidth::from_gbps(400));
        for p in 0..pods_per_site {
            let pod = b.pod(site, format!("s{s}p{p}"), Bandwidth::from_gbps(200))?;
            for r in 0..racks_per_pod {
                let rack =
                    b.rack_in_pod(pod, format!("s{s}p{p}r{r}"), Bandwidth::from_gbps(100))?;
                for h in 0..hosts_per_rack {
                    b.host(rack, format!("s{s}p{p}r{r}h{h}"), capacity, Bandwidth::from_gbps(10))?;
                }
            }
        }
    }
    let infra = b.build()?;
    let state = if non_uniform {
        AvailabilityProfile::table_iv().apply(&infra, rng)
    } else {
        CapacityState::new(&infra)
    };
    Ok((infra, state))
}

/// Builds a single-site, many-pod fleet — the sharded two-level
/// placement's benchmark geometry, sized up to 100k hosts (100 pods ×
/// 25 racks × 40 hosts): `pods` pods × `racks_per_pod` racks ×
/// `hosts_per_rack` hosts under one site.
///
/// Hosts are emitted pod by pod, so every pod occupies one contiguous
/// host-id range — the layout the coarse pod-digest stage restricts
/// exact searches to. Host/link capacities match
/// [`simulated_datacenter`]; pod uplinks are 200 Gbps.
///
/// With `non_uniform` set, Table IV's availability mix is applied
/// per-rack, so pods end up with distinct aggregate headroom and the
/// coarse stage has a real ranking to do.
///
/// # Errors
///
/// Propagates [`BuildError`] if any dimension is zero.
pub fn pod_fleet<R: Rng + ?Sized>(
    pods: usize,
    racks_per_pod: usize,
    hosts_per_rack: usize,
    non_uniform: bool,
    rng: &mut R,
) -> Result<(Infrastructure, CapacityState), BuildError> {
    let mut b = InfrastructureBuilder::new();
    let capacity = Resources::new(16, 32 * 1024, 1_000);
    let site = b.site("dc", Bandwidth::from_gbps(400));
    for p in 0..pods {
        let pod = b.pod(site, format!("p{p}"), Bandwidth::from_gbps(200))?;
        for r in 0..racks_per_pod {
            let rack = b.rack_in_pod(pod, format!("p{p}r{r}"), Bandwidth::from_gbps(100))?;
            for h in 0..hosts_per_rack {
                b.host(rack, format!("p{p}r{r}h{h}"), capacity, Bandwidth::from_gbps(10))?;
            }
        }
    }
    let infra = b.build()?;
    let state = if non_uniform {
        AvailabilityProfile::table_iv().apply(&infra, rng)
    } else {
        CapacityState::new(&infra)
    };
    Ok((infra, state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn testbed_uniform_is_fully_idle() {
        let (infra, state) = qfs_testbed(false).unwrap();
        assert_eq!(infra.host_count(), 16);
        assert_eq!(infra.racks().len(), 1);
        assert_eq!(state.active_host_count(), 0);
        assert_eq!(infra.hosts()[0].nic(), Bandwidth::from_mbps(3_200));
    }

    #[test]
    fn testbed_non_uniform_matches_section_iv_a() {
        let (infra, state) = qfs_testbed(true).unwrap();
        assert_eq!(state.active_host_count(), 12);
        // Light hosts: 8 or 10 cores and more than 20 GB.
        for host in &infra.hosts()[..4] {
            let avail = state.available(host.id());
            assert!(avail.vcpus == 8 || avail.vcpus == 10);
            assert!(avail.memory_mb > 20 * 1024);
        }
        // Medium: 5-6 cores and 15-19 GB.
        for host in &infra.hosts()[4..8] {
            let avail = state.available(host.id());
            assert!((5..=6).contains(&avail.vcpus));
            assert!((15 * 1024..=19 * 1024).contains(&avail.memory_mb));
        }
        // Constrained: < 5 cores and < 15 GB.
        for host in &infra.hosts()[8..12] {
            let avail = state.available(host.id());
            assert!(avail.vcpus < 5);
            assert!(avail.memory_mb < 15 * 1024);
        }
        // Idle tail with full NIC.
        for host in &infra.hosts()[12..] {
            assert!(!state.is_active(host.id()));
            assert_eq!(state.nic_available(host.id()), Bandwidth::from_mbps(3_200));
        }
        // Busier hosts have less NIC headroom.
        assert!(
            state.nic_available(infra.hosts()[0].id()) > state.nic_available(infra.hosts()[8].id())
        );
    }

    #[test]
    fn simulated_datacenter_has_paper_scale() {
        let mut rng = SmallRng::seed_from_u64(1);
        let (infra, state) = simulated_datacenter(false, &mut rng).unwrap();
        assert_eq!(infra.host_count(), 2_400);
        assert_eq!(infra.racks().len(), 150);
        assert_eq!(infra.pods().len(), 1);
        assert!(infra.pods()[0].is_transparent());
        assert_eq!(state.active_host_count(), 0);
        assert_eq!(infra.hosts()[0].nic(), Bandwidth::from_gbps(10));
        assert_eq!(infra.racks()[0].uplink(), Bandwidth::from_gbps(100));
    }

    #[test]
    fn multi_site_structure_is_complete() {
        let mut rng = SmallRng::seed_from_u64(4);
        let (infra, state) = multi_site_datacenter(3, 2, 2, 4, false, &mut rng).unwrap();
        assert_eq!(infra.sites().len(), 3);
        assert_eq!(infra.pods().len(), 6);
        assert!(infra.pods().iter().all(|p| !p.is_transparent()));
        assert_eq!(infra.racks().len(), 12);
        assert_eq!(infra.host_count(), 48);
        assert_eq!(state.active_host_count(), 0);
        // Cross-site flows pay the full 8-link path.
        assert_eq!(infra.max_hop_cost(), 8);
        let a = infra.hosts()[0].id();
        let far = infra.hosts()[47].id();
        assert_eq!(infra.hop_cost(a, far), 8);
    }

    #[test]
    fn multi_site_supports_datacenter_diversity() {
        use ostro_core::{PlacementRequest, Scheduler};
        use ostro_model::{Bandwidth as Bw, DiversityLevel, TopologyBuilder};
        let mut rng = SmallRng::seed_from_u64(5);
        let (infra, state) = multi_site_datacenter(2, 1, 2, 4, false, &mut rng).unwrap();
        let mut b = TopologyBuilder::new("geo");
        let primary = b.vm("primary", 4, 8_192).unwrap();
        let replica = b.vm("replica", 4, 8_192).unwrap();
        b.link(primary, replica, Bw::from_mbps(100)).unwrap();
        b.diversity_zone("geo-ha", DiversityLevel::DataCenter, &[primary, replica]).unwrap();
        let topo = b.build().unwrap();
        let scheduler = Scheduler::new(&infra);
        let outcome = scheduler.place(&topo, &state, &PlacementRequest::default()).unwrap();
        let (.., site_a) = infra.location(outcome.placement.host_of(primary));
        let (.., site_b) = infra.location(outcome.placement.host_of(replica));
        assert_ne!(site_a, site_b);
    }

    #[test]
    fn pod_fleet_is_contiguous_per_pod() {
        let mut rng = SmallRng::seed_from_u64(7);
        let (infra, state) = pod_fleet(5, 2, 4, false, &mut rng).unwrap();
        assert_eq!(infra.sites().len(), 1);
        assert_eq!(infra.pods().len(), 5);
        assert_eq!(infra.racks().len(), 10);
        assert_eq!(infra.host_count(), 40);
        assert_eq!(state.active_host_count(), 0);
        // Hosts are emitted pod by pod: host id / 8 is the pod ordinal.
        for (i, host) in infra.hosts().iter().enumerate() {
            let (_, pod, _) = infra.location(host.id());
            assert_eq!(pod.index(), i / 8, "host {i} out of pod order");
        }
    }

    #[test]
    fn pod_fleet_non_uniform_loads_pods_differently() {
        let mut rng = SmallRng::seed_from_u64(8);
        let (infra, state) = pod_fleet(4, 2, 8, true, &mut rng).unwrap();
        assert!(state.active_host_count() > 0);
        // Aggregate free vCPUs per pod — the digest signal — must not
        // be identical across all pods under Table IV load.
        let mut free = vec![0u64; infra.pods().len()];
        for host in infra.hosts() {
            let (_, pod, _) = infra.location(host.id());
            free[pod.index()] += u64::from(state.available(host.id()).vcpus);
        }
        assert!(free.iter().any(|&f| f != free[0]), "uniform pods: {free:?}");
    }

    #[test]
    fn non_uniform_datacenter_activates_three_quarters() {
        let mut rng = SmallRng::seed_from_u64(2);
        let (infra, state) = sized_datacenter(10, 16, true, &mut rng).unwrap();
        // 12 of 16 hosts per rack carry load (some bucket-0 hosts may
        // sample full availability and stay idle, so allow a margin).
        let active = state.active_host_count();
        assert!(
            (infra.host_count() / 2..infra.host_count()).contains(&active),
            "active = {active}"
        );
    }
}
