//! Multi-tenant churn simulation: a stream of application arrivals and
//! departures placed by one algorithm onto one shared data center.
//!
//! The paper evaluates single placements against *snapshots* of
//! multi-tenancy (Table IV's non-uniform availability). This module
//! closes the loop: the non-uniformity *emerges* from previous
//! placements, and the metrics that matter to an operator — acceptance
//! rate, active hosts, reserved bandwidth over time — can be compared
//! across algorithms.
//!
//! With a [`FaultConfig`] attached, the run also exercises the
//! failure-aware deployment pipeline: arrivals are committed through
//! [`Scheduler::deploy`] under the plan's launch failures and
//! stale-capacity races, and scheduled host crashes trigger quarantine
//! plus tenant evacuation via [`Scheduler::evacuate`]. The
//! [`FaultStats`] block of the report aggregates the recovery metrics.

use ostro_core::{
    Algorithm, DeployPolicy, NoFaults, ObjectiveWeights, PlacementRequest, SchedulerSession,
};
use ostro_datacenter::{CapacityState, HostId, Infrastructure};
use ostro_model::{ApplicationTopology, Bandwidth, Resources};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::faults::{FaultConfig, FaultPlan, PlanProbe};
use crate::requirements::RequirementMix;
use crate::runner::SimError;
use crate::workloads::{mesh, multi_tier, qfs_topology};

/// Configuration of a churn run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Number of arrival events to simulate.
    pub arrivals: usize,
    /// Mean number of ticks an accepted application stays deployed.
    pub mean_lifetime: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Objective weights for every placement.
    pub weights: ObjectiveWeights,
    /// Optional fault-injection plan; `None` runs a clean deployment.
    #[serde(default)]
    pub faults: Option<FaultConfig>,
    /// Retry / backoff / degradation policy of the deployment executor.
    #[serde(default)]
    pub deploy: DeployPolicy,
    /// Expansion cap forwarded to every placement request (0 =
    /// unlimited). A finite cap makes DBA\* runs reproducible: the
    /// deterministic expansion budget binds before the wall clock.
    #[serde(default)]
    pub max_expansions: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            arrivals: 50,
            mean_lifetime: 10,
            seed: 7,
            weights: ObjectiveWeights::SIMULATION,
            faults: None,
            deploy: DeployPolicy::default(),
            max_expansions: 0,
        }
    }
}

/// Fault-injection and recovery metrics of one churn run. All zeros
/// when the run had no fault plan.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Host crashes injected by the plan.
    pub crashes_injected: usize,
    /// Stale-capacity races that actually grabbed capacity.
    pub stale_races_injected: usize,
    /// Transient launch failures absorbed by the executor's retries.
    pub launch_retries: u64,
    /// Simulated ticks spent in retry backoff across all deployments.
    pub backoff_ticks: u64,
    /// Fallback re-placements performed by the executor.
    pub deploy_fallbacks: u64,
    /// Arrivals the solver accepted but the executor could not commit.
    pub deploy_failures: usize,
    /// Best-effort nodes dropped under the degradation policy.
    pub dropped_nodes: usize,
    /// Tenants successfully evacuated off crashed hosts.
    pub tenants_evacuated: usize,
    /// Tenants abandoned because recovery found no feasible placement.
    pub tenants_abandoned: usize,
    /// Replicas lost to crashes (their reservations were released).
    pub dead_replicas_released: usize,
    /// Surviving nodes a recovery had to move to new hosts.
    pub repositioned_nodes: usize,
    /// Pin-relaxation rounds consumed by evacuations.
    pub recovery_rounds: u64,
    /// Simulated ticks spent re-deploying evacuated tenants.
    pub recovery_ticks: u64,
}

impl FaultStats {
    /// Fraction of crash-affected tenants that were recovered
    /// (1.0 when no tenant was ever affected).
    #[must_use]
    pub fn recovery_success_rate(&self) -> f64 {
        let affected = self.tenants_evacuated + self.tenants_abandoned;
        if affected == 0 {
            1.0
        } else {
            self.tenants_evacuated as f64 / affected as f64
        }
    }

    /// Mean simulated ticks to re-deploy an evacuated tenant.
    #[must_use]
    pub fn mean_ticks_to_recover(&self) -> f64 {
        if self.tenants_evacuated == 0 {
            0.0
        } else {
            self.recovery_ticks as f64 / self.tenants_evacuated as f64
        }
    }
}

/// Aggregate metrics of one churn run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnReport {
    /// Arrivals that were successfully placed *and* deployed.
    pub accepted: usize,
    /// Arrivals rejected as infeasible (or search-exhausted).
    pub rejected: usize,
    /// Mean active hosts across ticks.
    pub mean_active_hosts: f64,
    /// Peak active hosts.
    pub peak_active_hosts: usize,
    /// Mean reserved bandwidth across ticks, Mbps.
    pub mean_reserved_mbps: f64,
    /// Peak reserved bandwidth, Mbps.
    pub peak_reserved_mbps: u64,
    /// Mean solver time per accepted placement, seconds.
    pub mean_solver_secs: f64,
    /// Fault-injection and recovery metrics.
    #[serde(default)]
    pub faults: FaultStats,
}

impl ChurnReport {
    /// Fraction of arrivals that ended up deployed; a solver acceptance
    /// that later failed deployment counts against the rate.
    #[must_use]
    pub fn acceptance_rate(&self) -> f64 {
        let total = self.accepted + self.rejected + self.faults.deploy_failures;
        if total == 0 {
            1.0
        } else {
            self.accepted as f64 / total as f64
        }
    }
}

struct Tenant {
    topology: ApplicationTopology,
    /// Node → host, `None` for dropped best-effort replicas.
    assignment: Vec<Option<HostId>>,
    expires_at: usize,
}

/// Draws a random application: small/medium multi-tier, mesh, or QFS.
fn random_application<R: Rng + ?Sized>(
    rng: &mut R,
    index: usize,
) -> Result<ApplicationTopology, SimError> {
    let mix = if rng.gen_bool(0.5) {
        RequirementMix::heterogeneous()
    } else {
        RequirementMix::homogeneous()
    };
    let topology = match rng.gen_range(0..3u8) {
        0 => multi_tier([25, 50, 75][rng.gen_range(0..3)], &mix, rng)?,
        1 => mesh(rng.gen_range(3..9), &mix, rng)?,
        _ => qfs_topology()?,
    };
    // Rename so successive tenants never collide in diagnostics.
    let mut builder = ostro_model::TopologyBuilder::new(format!("tenant{index}"));
    let mut ids = Vec::new();
    for node in topology.nodes() {
        let id = match *node.kind() {
            ostro_model::NodeKind::Vm { vcpus, memory_mb } => {
                builder.vm(node.name(), vcpus, memory_mb)?
            }
            ostro_model::NodeKind::Volume { size_gb } => builder.volume(node.name(), size_gb)?,
        };
        ids.push(id);
    }
    for link in topology.links() {
        let (a, b) = link.endpoints();
        builder.link(ids[a.index()], ids[b.index()], link.bandwidth())?;
    }
    for zone in topology.zones() {
        let members: Vec<_> = zone.members().iter().map(|&m| ids[m.index()]).collect();
        builder.diversity_zone(zone.name(), zone.level(), &members)?;
    }
    Ok(builder.build()?)
}

/// The capacity grabbed by a stale-capacity race: `fraction` of what
/// the raced host currently has free.
fn race_grab(avail: Resources, fraction: f64) -> Resources {
    Resources::new(
        (f64::from(avail.vcpus) * fraction) as u32,
        (avail.memory_mb as f64 * fraction) as u64,
        (avail.disk_gb as f64 * fraction) as u64,
    )
}

/// Runs the churn simulation with one algorithm.
///
/// Each tick, expired tenants depart (their resources are released),
/// scheduled host crashes are injected and recovered from, then one new
/// application arrives and is placed + deployed if feasible.
///
/// # Errors
///
/// Propagates *setup* failures (workload generation) and
/// [`SimError::Release`] on a capacity-accounting violation; placement
/// infeasibility and deployment failures are counted in the report,
/// not returned as errors.
pub fn run_churn(
    infra: &Infrastructure,
    algorithm: Algorithm,
    config: &ChurnConfig,
) -> Result<ChurnReport, SimError> {
    churn_run(infra, algorithm, config).map(|(report, _, _)| report)
}

/// The full churn loop, also yielding the final capacity state and the
/// tenants still deployed — the hooks the leak-regression tests use.
///
/// The whole stream is served by one [`SchedulerSession`], so every
/// placement after the first starts warm: bounds cached by earlier
/// arrivals are reused, and departures/crashes invalidate only the
/// hosts they touched. The session is bit-identical to a cold
/// per-request scheduler, so the reports (and the determinism tests)
/// are unchanged by the reuse.
fn churn_run(
    infra: &Infrastructure,
    algorithm: Algorithm,
    config: &ChurnConfig,
) -> Result<(ChurnReport, CapacityState, Vec<Tenant>), SimError> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut session = SchedulerSession::new(infra);
    let mut tenants: Vec<Tenant> = Vec::new();
    let plan = config
        .faults
        .as_ref()
        .map(|fc| FaultPlan::generate(fc, infra.host_count(), config.arrivals));

    let mut accepted = 0usize;
    let mut rejected = 0usize;
    let mut active_sum = 0f64;
    let mut peak_active = 0usize;
    let mut reserved_sum = 0f64;
    let mut peak_reserved = Bandwidth::ZERO;
    let mut solver_secs = 0f64;
    let mut stats = FaultStats::default();

    for tick in 0..config.arrivals {
        let request = PlacementRequest {
            algorithm,
            weights: config.weights,
            seed: config.seed ^ tick as u64,
            max_expansions: config.max_expansions,
            ..PlacementRequest::default()
        };

        // Departures first.
        let mut staying = Vec::with_capacity(tenants.len());
        for tenant in tenants {
            if tenant.expires_at <= tick {
                session.release_partial(&tenant.topology, &tenant.assignment).map_err(
                    |source| SimError::Release {
                        tenant: tenant.topology.name().to_owned(),
                        source,
                    },
                )?;
            } else {
                staying.push(tenant);
            }
        }
        tenants = staying;

        // Scheduled host crashes: quarantine, then evacuate every
        // tenant that had a replica on the dead host.
        if let Some(plan) = &plan {
            for host in plan.crashes_at(tick).collect::<Vec<_>>() {
                stats.crashes_injected += 1;
                session.quarantine_host(host);
                let mut kept = Vec::with_capacity(tenants.len());
                for mut tenant in tenants {
                    if !tenant.assignment.contains(&Some(host)) {
                        kept.push(tenant);
                        continue;
                    }
                    match session.evacuate(
                        &tenant.topology,
                        &tenant.assignment,
                        &request,
                        host,
                        config.deploy.unpin_rounds,
                    ) {
                        Ok(evac) => {
                            stats.dead_replicas_released += evac.dead.len();
                            stats.repositioned_nodes += evac.online.repositioned.len();
                            stats.recovery_rounds += u64::from(evac.online.rounds);
                            // Re-commit through the executor: recovery
                            // deployments see launch faults too.
                            let mut probe = PlanProbe::new(plan, tick);
                            match session.deploy(
                                &tenant.topology,
                                &evac.online.outcome.placement,
                                &request,
                                &config.deploy,
                                &[],
                                &mut probe,
                            ) {
                                Ok(report) => {
                                    stats.tenants_evacuated += 1;
                                    stats.recovery_ticks += report.ticks;
                                    stats.launch_retries += report.retries;
                                    stats.deploy_fallbacks += u64::from(report.fallbacks);
                                    stats.dropped_nodes += report.dropped;
                                    tenant.assignment = report.assignment;
                                    kept.push(tenant);
                                }
                                // The executor rolled back; the tenant
                                // is already fully released.
                                Err(_) => stats.tenants_abandoned += 1,
                            }
                        }
                        // Even unpinned re-placement was infeasible;
                        // `evacuate` released the tenant entirely.
                        Err(_) => stats.tenants_abandoned += 1,
                    }
                }
                tenants = kept;
            }
        }

        // One arrival: decide, then deploy under injected faults.
        let topology = random_application(&mut rng, tick)?;
        match session.place(&topology, &request) {
            Ok(outcome) => {
                solver_secs += outcome.elapsed.as_secs_f64();
                // A concurrent actor may grab capacity between the
                // decision and our commit (and release it afterwards).
                let mut phantom: Option<(HostId, Resources)> = None;
                if let Some(plan) = &plan {
                    if let Some(raced) = plan.stale_race(tick, infra.host_count()) {
                        let grab =
                            race_grab(session.state().available(raced), plan.stale_race_fraction());
                        if grab != Resources::ZERO && session.reserve_node(raced, grab).is_ok() {
                            stats.stale_races_injected += 1;
                            phantom = Some((raced, grab));
                        }
                    }
                }
                let deployed = match &plan {
                    Some(plan) => {
                        let mut probe = PlanProbe::new(plan, tick);
                        session.deploy(
                            &topology,
                            &outcome.placement,
                            &request,
                            &config.deploy,
                            &[],
                            &mut probe,
                        )
                    }
                    None => session.deploy(
                        &topology,
                        &outcome.placement,
                        &request,
                        &config.deploy,
                        &[],
                        &mut NoFaults,
                    ),
                };
                if let Some((host, grab)) = phantom {
                    session.release_node(host, grab).map_err(|source| SimError::Release {
                        tenant: "stale-race phantom".into(),
                        source: source.into(),
                    })?;
                }
                match deployed {
                    Ok(report) => {
                        stats.launch_retries += report.retries;
                        stats.backoff_ticks += report.ticks;
                        stats.deploy_fallbacks += u64::from(report.fallbacks);
                        stats.dropped_nodes += report.dropped;
                        accepted += 1;
                        let lifetime = rng.gen_range(1..=config.mean_lifetime * 2);
                        tenants.push(Tenant {
                            topology,
                            assignment: report.assignment,
                            expires_at: tick + lifetime,
                        });
                    }
                    // Rolled back by the executor — the arrival is
                    // refused at deployment time, not a crash.
                    Err(_) => stats.deploy_failures += 1,
                }
            }
            Err(_) => rejected += 1,
        }

        let active = session.state().active_host_count();
        let reserved = session.state().total_reserved_bandwidth(infra);
        active_sum += active as f64;
        peak_active = peak_active.max(active);
        reserved_sum += reserved.as_mbps() as f64;
        peak_reserved = peak_reserved.max(reserved);
    }

    let ticks = config.arrivals.max(1) as f64;
    let report = ChurnReport {
        accepted,
        rejected,
        mean_active_hosts: active_sum / ticks,
        peak_active_hosts: peak_active,
        mean_reserved_mbps: reserved_sum / ticks,
        peak_reserved_mbps: peak_reserved.as_mbps(),
        mean_solver_secs: if accepted > 0 { solver_secs / accepted as f64 } else { 0.0 },
        faults: stats,
    };
    Ok((report, session.into_state(), tenants))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::sized_datacenter;
    use ostro_core::Scheduler;
    use std::time::Duration;

    fn infra() -> Infrastructure {
        let mut rng = SmallRng::seed_from_u64(1);
        sized_datacenter(6, 8, false, &mut rng).unwrap().0
    }

    fn config(arrivals: usize) -> ChurnConfig {
        ChurnConfig { arrivals, mean_lifetime: 5, ..ChurnConfig::default() }
    }

    fn faulty_config(arrivals: usize) -> ChurnConfig {
        ChurnConfig {
            faults: Some(FaultConfig {
                seed: 11,
                host_crashes: 3,
                launch_failure_prob: 0.05,
                stale_race_prob: 0.2,
                stale_race_fraction: 0.5,
            }),
            ..config(arrivals)
        }
    }

    #[test]
    fn churn_accepts_everything_on_a_roomy_cloud() {
        let infra = infra();
        let report = run_churn(&infra, Algorithm::Greedy, &config(12)).unwrap();
        assert_eq!(report.accepted, 12);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.acceptance_rate(), 1.0);
        assert!(report.peak_active_hosts > 0);
        assert!(report.mean_reserved_mbps >= 0.0);
        assert!(report.mean_solver_secs > 0.0);
        assert_eq!(report.faults, FaultStats::default());
    }

    #[test]
    fn churn_is_deterministic_per_seed() {
        let infra = infra();
        let mut a = run_churn(&infra, Algorithm::Greedy, &config(10)).unwrap();
        let mut b = run_churn(&infra, Algorithm::Greedy, &config(10)).unwrap();
        // Wall-clock solver time is the one legitimately noisy field.
        a.mean_solver_secs = 0.0;
        b.mean_solver_secs = 0.0;
        assert_eq!(a, b);
    }

    #[test]
    fn consolidating_weights_use_fewer_hosts_than_egbw() {
        let infra = infra();
        let cfg = config(20);
        let eg = run_churn(&infra, Algorithm::Greedy, &cfg).unwrap();
        let egbw = run_churn(&infra, Algorithm::GreedyBandwidth, &cfg).unwrap();
        assert!(
            eg.mean_active_hosts <= egbw.mean_active_hosts + 1e-9,
            "EG {} vs EGBW {}",
            eg.mean_active_hosts,
            egbw.mean_active_hosts
        );
    }

    #[test]
    fn tiny_cloud_rejects_but_survives() {
        let mut rng = SmallRng::seed_from_u64(1);
        // 1 rack x 4 hosts: QFS (12-way diversity) can never fit.
        let (infra, _) = sized_datacenter(1, 4, false, &mut rng).unwrap();
        let report = run_churn(&infra, Algorithm::Greedy, &config(15)).unwrap();
        assert!(report.rejected > 0);
        assert!(report.acceptance_rate() < 1.0);
    }

    #[test]
    fn works_with_deadline_bounded_search() {
        let infra = infra();
        let report = run_churn(
            &infra,
            Algorithm::DeadlineBoundedAStar { deadline: Duration::from_millis(100) },
            &config(6),
        )
        .unwrap();
        assert_eq!(report.accepted + report.rejected, 6);
    }

    #[test]
    fn faulty_churn_completes_and_recovers() {
        let infra = infra();
        let report = run_churn(&infra, Algorithm::Greedy, &faulty_config(30)).unwrap();
        assert_eq!(report.faults.crashes_injected, 3);
        assert!(report.accepted > 0);
        assert!(report.faults.launch_retries > 0, "5% launch failures over 30 arrivals");
        assert!(report.faults.recovery_success_rate() >= 0.0);
        assert!(report.faults.recovery_success_rate() <= 1.0);
        assert!(report.faults.mean_ticks_to_recover() >= 0.0);
        // Every arrival is accounted for exactly once.
        assert_eq!(
            report.accepted + report.rejected + report.faults.deploy_failures,
            30,
            "faults must surface in the report, not vanish"
        );
    }

    #[test]
    fn faulty_churn_is_deterministic_per_seed() {
        let infra = infra();
        let cfg = faulty_config(20);
        let mut a = run_churn(&infra, Algorithm::Greedy, &cfg).unwrap();
        let mut b = run_churn(&infra, Algorithm::Greedy, &cfg).unwrap();
        a.mean_solver_secs = 0.0;
        b.mean_solver_secs = 0.0;
        assert_eq!(a, b);
    }

    /// Capacity-leak regression: after a full churn run, releasing the
    /// surviving tenants must restore the state to exactly fresh.
    #[test]
    fn clean_churn_run_leaks_no_capacity() {
        let infra = infra();
        let scheduler = Scheduler::new(&infra);
        let (_, mut state, tenants) = churn_run(&infra, Algorithm::Greedy, &config(15)).unwrap();
        for tenant in &tenants {
            scheduler.release_partial(&tenant.topology, &tenant.assignment, &mut state).unwrap();
        }
        assert_eq!(state, CapacityState::new(&infra), "all reservations must be released");
    }

    /// Same invariant under fault injection: the only difference from a
    /// fresh state must be the quarantined (crashed) hosts.
    #[test]
    fn faulty_churn_run_leaks_no_capacity() {
        let infra = infra();
        let scheduler = Scheduler::new(&infra);
        let cfg = faulty_config(25);
        let (report, mut state, tenants) = churn_run(&infra, Algorithm::Greedy, &cfg).unwrap();
        for tenant in &tenants {
            scheduler.release_partial(&tenant.topology, &tenant.assignment, &mut state).unwrap();
        }
        let mut expected = CapacityState::new(&infra);
        let plan =
            FaultPlan::generate(cfg.faults.as_ref().unwrap(), infra.host_count(), cfg.arrivals);
        for &(_, host) in plan.crashes() {
            expected.quarantine_host(host);
        }
        assert_eq!(report.faults.crashes_injected, plan.crashes().len());
        assert_eq!(state, expected, "only the crash quarantines may remain");
    }
}
