//! Multi-tenant churn simulation: a stream of application arrivals and
//! departures placed by one algorithm onto one shared data center.
//!
//! The paper evaluates single placements against *snapshots* of
//! multi-tenancy (Table IV's non-uniform availability). This module
//! closes the loop: the non-uniformity *emerges* from previous
//! placements, and the metrics that matter to an operator — acceptance
//! rate, active hosts, reserved bandwidth over time — can be compared
//! across algorithms.
//!
//! With a [`FaultConfig`] attached, the run also exercises the
//! failure-aware deployment pipeline: arrivals are committed through
//! [`Scheduler::deploy`] under the plan's launch failures and
//! stale-capacity races, and scheduled host crashes trigger quarantine
//! plus tenant evacuation via [`Scheduler::evacuate`]. The
//! [`FaultStats`] block of the report aggregates the recovery metrics.

use std::path::Path;

use ostro_core::{
    Algorithm, DeployPolicy, HostTruth, NoFaults, ObjectiveWeights, PlacementRequest,
    SchedulerSession, SyncPolicy, Wal, WalOptions,
};
use ostro_datacenter::{CapacityState, HostId, Infrastructure};
use ostro_model::{ApplicationTopology, Bandwidth, Resources};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::faults::{FaultConfig, FaultPlan, PlanProbe};
use crate::requirements::RequirementMix;
use crate::runner::SimError;
use crate::workloads::{mesh, multi_tier, qfs_topology};

/// Configuration of a churn run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Number of arrival events to simulate.
    pub arrivals: usize,
    /// Mean number of ticks an accepted application stays deployed.
    pub mean_lifetime: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Objective weights for every placement.
    pub weights: ObjectiveWeights,
    /// Optional fault-injection plan; `None` runs a clean deployment.
    #[serde(default)]
    pub faults: Option<FaultConfig>,
    /// Retry / backoff / degradation policy of the deployment executor.
    #[serde(default)]
    pub deploy: DeployPolicy,
    /// Expansion cap forwarded to every placement request (0 =
    /// unlimited). A finite cap makes DBA\* runs reproducible: the
    /// deterministic expansion budget binds before the wall clock.
    #[serde(default)]
    pub max_expansions: u64,
    /// Virtual deadline-clock tick, in microseconds, forwarded to every
    /// placement request (0 = wall clock). Combined with a finite
    /// `max_expansions` this makes DBA\* churn runs fully
    /// deterministic — a prerequisite for the crash-recovery
    /// bit-identity drills.
    #[serde(default)]
    pub virtual_tick_us: u64,
    /// Optional crash-recovery drill: journal every mutation to a
    /// write-ahead log and kill/restart the scheduler at scheduled
    /// ticks, verifying the recovered books against the live ones.
    #[serde(default)]
    pub recovery: Option<RecoveryConfig>,
    /// Run an anti-entropy sweep every this many ticks (0 = never),
    /// reconciling the session's books against the deployed-tenant
    /// ledger and repairing any drift (e.g. leaked race grabs).
    #[serde(default)]
    pub reconcile_every: usize,
}

/// Crash-recovery drill configuration for a churn run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryConfig {
    /// Directory holding the journal (`wal.log`) and its snapshot;
    /// wiped at run start.
    pub wal_dir: String,
    /// Ticks at whose start the scheduler is killed cold and rebuilt
    /// from snapshot + journal replay.
    #[serde(default)]
    pub crash_ticks: Vec<usize>,
    /// Journal records between automatic snapshot compactions
    /// (0 = never snapshot).
    #[serde(default = "default_snapshot_every")]
    pub snapshot_every: u64,
}

fn default_snapshot_every() -> u64 {
    256
}

impl RecoveryConfig {
    fn wal_options(&self) -> WalOptions {
        WalOptions { snapshot_every: self.snapshot_every, sync: SyncPolicy::OnSnapshot }
    }
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            arrivals: 50,
            mean_lifetime: 10,
            seed: 7,
            weights: ObjectiveWeights::SIMULATION,
            faults: None,
            deploy: DeployPolicy::default(),
            max_expansions: 0,
            virtual_tick_us: 0,
            recovery: None,
            reconcile_every: 0,
        }
    }
}

/// Fault-injection and recovery metrics of one churn run. All zeros
/// when the run had no fault plan.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Host crashes injected by the plan.
    pub crashes_injected: usize,
    /// Stale-capacity races that actually grabbed capacity.
    pub stale_races_injected: usize,
    /// Transient launch failures absorbed by the executor's retries.
    pub launch_retries: u64,
    /// Simulated ticks spent in retry backoff across all deployments.
    pub backoff_ticks: u64,
    /// Fallback re-placements performed by the executor.
    pub deploy_fallbacks: u64,
    /// Arrivals the solver accepted but the executor could not commit.
    pub deploy_failures: usize,
    /// Best-effort nodes dropped under the degradation policy.
    pub dropped_nodes: usize,
    /// Tenants successfully evacuated off crashed hosts.
    pub tenants_evacuated: usize,
    /// Tenants abandoned because recovery found no feasible placement.
    pub tenants_abandoned: usize,
    /// Replicas lost to crashes (their reservations were released).
    pub dead_replicas_released: usize,
    /// Surviving nodes a recovery had to move to new hosts.
    pub repositioned_nodes: usize,
    /// Pin-relaxation rounds consumed by evacuations.
    pub recovery_rounds: u64,
    /// Simulated ticks spent re-deploying evacuated tenants.
    pub recovery_ticks: u64,
    /// Stale races whose phantom grab was never released (the actor
    /// died holding it), drifting the books until a sweep reclaims it.
    #[serde(default)]
    pub stale_races_leaked: usize,
    /// Scheduler kill/restart drills performed.
    #[serde(default)]
    pub scheduler_restarts: usize,
    /// Journal records replayed across all restart drills.
    #[serde(default)]
    pub wal_records_replayed: u64,
    /// Orphaned reservations repaired by anti-entropy sweeps.
    #[serde(default)]
    pub reconcile_orphaned: u64,
    /// Leaked releases repaired by anti-entropy sweeps.
    #[serde(default)]
    pub reconcile_leaked: u64,
    /// Stale-race ghosts repaired by anti-entropy sweeps.
    #[serde(default)]
    pub reconcile_ghosts: u64,
}

impl FaultStats {
    /// Fraction of crash-affected tenants that were recovered
    /// (1.0 when no tenant was ever affected).
    #[must_use]
    pub fn recovery_success_rate(&self) -> f64 {
        let affected = self.tenants_evacuated + self.tenants_abandoned;
        if affected == 0 {
            1.0
        } else {
            self.tenants_evacuated as f64 / affected as f64
        }
    }

    /// Mean simulated ticks to re-deploy an evacuated tenant.
    #[must_use]
    pub fn mean_ticks_to_recover(&self) -> f64 {
        if self.tenants_evacuated == 0 {
            0.0
        } else {
            self.recovery_ticks as f64 / self.tenants_evacuated as f64
        }
    }
}

/// Aggregate metrics of one churn run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnReport {
    /// Arrivals that were successfully placed *and* deployed.
    pub accepted: usize,
    /// Arrivals rejected as infeasible (or search-exhausted).
    pub rejected: usize,
    /// Mean active hosts across ticks.
    pub mean_active_hosts: f64,
    /// Peak active hosts.
    pub peak_active_hosts: usize,
    /// Mean reserved bandwidth across ticks, Mbps.
    pub mean_reserved_mbps: f64,
    /// Peak reserved bandwidth, Mbps.
    pub peak_reserved_mbps: u64,
    /// Mean solver time per accepted placement, seconds.
    pub mean_solver_secs: f64,
    /// Fault-injection and recovery metrics.
    #[serde(default)]
    pub faults: FaultStats,
}

impl ChurnReport {
    /// Fraction of arrivals that ended up deployed; a solver acceptance
    /// that later failed deployment counts against the rate.
    #[must_use]
    pub fn acceptance_rate(&self) -> f64 {
        let total = self.accepted + self.rejected + self.faults.deploy_failures;
        if total == 0 {
            1.0
        } else {
            self.accepted as f64 / total as f64
        }
    }
}

struct Tenant {
    topology: ApplicationTopology,
    /// Node → host, `None` for dropped best-effort replicas.
    assignment: Vec<Option<HostId>>,
    expires_at: usize,
}

/// Draws a random application: small/medium multi-tier, mesh, or QFS.
fn random_application<R: Rng + ?Sized>(
    rng: &mut R,
    index: usize,
) -> Result<ApplicationTopology, SimError> {
    let mix = if rng.gen_bool(0.5) {
        RequirementMix::heterogeneous()
    } else {
        RequirementMix::homogeneous()
    };
    let topology = match rng.gen_range(0..3u8) {
        0 => multi_tier([25, 50, 75][rng.gen_range(0..3)], &mix, rng)?,
        1 => mesh(rng.gen_range(3..9), &mix, rng)?,
        _ => qfs_topology()?,
    };
    // Rename so successive tenants never collide in diagnostics.
    let mut builder = ostro_model::TopologyBuilder::new(format!("tenant{index}"));
    let mut ids = Vec::new();
    for node in topology.nodes() {
        let id = match *node.kind() {
            ostro_model::NodeKind::Vm { vcpus, memory_mb } => {
                builder.vm(node.name(), vcpus, memory_mb)?
            }
            ostro_model::NodeKind::Volume { size_gb } => builder.volume(node.name(), size_gb)?,
        };
        ids.push(id);
    }
    for link in topology.links() {
        let (a, b) = link.endpoints();
        builder.link(ids[a.index()], ids[b.index()], link.bandwidth())?;
    }
    for zone in topology.zones() {
        let members: Vec<_> = zone.members().iter().map(|&m| ids[m.index()]).collect();
        builder.diversity_zone(zone.name(), zone.level(), &members)?;
    }
    Ok(builder.build()?)
}

/// The capacity grabbed by a stale-capacity race: `fraction` of what
/// the raced host currently has free.
fn race_grab(avail: Resources, fraction: f64) -> Resources {
    Resources::new(
        (f64::from(avail.vcpus) * fraction) as u32,
        (avail.memory_mb as f64 * fraction) as u64,
        (avail.disk_gb as f64 * fraction) as u64,
    )
}

/// Per-host ground truth of everything actually deployed: every live
/// tenant replica summed onto its host — the simulator's stand-in for
/// asking Nova/Cinder what is really running.
fn deployed_truth(infra: &Infrastructure, tenants: &[Tenant]) -> Vec<HostTruth> {
    let n = infra.host_count();
    let mut used = vec![Resources::ZERO; n];
    let mut instances = vec![0u32; n];
    for tenant in tenants {
        for (node, slot) in tenant.topology.nodes().iter().zip(&tenant.assignment) {
            if let Some(host) = slot {
                used[host.index()] += node.requirements();
                instances[host.index()] += 1;
            }
        }
    }
    (0..n)
        .map(|i| HostTruth {
            host: HostId::from_index(i as u32),
            used: used[i],
            instances: instances[i],
        })
        .collect()
}

/// Runs the churn simulation with one algorithm.
///
/// Each tick, expired tenants depart (their resources are released),
/// scheduled host crashes are injected and recovered from, then one new
/// application arrives and is placed + deployed if feasible.
///
/// # Errors
///
/// Propagates *setup* failures (workload generation) and
/// [`SimError::Release`] on a capacity-accounting violation; placement
/// infeasibility and deployment failures are counted in the report,
/// not returned as errors.
pub fn run_churn(
    infra: &Infrastructure,
    algorithm: Algorithm,
    config: &ChurnConfig,
) -> Result<ChurnReport, SimError> {
    churn_run(infra, algorithm, config).map(|(report, _, _)| report)
}

/// The full churn loop, also yielding the final capacity state and the
/// tenants still deployed — the hooks the leak-regression tests use.
///
/// The whole stream is served by one [`SchedulerSession`], so every
/// placement after the first starts warm: bounds cached by earlier
/// arrivals are reused, and departures/crashes invalidate only the
/// hosts they touched. The session is bit-identical to a cold
/// per-request scheduler, so the reports (and the determinism tests)
/// are unchanged by the reuse.
fn churn_run(
    infra: &Infrastructure,
    algorithm: Algorithm,
    config: &ChurnConfig,
) -> Result<(ChurnReport, CapacityState, Vec<Tenant>), SimError> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut session = SchedulerSession::new(infra);
    if let Some(rec) = &config.recovery {
        let dir = Path::new(&rec.wal_dir);
        Wal::reset(dir)?;
        let (wal, _) = Wal::open(dir, infra, rec.wal_options())?;
        session.attach_wal(wal);
    }
    let mut tenants: Vec<Tenant> = Vec::new();
    let plan = config
        .faults
        .as_ref()
        .map(|fc| FaultPlan::generate(fc, infra.host_count(), config.arrivals));

    let mut accepted = 0usize;
    let mut rejected = 0usize;
    let mut active_sum = 0f64;
    let mut peak_active = 0usize;
    let mut reserved_sum = 0f64;
    let mut peak_reserved = Bandwidth::ZERO;
    let mut solver_secs = 0f64;
    let mut stats = FaultStats::default();

    for tick in 0..config.arrivals {
        let request = PlacementRequest {
            algorithm,
            weights: config.weights,
            seed: config.seed ^ tick as u64,
            max_expansions: config.max_expansions,
            virtual_tick_us: config.virtual_tick_us,
            ..PlacementRequest::default()
        };

        // Crash drill: kill the scheduler cold (in-memory books and
        // journal handle alike), reconstruct it from snapshot + journal
        // replay, and verify the recovered books are bit-identical to
        // what the live scheduler held at the kill point.
        if let Some(rec) = &config.recovery {
            if rec.crash_ticks.contains(&tick) {
                if let Some(e) = session.take_wal_error() {
                    return Err(SimError::Wal(e));
                }
                let live_state = session.state().clone();
                let live_quarantine = session.quarantined_hosts();
                drop(session.detach_wal());
                let (wal, recovery) = Wal::open(Path::new(&rec.wal_dir), infra, rec.wal_options())?;
                if recovery.state != live_state || recovery.quarantined != live_quarantine {
                    return Err(SimError::RecoveryDiverged { tick });
                }
                stats.scheduler_restarts += 1;
                stats.wal_records_replayed += recovery.records_replayed;
                session = SchedulerSession::with_recovery(infra, &recovery);
                session.attach_wal(wal);
            }
        }

        // Departures first.
        let mut staying = Vec::with_capacity(tenants.len());
        for tenant in tenants {
            if tenant.expires_at <= tick {
                session.release_partial(&tenant.topology, &tenant.assignment).map_err(
                    |source| SimError::Release {
                        tenant: tenant.topology.name().to_owned(),
                        source,
                    },
                )?;
            } else {
                staying.push(tenant);
            }
        }
        tenants = staying;

        // Scheduled host crashes: quarantine, then evacuate every
        // tenant that had a replica on the dead host.
        if let Some(plan) = &plan {
            for host in plan.crashes_at(tick).collect::<Vec<_>>() {
                stats.crashes_injected += 1;
                session.quarantine_host(host);
                let mut kept = Vec::with_capacity(tenants.len());
                for mut tenant in tenants {
                    if !tenant.assignment.contains(&Some(host)) {
                        kept.push(tenant);
                        continue;
                    }
                    match session.evacuate(
                        &tenant.topology,
                        &tenant.assignment,
                        &request,
                        host,
                        config.deploy.unpin_rounds,
                    ) {
                        Ok(evac) => {
                            stats.dead_replicas_released += evac.dead.len();
                            stats.repositioned_nodes += evac.online.repositioned.len();
                            stats.recovery_rounds += u64::from(evac.online.rounds);
                            // Re-commit through the executor: recovery
                            // deployments see launch faults too.
                            let mut probe = PlanProbe::new(plan, tick);
                            match session.deploy(
                                &tenant.topology,
                                &evac.online.outcome.placement,
                                &request,
                                &config.deploy,
                                &[],
                                &mut probe,
                            ) {
                                Ok(report) => {
                                    stats.tenants_evacuated += 1;
                                    stats.recovery_ticks += report.ticks;
                                    stats.launch_retries += report.retries;
                                    stats.deploy_fallbacks += u64::from(report.fallbacks);
                                    stats.dropped_nodes += report.dropped;
                                    tenant.assignment = report.assignment;
                                    kept.push(tenant);
                                }
                                // The executor rolled back; the tenant
                                // is already fully released.
                                Err(_) => stats.tenants_abandoned += 1,
                            }
                        }
                        // Even unpinned re-placement was infeasible;
                        // `evacuate` released the tenant entirely.
                        Err(_) => stats.tenants_abandoned += 1,
                    }
                }
                tenants = kept;
            }
        }

        // One arrival: decide, then deploy under injected faults.
        let topology = random_application(&mut rng, tick)?;
        match session.place(&topology, &request) {
            Ok(outcome) => {
                solver_secs += outcome.elapsed.as_secs_f64();
                // A concurrent actor may grab capacity between the
                // decision and our commit (and release it afterwards).
                let mut phantom: Option<(HostId, Resources)> = None;
                if let Some(plan) = &plan {
                    if let Some(raced) = plan.stale_race(tick, infra.host_count()) {
                        let grab =
                            race_grab(session.state().available(raced), plan.stale_race_fraction());
                        if grab != Resources::ZERO && session.reserve_node(raced, grab).is_ok() {
                            stats.stale_races_injected += 1;
                            phantom = Some((raced, grab));
                        }
                    }
                }
                let deployed = match &plan {
                    Some(plan) => {
                        let mut probe = PlanProbe::new(plan, tick);
                        session.deploy(
                            &topology,
                            &outcome.placement,
                            &request,
                            &config.deploy,
                            &[],
                            &mut probe,
                        )
                    }
                    None => session.deploy(
                        &topology,
                        &outcome.placement,
                        &request,
                        &config.deploy,
                        &[],
                        &mut NoFaults,
                    ),
                };
                if let Some((host, grab)) = phantom {
                    if plan.as_ref().is_some_and(|p| p.race_leaks(tick)) {
                        // The concurrent actor died holding its grab:
                        // nothing will ever release it, so the books
                        // drift until an anti-entropy sweep reclaims
                        // the orphan.
                        stats.stale_races_leaked += 1;
                    } else {
                        session.release_node(host, grab).map_err(|source| SimError::Release {
                            tenant: "stale-race phantom".into(),
                            source: source.into(),
                        })?;
                    }
                }
                match deployed {
                    Ok(report) => {
                        stats.launch_retries += report.retries;
                        stats.backoff_ticks += report.ticks;
                        stats.deploy_fallbacks += u64::from(report.fallbacks);
                        stats.dropped_nodes += report.dropped;
                        accepted += 1;
                        let lifetime = rng.gen_range(1..=config.mean_lifetime * 2);
                        tenants.push(Tenant {
                            topology,
                            assignment: report.assignment,
                            expires_at: tick + lifetime,
                        });
                    }
                    // Rolled back by the executor — the arrival is
                    // refused at deployment time, not a crash.
                    Err(_) => stats.deploy_failures += 1,
                }
            }
            Err(_) => rejected += 1,
        }

        // Anti-entropy sweep: reconcile the session's books against
        // the deployed-tenant ledger and repair any drift.
        if config.reconcile_every > 0 && (tick + 1) % config.reconcile_every == 0 {
            let truth = deployed_truth(infra, &tenants);
            let sweep = session.reconcile(&truth)?;
            stats.reconcile_orphaned += sweep.orphaned() as u64;
            stats.reconcile_leaked += sweep.leaked() as u64;
            stats.reconcile_ghosts += sweep.ghosts() as u64;
        }

        let active = session.state().active_host_count();
        let reserved = session.state().total_reserved_bandwidth(infra);
        active_sum += active as f64;
        peak_active = peak_active.max(active);
        reserved_sum += reserved.as_mbps() as f64;
        peak_reserved = peak_reserved.max(reserved);
    }

    if let Some(e) = session.take_wal_error() {
        return Err(SimError::Wal(e));
    }
    let ticks = config.arrivals.max(1) as f64;
    let report = ChurnReport {
        accepted,
        rejected,
        mean_active_hosts: active_sum / ticks,
        peak_active_hosts: peak_active,
        mean_reserved_mbps: reserved_sum / ticks,
        peak_reserved_mbps: peak_reserved.as_mbps(),
        mean_solver_secs: if accepted > 0 { solver_secs / accepted as f64 } else { 0.0 },
        faults: stats,
    };
    Ok((report, session.into_state(), tenants))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::sized_datacenter;
    use ostro_core::Scheduler;
    use std::time::Duration;

    fn infra() -> Infrastructure {
        let mut rng = SmallRng::seed_from_u64(1);
        sized_datacenter(6, 8, false, &mut rng).unwrap().0
    }

    fn config(arrivals: usize) -> ChurnConfig {
        ChurnConfig { arrivals, mean_lifetime: 5, ..ChurnConfig::default() }
    }

    fn faulty_config(arrivals: usize) -> ChurnConfig {
        ChurnConfig {
            faults: Some(FaultConfig {
                seed: 11,
                host_crashes: 3,
                launch_failure_prob: 0.05,
                stale_race_prob: 0.2,
                stale_race_fraction: 0.5,
                ..FaultConfig::default()
            }),
            ..config(arrivals)
        }
    }

    #[test]
    fn churn_accepts_everything_on_a_roomy_cloud() {
        let infra = infra();
        let report = run_churn(&infra, Algorithm::Greedy, &config(12)).unwrap();
        assert_eq!(report.accepted, 12);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.acceptance_rate(), 1.0);
        assert!(report.peak_active_hosts > 0);
        assert!(report.mean_reserved_mbps >= 0.0);
        assert!(report.mean_solver_secs > 0.0);
        assert_eq!(report.faults, FaultStats::default());
    }

    #[test]
    fn churn_is_deterministic_per_seed() {
        let infra = infra();
        let mut a = run_churn(&infra, Algorithm::Greedy, &config(10)).unwrap();
        let mut b = run_churn(&infra, Algorithm::Greedy, &config(10)).unwrap();
        // Wall-clock solver time is the one legitimately noisy field.
        a.mean_solver_secs = 0.0;
        b.mean_solver_secs = 0.0;
        assert_eq!(a, b);
    }

    #[test]
    fn consolidating_weights_use_fewer_hosts_than_egbw() {
        let infra = infra();
        let cfg = config(20);
        let eg = run_churn(&infra, Algorithm::Greedy, &cfg).unwrap();
        let egbw = run_churn(&infra, Algorithm::GreedyBandwidth, &cfg).unwrap();
        assert!(
            eg.mean_active_hosts <= egbw.mean_active_hosts + 1e-9,
            "EG {} vs EGBW {}",
            eg.mean_active_hosts,
            egbw.mean_active_hosts
        );
    }

    #[test]
    fn tiny_cloud_rejects_but_survives() {
        let mut rng = SmallRng::seed_from_u64(1);
        // 1 rack x 4 hosts: QFS (12-way diversity) can never fit.
        let (infra, _) = sized_datacenter(1, 4, false, &mut rng).unwrap();
        let report = run_churn(&infra, Algorithm::Greedy, &config(15)).unwrap();
        assert!(report.rejected > 0);
        assert!(report.acceptance_rate() < 1.0);
    }

    #[test]
    fn works_with_deadline_bounded_search() {
        let infra = infra();
        let report = run_churn(
            &infra,
            Algorithm::DeadlineBoundedAStar { deadline: Duration::from_millis(100) },
            &config(6),
        )
        .unwrap();
        assert_eq!(report.accepted + report.rejected, 6);
    }

    #[test]
    fn faulty_churn_completes_and_recovers() {
        let infra = infra();
        let report = run_churn(&infra, Algorithm::Greedy, &faulty_config(30)).unwrap();
        assert_eq!(report.faults.crashes_injected, 3);
        assert!(report.accepted > 0);
        assert!(report.faults.launch_retries > 0, "5% launch failures over 30 arrivals");
        assert!(report.faults.recovery_success_rate() >= 0.0);
        assert!(report.faults.recovery_success_rate() <= 1.0);
        assert!(report.faults.mean_ticks_to_recover() >= 0.0);
        // Every arrival is accounted for exactly once.
        assert_eq!(
            report.accepted + report.rejected + report.faults.deploy_failures,
            30,
            "faults must surface in the report, not vanish"
        );
    }

    #[test]
    fn faulty_churn_is_deterministic_per_seed() {
        let infra = infra();
        let cfg = faulty_config(20);
        let mut a = run_churn(&infra, Algorithm::Greedy, &cfg).unwrap();
        let mut b = run_churn(&infra, Algorithm::Greedy, &cfg).unwrap();
        a.mean_solver_secs = 0.0;
        b.mean_solver_secs = 0.0;
        assert_eq!(a, b);
    }

    fn wal_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ostro-churn-wal-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn with_recovery(
        mut cfg: ChurnConfig,
        dir: &std::path::Path,
        crash_ticks: Vec<usize>,
    ) -> ChurnConfig {
        cfg.recovery = Some(RecoveryConfig {
            wal_dir: dir.to_string_lossy().into_owned(),
            crash_ticks,
            snapshot_every: 6,
        });
        cfg
    }

    /// Strips the fields that legitimately differ between a crashed and
    /// an uncrashed run: wall-clock solver time and the drill counters.
    fn canonical(mut report: ChurnReport) -> ChurnReport {
        report.mean_solver_secs = 0.0;
        report.faults.scheduler_restarts = 0;
        report.faults.wal_records_replayed = 0;
        report
    }

    /// The tentpole acceptance: kill the scheduler mid-churn at seeded
    /// ticks, rebuild it from snapshot + journal replay, and the whole
    /// run — every subsequent placement decision, every fault metric —
    /// is bit-identical to a run that never crashed.
    #[test]
    fn crash_recovery_churn_matches_the_uncrashed_run() {
        let infra = infra();
        let dir = wal_dir("identical");
        let cfg = with_recovery(faulty_config(24), &dir, vec![5, 13, 20]);
        let crashed = run_churn(&infra, Algorithm::Greedy, &cfg).unwrap();
        assert_eq!(crashed.faults.scheduler_restarts, 3);
        assert!(crashed.faults.wal_records_replayed > 0, "some records replayed across drills");

        let clean =
            run_churn(&infra, Algorithm::Greedy, &ChurnConfig { recovery: None, ..cfg.clone() })
                .unwrap();
        assert_eq!(canonical(crashed), canonical(clean));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Same drill under DBA*: the virtual deadline clock plus a finite
    /// expansion cap make even the deadline-bounded search replayable.
    #[test]
    fn dbastar_crash_recovery_is_deterministic_with_virtual_clock() {
        let infra = infra();
        let dir = wal_dir("dbastar");
        let mut cfg = config(8);
        cfg.virtual_tick_us = 40;
        cfg.max_expansions = 300;
        let cfg = with_recovery(cfg, &dir, vec![3, 6]);
        let algorithm = Algorithm::DeadlineBoundedAStar { deadline: Duration::from_millis(5) };
        let crashed = run_churn(&infra, algorithm, &cfg).unwrap();
        assert_eq!(crashed.faults.scheduler_restarts, 2);

        let clean =
            run_churn(&infra, algorithm, &ChurnConfig { recovery: None, ..cfg.clone() }).unwrap();
        assert_eq!(canonical(crashed), canonical(clean));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Leaked race grabs drift the books; the per-tick anti-entropy
    /// sweep reclaims every orphan, so after releasing the surviving
    /// tenants the cloud is exactly fresh again.
    #[test]
    fn reconcile_sweep_repairs_leaked_race_drift() {
        let infra = infra();
        let mut cfg = config(16);
        cfg.faults = Some(FaultConfig {
            host_crashes: 0,
            launch_failure_prob: 0.0,
            stale_race_prob: 1.0,
            stale_race_fraction: 0.3,
            race_leak_prob: 1.0,
            ..FaultConfig::default()
        });
        cfg.reconcile_every = 1;
        let scheduler = Scheduler::new(&infra);
        let (report, mut state, tenants) = churn_run(&infra, Algorithm::Greedy, &cfg).unwrap();
        assert!(report.faults.stale_races_leaked > 0, "every race leaks under prob 1.0");
        assert!(
            report.faults.reconcile_orphaned >= report.faults.stale_races_leaked as u64,
            "each leak surfaces as (at least) one orphaned reservation"
        );
        for tenant in &tenants {
            scheduler.release_partial(&tenant.topology, &tenant.assignment, &mut state).unwrap();
        }
        assert_eq!(state, CapacityState::new(&infra), "sweeps reclaimed every leaked grab");
    }

    /// Capacity-leak regression: after a full churn run, releasing the
    /// surviving tenants must restore the state to exactly fresh.
    #[test]
    fn clean_churn_run_leaks_no_capacity() {
        let infra = infra();
        let scheduler = Scheduler::new(&infra);
        let (_, mut state, tenants) = churn_run(&infra, Algorithm::Greedy, &config(15)).unwrap();
        for tenant in &tenants {
            scheduler.release_partial(&tenant.topology, &tenant.assignment, &mut state).unwrap();
        }
        assert_eq!(state, CapacityState::new(&infra), "all reservations must be released");
    }

    /// Same invariant under fault injection: the only difference from a
    /// fresh state must be the quarantined (crashed) hosts.
    #[test]
    fn faulty_churn_run_leaks_no_capacity() {
        let infra = infra();
        let scheduler = Scheduler::new(&infra);
        let cfg = faulty_config(25);
        let (report, mut state, tenants) = churn_run(&infra, Algorithm::Greedy, &cfg).unwrap();
        for tenant in &tenants {
            scheduler.release_partial(&tenant.topology, &tenant.assignment, &mut state).unwrap();
        }
        let mut expected = CapacityState::new(&infra);
        let plan =
            FaultPlan::generate(cfg.faults.as_ref().unwrap(), infra.host_count(), cfg.arrivals);
        for &(_, host) in plan.crashes() {
            expected.quarantine_host(host);
        }
        assert_eq!(report.faults.crashes_injected, plan.crashes().len());
        assert_eq!(state, expected, "only the crash quarantines may remain");
    }
}
