//! Multi-tenant churn simulation: a stream of application arrivals and
//! departures placed by one algorithm onto one shared data center.
//!
//! The paper evaluates single placements against *snapshots* of
//! multi-tenancy (Table IV's non-uniform availability). This module
//! closes the loop: the non-uniformity *emerges* from previous
//! placements, and the metrics that matter to an operator — acceptance
//! rate, active hosts, reserved bandwidth over time — can be compared
//! across algorithms.

use ostro_core::{Algorithm, ObjectiveWeights, Placement, PlacementRequest, Scheduler};
use ostro_datacenter::{CapacityState, Infrastructure};
use ostro_model::{ApplicationTopology, Bandwidth};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::requirements::RequirementMix;
use crate::runner::SimError;
use crate::workloads::{mesh, multi_tier, qfs_topology};

/// Configuration of a churn run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Number of arrival events to simulate.
    pub arrivals: usize,
    /// Mean number of ticks an accepted application stays deployed.
    pub mean_lifetime: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Objective weights for every placement.
    pub weights: ObjectiveWeights,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            arrivals: 50,
            mean_lifetime: 10,
            seed: 7,
            weights: ObjectiveWeights::SIMULATION,
        }
    }
}

/// Aggregate metrics of one churn run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnReport {
    /// Arrivals that were successfully placed.
    pub accepted: usize,
    /// Arrivals rejected as infeasible (or search-exhausted).
    pub rejected: usize,
    /// Mean active hosts across ticks.
    pub mean_active_hosts: f64,
    /// Peak active hosts.
    pub peak_active_hosts: usize,
    /// Mean reserved bandwidth across ticks, Mbps.
    pub mean_reserved_mbps: f64,
    /// Peak reserved bandwidth, Mbps.
    pub peak_reserved_mbps: u64,
    /// Mean solver time per accepted placement, seconds.
    pub mean_solver_secs: f64,
}

/// The acceptance-rate convenience: accepted / arrivals.
impl ChurnReport {
    /// Fraction of arrivals that were placed.
    #[must_use]
    pub fn acceptance_rate(&self) -> f64 {
        let total = self.accepted + self.rejected;
        if total == 0 {
            1.0
        } else {
            self.accepted as f64 / total as f64
        }
    }
}

struct Tenant {
    topology: ApplicationTopology,
    placement: Placement,
    expires_at: usize,
}

/// Draws a random application: small/medium multi-tier, mesh, or QFS.
fn random_application<R: Rng + ?Sized>(
    rng: &mut R,
    index: usize,
) -> Result<ApplicationTopology, SimError> {
    let mix = if rng.gen_bool(0.5) {
        RequirementMix::heterogeneous()
    } else {
        RequirementMix::homogeneous()
    };
    let topology = match rng.gen_range(0..3u8) {
        0 => multi_tier(*[25, 50, 75].get(rng.gen_range(0..3)).expect("static"), &mix, rng)?,
        1 => mesh(rng.gen_range(3..9), &mix, rng)?,
        _ => qfs_topology()?,
    };
    // Rename so successive tenants never collide in diagnostics.
    let mut builder = ostro_model::TopologyBuilder::new(format!("tenant{index}"));
    let mut ids = Vec::new();
    for node in topology.nodes() {
        let id = match *node.kind() {
            ostro_model::NodeKind::Vm { vcpus, memory_mb } => {
                builder.vm(node.name(), vcpus, memory_mb)?
            }
            ostro_model::NodeKind::Volume { size_gb } => builder.volume(node.name(), size_gb)?,
        };
        ids.push(id);
    }
    for link in topology.links() {
        let (a, b) = link.endpoints();
        builder.link(ids[a.index()], ids[b.index()], link.bandwidth())?;
    }
    for zone in topology.zones() {
        let members: Vec<_> = zone.members().iter().map(|&m| ids[m.index()]).collect();
        builder.diversity_zone(zone.name(), zone.level(), &members)?;
    }
    Ok(builder.build()?)
}

/// Runs the churn simulation with one algorithm.
///
/// Each tick, expired tenants depart (their resources are released),
/// then one new application arrives and is placed if feasible.
///
/// # Errors
///
/// Propagates only *setup* failures (workload generation); placement
/// infeasibility is counted as a rejection, not an error.
pub fn run_churn(
    infra: &Infrastructure,
    algorithm: Algorithm,
    config: &ChurnConfig,
) -> Result<ChurnReport, SimError> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut state = CapacityState::new(infra);
    let scheduler = Scheduler::new(infra);
    let mut tenants: Vec<Tenant> = Vec::new();

    let mut accepted = 0usize;
    let mut rejected = 0usize;
    let mut active_sum = 0f64;
    let mut peak_active = 0usize;
    let mut reserved_sum = 0f64;
    let mut peak_reserved = Bandwidth::ZERO;
    let mut solver_secs = 0f64;

    for tick in 0..config.arrivals {
        // Departures first.
        let mut staying = Vec::with_capacity(tenants.len());
        for tenant in tenants {
            if tenant.expires_at <= tick {
                scheduler
                    .release(&tenant.topology, &tenant.placement, &mut state)
                    .expect("accepted tenants release cleanly");
            } else {
                staying.push(tenant);
            }
        }
        tenants = staying;

        // One arrival.
        let topology = random_application(&mut rng, tick)?;
        let request = PlacementRequest {
            algorithm,
            weights: config.weights,
            seed: config.seed ^ tick as u64,
            ..PlacementRequest::default()
        };
        match scheduler.place(&topology, &state, &request) {
            Ok(outcome) => {
                scheduler
                    .commit(&topology, &outcome.placement, &mut state)
                    .expect("placement was validated against this state");
                solver_secs += outcome.elapsed.as_secs_f64();
                accepted += 1;
                let lifetime = rng.gen_range(1..=config.mean_lifetime * 2);
                tenants.push(Tenant {
                    topology,
                    placement: outcome.placement,
                    expires_at: tick + lifetime,
                });
            }
            Err(_) => rejected += 1,
        }

        let active = state.active_host_count();
        let reserved = state.total_reserved_bandwidth(infra);
        active_sum += active as f64;
        peak_active = peak_active.max(active);
        reserved_sum += reserved.as_mbps() as f64;
        peak_reserved = peak_reserved.max(reserved);
    }

    let ticks = config.arrivals.max(1) as f64;
    Ok(ChurnReport {
        accepted,
        rejected,
        mean_active_hosts: active_sum / ticks,
        peak_active_hosts: peak_active,
        mean_reserved_mbps: reserved_sum / ticks,
        peak_reserved_mbps: peak_reserved.as_mbps(),
        mean_solver_secs: if accepted > 0 { solver_secs / accepted as f64 } else { 0.0 },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::sized_datacenter;
    use std::time::Duration;

    fn infra() -> Infrastructure {
        let mut rng = SmallRng::seed_from_u64(1);
        sized_datacenter(6, 8, false, &mut rng).unwrap().0
    }

    fn config(arrivals: usize) -> ChurnConfig {
        ChurnConfig { arrivals, mean_lifetime: 5, ..ChurnConfig::default() }
    }

    #[test]
    fn churn_accepts_everything_on_a_roomy_cloud() {
        let infra = infra();
        let report = run_churn(&infra, Algorithm::Greedy, &config(12)).unwrap();
        assert_eq!(report.accepted, 12);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.acceptance_rate(), 1.0);
        assert!(report.peak_active_hosts > 0);
        assert!(report.mean_reserved_mbps >= 0.0);
        assert!(report.mean_solver_secs > 0.0);
    }

    #[test]
    fn churn_is_deterministic_per_seed() {
        let infra = infra();
        let mut a = run_churn(&infra, Algorithm::Greedy, &config(10)).unwrap();
        let mut b = run_churn(&infra, Algorithm::Greedy, &config(10)).unwrap();
        // Wall-clock solver time is the one legitimately noisy field.
        a.mean_solver_secs = 0.0;
        b.mean_solver_secs = 0.0;
        assert_eq!(a, b);
    }

    #[test]
    fn consolidating_weights_use_fewer_hosts_than_egbw() {
        let infra = infra();
        let cfg = config(20);
        let eg = run_churn(&infra, Algorithm::Greedy, &cfg).unwrap();
        let egbw = run_churn(&infra, Algorithm::GreedyBandwidth, &cfg).unwrap();
        assert!(
            eg.mean_active_hosts <= egbw.mean_active_hosts + 1e-9,
            "EG {} vs EGBW {}",
            eg.mean_active_hosts,
            egbw.mean_active_hosts
        );
    }

    #[test]
    fn tiny_cloud_rejects_but_survives() {
        let mut rng = SmallRng::seed_from_u64(1);
        // 1 rack x 4 hosts: QFS (12-way diversity) can never fit.
        let (infra, _) = sized_datacenter(1, 4, false, &mut rng).unwrap();
        let report = run_churn(&infra, Algorithm::Greedy, &config(15)).unwrap();
        assert!(report.rejected > 0);
        assert!(report.acceptance_rate() < 1.0);
    }

    #[test]
    fn works_with_deadline_bounded_search() {
        let infra = infra();
        let report = run_churn(
            &infra,
            Algorithm::DeadlineBoundedAStar { deadline: Duration::from_millis(100) },
            &config(6),
        )
        .unwrap();
        assert_eq!(report.accepted + report.rejected, 6);
    }
}
