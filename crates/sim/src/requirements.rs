//! VM resource-requirement mixes (§IV-C, Table III).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// One class of VM in a requirement mix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequirementClass {
    /// Fraction of VMs drawn from this class (classes must sum to 1).
    pub fraction: f64,
    /// Virtual CPUs per VM.
    pub vcpus: u32,
    /// Memory per VM, in MiB.
    pub memory_mb: u64,
    /// Total incident bandwidth demand per VM, in Mbps (spread across
    /// the VM's links by the workload generator).
    pub bandwidth_mbps: u64,
}

/// A distribution of VM requirement classes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequirementMix {
    classes: Vec<RequirementClass>,
}

/// Stand-in when a (deserialized) mix is somehow empty: the paper's
/// homogeneous VM, so generation degrades gracefully instead of
/// panicking. Constructed mixes always have at least one class.
const FALLBACK_CLASS: RequirementClass =
    RequirementClass { fraction: 1.0, vcpus: 2, memory_mb: 2_048, bandwidth_mbps: 50 };

impl RequirementMix {
    /// Table III: 40% network-intensive small VMs (1 vCPU / 1 GB /
    /// 100 Mbps), 20% balanced (2 / 2 GB / 50), 40% compute-intensive
    /// (4 / 4 GB / 10).
    #[must_use]
    pub fn heterogeneous() -> Self {
        RequirementMix {
            classes: vec![
                RequirementClass { fraction: 0.4, vcpus: 1, memory_mb: 1_024, bandwidth_mbps: 100 },
                RequirementClass { fraction: 0.2, vcpus: 2, memory_mb: 2_048, bandwidth_mbps: 50 },
                RequirementClass { fraction: 0.4, vcpus: 4, memory_mb: 4_096, bandwidth_mbps: 10 },
            ],
        }
    }

    /// The paper's homogeneous control: every VM is 2 vCPUs / 2 GB /
    /// 50 Mbps.
    #[must_use]
    pub fn homogeneous() -> Self {
        RequirementMix {
            classes: vec![RequirementClass {
                fraction: 1.0,
                vcpus: 2,
                memory_mb: 2_048,
                bandwidth_mbps: 50,
            }],
        }
    }

    /// A custom mix.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty or fractions do not sum to 1 (±1e-6).
    #[must_use]
    pub fn custom(classes: Vec<RequirementClass>) -> Self {
        assert!(!classes.is_empty(), "a mix needs at least one class");
        let total: f64 = classes.iter().map(|c| c.fraction).sum();
        assert!((total - 1.0).abs() < 1e-6, "fractions must sum to 1, got {total}");
        RequirementMix { classes }
    }

    /// The classes of this mix.
    #[must_use]
    pub fn classes(&self) -> &[RequirementClass] {
        &self.classes
    }

    /// Samples one class for a VM.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> RequirementClass {
        let mut roll: f64 = rng.gen_range(0.0..1.0);
        for class in &self.classes {
            if roll < class.fraction {
                return *class;
            }
            roll -= class.fraction;
        }
        self.classes.last().copied().unwrap_or(FALLBACK_CLASS)
    }

    /// Deterministically assigns classes to `n` VMs in the exact mix
    /// proportions (shuffled by `rng` so classes interleave), which
    /// keeps the 40/20/40 split exact rather than merely expected.
    pub fn assign<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<RequirementClass> {
        let mut out = Vec::with_capacity(n);
        for (i, class) in self.classes.iter().enumerate() {
            let sofar: f64 = self.classes[..=i].iter().map(|c| c.fraction).sum();
            let upto = (sofar * n as f64).round() as usize;
            while out.len() < upto.min(n) {
                out.push(*class);
            }
        }
        while out.len() < n {
            out.push(self.classes.last().copied().unwrap_or(FALLBACK_CLASS));
        }
        // Fisher–Yates shuffle for interleaving.
        for i in (1..out.len()).rev() {
            let j = rng.gen_range(0..=i);
            out.swap(i, j);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn table_iii_mix_matches_paper() {
        let mix = RequirementMix::heterogeneous();
        assert_eq!(mix.classes().len(), 3);
        assert_eq!(mix.classes()[0].bandwidth_mbps, 100);
        assert_eq!(mix.classes()[2].vcpus, 4);
        let total: f64 = mix.classes().iter().map(|c| c.fraction).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn assign_hits_exact_proportions() {
        let mix = RequirementMix::heterogeneous();
        let mut rng = SmallRng::seed_from_u64(7);
        let classes = mix.assign(100, &mut rng);
        assert_eq!(classes.len(), 100);
        let small = classes.iter().filter(|c| c.vcpus == 1).count();
        let medium = classes.iter().filter(|c| c.vcpus == 2).count();
        let large = classes.iter().filter(|c| c.vcpus == 4).count();
        assert_eq!((small, medium, large), (40, 20, 40));
    }

    #[test]
    fn homogeneous_assign_is_uniform() {
        let mix = RequirementMix::homogeneous();
        let mut rng = SmallRng::seed_from_u64(7);
        let classes = mix.assign(30, &mut rng);
        assert!(classes.iter().all(|c| c.vcpus == 2 && c.bandwidth_mbps == 50));
    }

    #[test]
    fn sample_respects_distribution_roughly() {
        let mix = RequirementMix::heterogeneous();
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 10_000;
        let small = (0..n).filter(|_| mix.sample(&mut rng).vcpus == 1).count();
        let frac = small as f64 / n as f64;
        assert!((frac - 0.4).abs() < 0.05, "got {frac}");
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn custom_mix_validates_fractions() {
        let _ = RequirementMix::custom(vec![RequirementClass {
            fraction: 0.5,
            vcpus: 1,
            memory_mb: 1,
            bandwidth_mbps: 1,
        }]);
    }

    #[test]
    fn assign_small_n() {
        let mix = RequirementMix::heterogeneous();
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(mix.assign(1, &mut rng).len(), 1);
        assert_eq!(mix.assign(0, &mut rng).len(), 0);
    }
}
