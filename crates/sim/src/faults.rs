//! Deterministic, seeded fault injection for churn simulations.
//!
//! A [`FaultPlan`] is generated once per run from a [`FaultConfig`] and
//! pre-computes every fault the run will see:
//!
//! * **Host crashes** are scheduled up front — `(tick, host)` pairs
//!   drawn from a seeded RNG — so two runs with the same seed kill the
//!   same hosts at the same ticks.
//! * **Transient launch failures** are drawn from a stateless
//!   splitmix64 hash of `(seed, tick, node, host, attempt)`: the
//!   verdict depends only on the coordinates of the attempt, never on
//!   how many other random draws happened first, which keeps the plan
//!   bit-deterministic even when deployment order changes.
//! * **Stale-capacity races** — a concurrent actor grabbing capacity
//!   between *decide* and *commit* — are likewise hash-drawn per tick,
//!   naming the host whose free capacity shrinks under the deployment.
//!
//! [`PlanProbe`] adapts a plan to the executor's
//! [`FaultProbe`](ostro_core::FaultProbe) interface for one tick.
//!
//! [`ChaosPlan`] extends the same stateless-draw idiom to the
//! *service* layer: seeded planner panics, planning latency spikes,
//! and WAL I/O faults, packaged as the hooks
//! ([`PlanHook`](ostro_core::PlanHook) /
//! [`WalFaultHook`](ostro_core::WalFaultHook)) the placement service
//! and the session accept.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ostro_core::{FaultProbe, LaunchVerdict, PlanHook, WalFault, WalFaultHook, WalIoOp};
use ostro_datacenter::HostId;
use ostro_model::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Knobs of a seeded fault-injection plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed for every fault stream (independent of the workload seed).
    pub seed: u64,
    /// Host crashes to schedule across the run (distinct hosts).
    pub host_crashes: usize,
    /// Probability that one launch attempt fails transiently.
    pub launch_failure_prob: f64,
    /// Per-tick probability that a stale-capacity race hits the
    /// arrival's deployment.
    pub stale_race_prob: f64,
    /// Fraction of the raced host's free capacity the concurrent actor
    /// grabs (clamped to `0.0..=1.0`).
    pub stale_race_fraction: f64,
    /// Probability that a stale race *leaks*: the concurrent actor dies
    /// holding its grab, so nothing ever releases it and the session's
    /// books drift until an anti-entropy sweep reclaims the orphan.
    #[serde(default)]
    pub race_leak_prob: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0xF_A0_17,
            host_crashes: 2,
            launch_failure_prob: 0.05,
            stale_race_prob: 0.1,
            stale_race_fraction: 0.5,
            race_leak_prob: 0.0,
        }
    }
}

/// A fully materialized fault schedule for one churn run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    config: FaultConfig,
    /// Crash schedule, sorted by tick: `(tick, host)`.
    crashes: Vec<(usize, HostId)>,
}

impl FaultPlan {
    /// Generates the plan for a run of `horizon` ticks over
    /// `host_count` hosts. Crash ticks and victims are drawn from a
    /// seeded RNG; each host crashes at most once, and at most
    /// `horizon` crashes are scheduled.
    #[must_use]
    pub fn generate(config: &FaultConfig, host_count: usize, horizon: usize) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed ^ 0xC4A5_4E5C_4ED0_1E5A);
        let wanted = config.host_crashes.min(host_count.saturating_sub(1)).min(horizon);
        let mut victims: Vec<HostId> = Vec::with_capacity(wanted);
        let mut crashes: Vec<(usize, HostId)> = Vec::with_capacity(wanted);
        while crashes.len() < wanted {
            let host = HostId::from_index(rng.gen_range(0..host_count as u32));
            if victims.contains(&host) {
                continue;
            }
            victims.push(host);
            // Crash somewhere in the middle of the run so there are
            // tenants to evacuate and ticks left to observe recovery.
            let tick = rng.gen_range(1..horizon.max(2));
            crashes.push((tick, host));
        }
        crashes.sort_unstable_by_key(|&(tick, host)| (tick, host.index()));
        FaultPlan { config: config.clone(), crashes }
    }

    /// The configuration this plan was generated from.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// The full crash schedule, sorted by tick.
    #[must_use]
    pub fn crashes(&self) -> &[(usize, HostId)] {
        &self.crashes
    }

    /// Hosts scheduled to crash at `tick`, in deterministic order.
    pub fn crashes_at(&self, tick: usize) -> impl Iterator<Item = HostId> + '_ {
        self.crashes.iter().filter(move |&&(t, _)| t == tick).map(|&(_, h)| h)
    }

    /// Whether launch attempt number `attempt` of `node` onto `host` at
    /// `tick` fails transiently. Stateless: the verdict is a pure
    /// function of the plan seed and the attempt coordinates.
    #[must_use]
    pub fn launch_fails(&self, tick: usize, node: NodeId, host: HostId, attempt: u32) -> bool {
        let draw = hash_unit(&[
            self.config.seed,
            0x1A_0C_11,
            tick as u64,
            node.index() as u64,
            host.index() as u64,
            u64::from(attempt),
        ]);
        draw < self.config.launch_failure_prob
    }

    /// The host hit by a stale-capacity race at `tick`, if any.
    #[must_use]
    pub fn stale_race(&self, tick: usize, host_count: usize) -> Option<HostId> {
        if host_count == 0 {
            return None;
        }
        let draw = hash_unit(&[self.config.seed, 0x57A1E, tick as u64]);
        if draw >= self.config.stale_race_prob {
            return None;
        }
        let pick = hash(&[self.config.seed, 0x57A1E + 1, tick as u64]);
        Some(HostId::from_index((pick % host_count as u64) as u32))
    }

    /// The clamped fraction of free capacity a race grabs.
    #[must_use]
    pub fn stale_race_fraction(&self) -> f64 {
        self.config.stale_race_fraction.clamp(0.0, 1.0)
    }

    /// Whether the stale race at `tick` leaks its grab (the actor dies
    /// before releasing). Hash-drawn like the race itself, so the
    /// verdict is a pure function of the plan seed and the tick.
    #[must_use]
    pub fn race_leaks(&self, tick: usize) -> bool {
        let draw = hash_unit(&[self.config.seed, 0x1EA4_0CB5, tick as u64]);
        draw < self.config.race_leak_prob
    }
}

/// One tick's view of a [`FaultPlan`] as the deployment executor's
/// fault probe.
#[derive(Debug, Clone, Copy)]
pub struct PlanProbe<'a> {
    plan: &'a FaultPlan,
    tick: usize,
}

impl<'a> PlanProbe<'a> {
    /// A probe injecting the plan's launch failures for `tick`.
    #[must_use]
    pub fn new(plan: &'a FaultPlan, tick: usize) -> Self {
        PlanProbe { plan, tick }
    }
}

impl FaultProbe for PlanProbe<'_> {
    fn launch(&mut self, node: NodeId, host: HostId, attempt: u32) -> LaunchVerdict {
        if self.plan.launch_fails(self.tick, node, host, attempt) {
            LaunchVerdict::TransientFailure
        } else {
            LaunchVerdict::Launched
        }
    }
}

/// Knobs of a seeded service-layer chaos plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Seed for every chaos stream (independent of workload and churn
    /// fault seeds).
    pub seed: u64,
    /// Probability that one planning invocation panics.
    pub panic_prob: f64,
    /// Probability that one planning invocation stalls for
    /// [`latency_ms`](Self::latency_ms).
    pub latency_prob: f64,
    /// Length of an injected planning stall, in milliseconds.
    pub latency_ms: u64,
    /// Probability that one WAL I/O operation draws a fault.
    pub wal_fault_prob: f64,
    /// Of drawn WAL faults, the fraction that are torn writes; the
    /// rest surface as I/O errors (disk-full).
    pub torn_fraction: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xC4A0_5EED,
            panic_prob: 0.02,
            latency_prob: 0.05,
            latency_ms: 2,
            wal_fault_prob: 0.01,
            torn_fraction: 0.25,
        }
    }
}

/// A seeded chaos schedule for one service run. Every verdict is a
/// stateless hash of the seed and the event's coordinates — the
/// planning-invocation ordinal, or the WAL `(operation, sequence)`
/// pair — so the same seed draws the same faults regardless of how
/// calls interleave.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosPlan {
    config: ChaosConfig,
}

impl ChaosPlan {
    /// Materializes the plan (pure configuration; the draws are lazy).
    #[must_use]
    pub fn new(config: ChaosConfig) -> Self {
        ChaosPlan { config }
    }

    /// The configuration this plan draws from.
    #[must_use]
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// Whether planning invocation number `invocation` panics.
    #[must_use]
    pub fn planner_panics(&self, invocation: u64) -> bool {
        hash_unit(&[self.config.seed, 0x9A01C, invocation]) < self.config.panic_prob
    }

    /// The stall injected into planning invocation `invocation`, in
    /// milliseconds (0 = none).
    #[must_use]
    pub fn latency_spike_ms(&self, invocation: u64) -> u64 {
        if hash_unit(&[self.config.seed, 0x01A7_E4C1, invocation]) < self.config.latency_prob {
            self.config.latency_ms
        } else {
            0
        }
    }

    /// The fault (if any) drawn for WAL operation `op` at journal
    /// sequence `seq`.
    #[must_use]
    pub fn wal_fault(&self, op: WalIoOp, seq: u64) -> Option<WalFault> {
        let op_tag = match op {
            WalIoOp::Append => 1u64,
            WalIoOp::Sync => 2,
            _ => 3,
        };
        if hash_unit(&[self.config.seed, 0x3A11_F417, op_tag, seq]) >= self.config.wal_fault_prob {
            return None;
        }
        // Torn writes only make sense for appends; everything else
        // surfaces as the I/O error.
        if op == WalIoOp::Append
            && hash_unit(&[self.config.seed, 0x7042, op_tag, seq]) < self.config.torn_fraction
        {
            Some(WalFault::Torn)
        } else {
            Some(WalFault::Error(std::io::ErrorKind::StorageFull))
        }
    }

    /// The plan as a service plan hook: each planning invocation takes
    /// the next ordinal from a shared counter, sleeps through its
    /// latency spike, then panics if the draw says so. Deterministic
    /// when the service runs one planner (invocation order is queue
    /// order); with more planners the ordinals depend on thread
    /// interleaving.
    #[must_use]
    pub fn plan_hook(&self) -> PlanHook {
        let plan = self.clone();
        let invocations = Arc::new(AtomicU64::new(0));
        PlanHook::new(move |_topology| {
            let i = invocations.fetch_add(1, Ordering::Relaxed);
            let stall = plan.latency_spike_ms(i);
            if stall > 0 {
                std::thread::sleep(Duration::from_millis(stall));
            }
            if plan.planner_panics(i) {
                panic!("chaos: injected planner panic at invocation {i}");
            }
        })
    }

    /// The plan as a WAL fault hook. Draws on the hook's own
    /// consultation ordinal rather than the journal sequence the
    /// operation reports: a rejected batch rewinds the journal and
    /// *reuses* its sequence numbers, and drawing on those would
    /// re-inject the identical fault forever — a permanent wedge
    /// instead of a transient one. The ordinal always advances, so the
    /// disk "heals" the way a real flaky disk does, while staying a
    /// pure function of the consultation history (deterministic for a
    /// serialized single-planner run).
    #[must_use]
    pub fn wal_hook(&self) -> WalFaultHook {
        let plan = self.clone();
        let consults = Arc::new(AtomicU64::new(0));
        WalFaultHook::new(move |op, _seq| {
            plan.wal_fault(op, consults.fetch_add(1, Ordering::Relaxed))
        })
    }
}

/// splitmix64 finalizer — the same mixer the vendored rand facade uses
/// for seeding, applied here as a stateless hash.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Order-sensitive hash of a word sequence.
fn hash(parts: &[u64]) -> u64 {
    let mut h = 0x0DD0_5EED_F417_5EEDu64;
    for &p in parts {
        h = mix(h ^ p);
    }
    h
}

/// A hash mapped to the unit interval `[0, 1)` with 53-bit precision.
fn hash_unit(parts: &[u64]) -> f64 {
    (hash(parts) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(crashes: usize) -> FaultPlan {
        let config = FaultConfig { host_crashes: crashes, ..FaultConfig::default() };
        FaultPlan::generate(&config, 48, 30)
    }

    #[test]
    fn same_seed_same_plan() {
        assert_eq!(plan(5), plan(5));
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::generate(&FaultConfig::default(), 48, 30);
        let b = FaultPlan::generate(&FaultConfig { seed: 99, ..FaultConfig::default() }, 48, 30);
        assert_ne!(a, b);
    }

    #[test]
    fn crash_schedule_is_distinct_and_in_range() {
        let p = plan(10);
        assert_eq!(p.crashes().len(), 10);
        let mut hosts: Vec<_> = p.crashes().iter().map(|&(_, h)| h).collect();
        hosts.sort_unstable_by_key(|h| h.index());
        hosts.dedup();
        assert_eq!(hosts.len(), 10, "each host crashes at most once");
        assert!(p.crashes().iter().all(|&(t, h)| t < 30 && h.index() < 48));
        let at: Vec<_> = p.crashes_at(p.crashes()[0].0).collect();
        assert!(at.contains(&p.crashes()[0].1));
    }

    #[test]
    fn crash_count_is_clamped_to_the_fleet() {
        let config = FaultConfig { host_crashes: 100, ..FaultConfig::default() };
        let p = FaultPlan::generate(&config, 4, 30);
        assert_eq!(p.crashes().len(), 3, "always leaves at least one host alive");
    }

    #[test]
    fn launch_failures_are_order_independent() {
        let p = plan(0);
        let node = NodeId::from_index(3);
        let host = HostId::from_index(7);
        let first = p.launch_fails(5, node, host, 0);
        // Interleave unrelated draws; the original coordinates still
        // produce the same verdict.
        let _ = p.launch_fails(6, node, host, 0);
        let _ = p.launch_fails(5, NodeId::from_index(4), host, 2);
        assert_eq!(p.launch_fails(5, node, host, 0), first);
    }

    #[test]
    fn launch_failure_rate_tracks_probability() {
        let config = FaultConfig { launch_failure_prob: 0.2, ..FaultConfig::default() };
        let p = FaultPlan::generate(&config, 48, 30);
        let mut fails = 0u32;
        let trials = 10_000;
        for i in 0..trials {
            if p.launch_fails(i as usize, NodeId::from_index(0), HostId::from_index(0), 0) {
                fails += 1;
            }
        }
        let rate = f64::from(fails) / f64::from(trials);
        assert!((rate - 0.2).abs() < 0.02, "empirical rate {rate} too far from 0.2");
    }

    #[test]
    fn zero_probability_never_fails_and_probe_agrees() {
        let config = FaultConfig {
            launch_failure_prob: 0.0,
            stale_race_prob: 0.0,
            ..FaultConfig::default()
        };
        let p = FaultPlan::generate(&config, 48, 30);
        let mut probe = PlanProbe::new(&p, 3);
        for attempt in 0..50 {
            assert_eq!(
                probe.launch(NodeId::from_index(1), HostId::from_index(2), attempt),
                LaunchVerdict::Launched
            );
        }
        assert_eq!(p.stale_race(3, 48), None);
    }

    #[test]
    fn race_leaks_are_deterministic_and_gated_on_probability() {
        let never = FaultPlan::generate(&FaultConfig::default(), 48, 30);
        assert!((0..30).all(|t| !never.race_leaks(t)), "default never leaks");
        let config = FaultConfig { race_leak_prob: 1.0, ..FaultConfig::default() };
        let always = FaultPlan::generate(&config, 48, 30);
        assert!((0..30).all(|t| always.race_leaks(t)));
        let config = FaultConfig { race_leak_prob: 0.5, ..FaultConfig::default() };
        let p = FaultPlan::generate(&config, 48, 30);
        for tick in 0..30 {
            assert_eq!(p.race_leaks(tick), p.race_leaks(tick));
        }
    }

    #[test]
    fn chaos_draws_are_deterministic_and_gated() {
        let plan = ChaosPlan::new(ChaosConfig::default());
        for i in 0..200 {
            assert_eq!(plan.planner_panics(i), plan.planner_panics(i));
            assert_eq!(plan.latency_spike_ms(i), plan.latency_spike_ms(i));
            assert_eq!(
                plan.wal_fault(WalIoOp::Sync, i),
                plan.wal_fault(WalIoOp::Sync, i),
                "WAL draws must be pure functions of (op, seq)"
            );
        }

        let quiet = ChaosPlan::new(ChaosConfig {
            panic_prob: 0.0,
            latency_prob: 0.0,
            wal_fault_prob: 0.0,
            ..ChaosConfig::default()
        });
        for i in 0..200 {
            assert!(!quiet.planner_panics(i));
            assert_eq!(quiet.latency_spike_ms(i), 0);
            assert_eq!(quiet.wal_fault(WalIoOp::Append, i), None);
        }

        let loud = ChaosPlan::new(ChaosConfig {
            panic_prob: 1.0,
            latency_prob: 1.0,
            latency_ms: 7,
            wal_fault_prob: 1.0,
            torn_fraction: 1.0,
            ..ChaosConfig::default()
        });
        assert!(loud.planner_panics(0));
        assert_eq!(loud.latency_spike_ms(0), 7);
        assert_eq!(
            loud.wal_fault(WalIoOp::Append, 3),
            Some(WalFault::Torn),
            "torn fraction 1.0 makes every append fault a torn write"
        );
        assert!(
            matches!(loud.wal_fault(WalIoOp::Sync, 3), Some(WalFault::Error(_))),
            "torn writes never hit syncs"
        );
    }

    #[test]
    fn stale_races_are_deterministic_and_in_range() {
        let config = FaultConfig { stale_race_prob: 1.0, ..FaultConfig::default() };
        let p = FaultPlan::generate(&config, 48, 30);
        for tick in 0..30 {
            let a = p.stale_race(tick, 48);
            let b = p.stale_race(tick, 48);
            assert_eq!(a, b);
            let host = a.expect("probability 1 always races");
            assert!(host.index() < 48);
        }
        assert_eq!(p.stale_race(0, 0), None);
    }
}
