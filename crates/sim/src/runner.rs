//! Experiment runner: executes algorithm comparisons and aggregates
//! results into the rows the paper's tables and figures report.

use std::error::Error;
use std::fmt;
use std::time::Duration;

use ostro_core::{
    Algorithm, ObjectiveWeights, PlacementError, PlacementOutcome, PlacementRequest, Scheduler,
    WalError,
};
use ostro_datacenter::{BuildError, CapacityState, Infrastructure};
use ostro_model::{ApplicationTopology, ModelError};

/// Errors from scenario setup or placement during an experiment.
#[derive(Debug)]
#[non_exhaustive]
pub enum SimError {
    /// Infrastructure construction failed.
    Build(BuildError),
    /// Workload generation failed.
    Model(ModelError),
    /// Placement failed.
    Placement(PlacementError),
    /// Releasing a tenant's reservations failed — a capacity-accounting
    /// invariant violation surfaced as a typed error instead of a panic.
    Release {
        /// The tenant whose release failed.
        tenant: String,
        /// The underlying capacity failure.
        source: PlacementError,
    },
    /// Journaling or crash recovery failed.
    Wal(WalError),
    /// A crash-restart drill reconstructed different books than the
    /// live scheduler held at the kill point — the write-ahead-journal
    /// contract is broken.
    RecoveryDiverged {
        /// The tick whose restart diverged.
        tick: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Build(e) => write!(f, "scenario build failed: {e}"),
            Self::Model(e) => write!(f, "workload generation failed: {e}"),
            Self::Placement(e) => write!(f, "placement failed: {e}"),
            Self::Release { tenant, source } => {
                write!(f, "release of tenant `{tenant}` failed: {source}")
            }
            Self::Wal(e) => write!(f, "scheduler journal failed: {e}"),
            Self::RecoveryDiverged { tick } => {
                write!(f, "crash recovery at tick {tick} diverged from the live books")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Build(e) => Some(e),
            Self::Model(e) => Some(e),
            Self::Placement(e) => Some(e),
            Self::Release { source, .. } => Some(source),
            Self::Wal(e) => Some(e),
            Self::RecoveryDiverged { .. } => None,
        }
    }
}

impl From<BuildError> for SimError {
    fn from(e: BuildError) -> Self {
        SimError::Build(e)
    }
}
impl From<ModelError> for SimError {
    fn from(e: ModelError) -> Self {
        SimError::Model(e)
    }
}
impl From<PlacementError> for SimError {
    fn from(e: PlacementError) -> Self {
        SimError::Placement(e)
    }
}
impl From<WalError> for SimError {
    fn from(e: WalError) -> Self {
        SimError::Wal(e)
    }
}

/// One algorithm's result on one scenario instance.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// Which algorithm ran.
    pub algorithm: Algorithm,
    /// The full placement outcome.
    pub outcome: PlacementOutcome,
    /// Hosts active in the whole data center after this placement
    /// (pre-existing active hosts + newly activated) — the quantity of
    /// the paper's Figures 8 and 11.
    pub total_active_hosts: usize,
}

/// Runs one algorithm on one (topology, state) instance.
///
/// # Errors
///
/// Propagates any [`PlacementError`].
pub fn run_trial(
    infra: &Infrastructure,
    state: &CapacityState,
    topology: &ApplicationTopology,
    algorithm: Algorithm,
    weights: ObjectiveWeights,
    seed: u64,
) -> Result<TrialResult, SimError> {
    let scheduler = Scheduler::new(infra);
    let request = PlacementRequest { algorithm, weights, seed, ..PlacementRequest::default() };
    let outcome = scheduler.place(topology, state, &request)?;
    Ok(TrialResult {
        algorithm,
        total_active_hosts: state.active_host_count() + outcome.new_active_hosts,
        outcome,
    })
}

/// Runs every algorithm of `algorithms` on the same instance.
///
/// # Errors
///
/// Propagates the first failing algorithm's error.
pub fn run_comparison(
    infra: &Infrastructure,
    state: &CapacityState,
    topology: &ApplicationTopology,
    algorithms: &[Algorithm],
    weights: ObjectiveWeights,
    seed: u64,
) -> Result<Vec<TrialResult>, SimError> {
    algorithms.iter().map(|&a| run_trial(infra, state, topology, a, weights, seed)).collect()
}

/// Aggregated (averaged) results for one algorithm across repetitions —
/// one row of a paper table, or one point of a paper figure.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// The algorithm's paper abbreviation.
    pub label: String,
    /// Mean reserved bandwidth, Mbps.
    pub bandwidth_mbps: f64,
    /// Mean newly activated hosts.
    pub new_hosts: f64,
    /// Mean total active hosts in the data center after placement.
    pub total_hosts: f64,
    /// Mean solver wall-clock time.
    pub runtime: Duration,
    /// Mean normalized objective.
    pub objective: f64,
    /// Number of repetitions aggregated.
    pub runs: usize,
}

/// Averages repetitions of the same algorithm into one row.
///
/// # Panics
///
/// Panics if `results` is empty or mixes algorithms.
#[must_use]
pub fn aggregate(results: &[TrialResult]) -> ComparisonRow {
    assert!(!results.is_empty(), "cannot aggregate zero results");
    let label = results[0].algorithm.abbreviation().to_owned();
    assert!(
        results.iter().all(|r| r.algorithm.abbreviation() == label),
        "aggregate() expects a single algorithm"
    );
    let n = results.len() as f64;
    ComparisonRow {
        label,
        bandwidth_mbps: results
            .iter()
            .map(|r| r.outcome.reserved_bandwidth.as_mbps() as f64)
            .sum::<f64>()
            / n,
        new_hosts: results.iter().map(|r| r.outcome.new_active_hosts as f64).sum::<f64>() / n,
        total_hosts: results.iter().map(|r| r.total_active_hosts as f64).sum::<f64>() / n,
        runtime: Duration::from_secs_f64(
            results.iter().map(|r| r.outcome.elapsed.as_secs_f64()).sum::<f64>() / n,
        ),
        objective: results.iter().map(|r| r.outcome.objective).sum::<f64>() / n,
        runs: results.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::qfs_testbed;
    use crate::workloads::qfs_topology;

    #[test]
    fn trial_and_comparison_run_end_to_end() {
        let (infra, state) = qfs_testbed(false).unwrap();
        let topo = qfs_topology().unwrap();
        let algorithms = [Algorithm::GreedyCompute, Algorithm::GreedyBandwidth];
        let results = run_comparison(
            &infra,
            &state,
            &topo,
            &algorithms,
            ObjectiveWeights::BANDWIDTH_DOMINANT,
            1,
        )
        .unwrap();
        assert_eq!(results.len(), 2);
        for r in &results {
            assert_eq!(r.outcome.placement.assignments().len(), topo.node_count());
            assert_eq!(r.total_active_hosts, r.outcome.new_active_hosts);
        }
    }

    #[test]
    fn aggregate_averages_fields() {
        let (infra, state) = qfs_testbed(false).unwrap();
        let topo = qfs_topology().unwrap();
        let r1 = run_trial(
            &infra,
            &state,
            &topo,
            Algorithm::Greedy,
            ObjectiveWeights::BANDWIDTH_DOMINANT,
            1,
        )
        .unwrap();
        let row = aggregate(&[r1.clone(), r1.clone()]);
        assert_eq!(row.label, "EG");
        assert_eq!(row.runs, 2);
        assert_eq!(row.bandwidth_mbps, r1.outcome.reserved_bandwidth.as_mbps() as f64);
        assert_eq!(row.new_hosts, r1.outcome.new_active_hosts as f64);
    }

    #[test]
    #[should_panic(expected = "single algorithm")]
    fn aggregate_rejects_mixed_algorithms() {
        let (infra, state) = qfs_testbed(false).unwrap();
        let topo = qfs_topology().unwrap();
        let a = run_trial(
            &infra,
            &state,
            &topo,
            Algorithm::Greedy,
            ObjectiveWeights::BANDWIDTH_DOMINANT,
            1,
        )
        .unwrap();
        let mut b = a.clone();
        b.algorithm = Algorithm::GreedyCompute;
        let _ = aggregate(&[a, b]);
    }

    #[test]
    fn errors_convert_and_display() {
        let e: SimError = ModelError::EmptyTopology.into();
        assert!(e.to_string().contains("workload generation"));
        assert!(e.source().is_some());
        let e: SimError = PlacementError::Exhausted.into();
        assert!(e.to_string().contains("placement failed"));
        let e = SimError::Release { tenant: "tenant3".into(), source: PlacementError::Exhausted };
        assert!(e.to_string().contains("tenant3"));
        assert!(e.source().is_some());
        let e = SimError::RecoveryDiverged { tick: 4 };
        assert!(e.to_string().contains("tick 4"));
        assert!(e.source().is_none());
    }
}
