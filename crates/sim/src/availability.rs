//! Data-center availability profiles (§IV-C, Table IV).
//!
//! The paper configures each rack so that 25% of its hosts fall into
//! each of four buckets ranging from heavily loaded to idle; the
//! uniform control leaves everything idle.

use ostro_datacenter::{CapacityState, Infrastructure, LinkRef};
use ostro_model::{Bandwidth, Resources};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One availability bucket: the inclusive ranges of *remaining*
/// resources a host in this bucket is left with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AvailabilityBucket {
    /// Remaining CPU cores, inclusive range.
    pub cores: (u32, u32),
    /// Remaining memory in MiB, inclusive range.
    pub memory_mb: (u64, u64),
    /// Remaining NIC bandwidth in Mbps, inclusive range.
    pub bandwidth_mbps: (u64, u64),
}

/// A per-rack availability profile: buckets are assigned to equal
/// shares of each rack's hosts, in order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AvailabilityProfile {
    buckets: Vec<AvailabilityBucket>,
}

impl AvailabilityProfile {
    /// Table IV: per rack, 25% of hosts in each bucket —
    /// 9–16 cores / 17–30 GB / 0–1.5 Gbps remaining,
    /// 6–8 / 8–16 GB / 2–5 Gbps,
    /// 0–5 / 0–7 GB / 6–8 Gbps,
    /// and fully idle (16 / 32 GB / 10 Gbps).
    #[must_use]
    pub fn table_iv() -> Self {
        AvailabilityProfile {
            buckets: vec![
                // The paper says "0–1.5 Gbps"; the floor here is 100
                // Mbps because a host with literally zero spare NIC
                // bandwidth dead-ends every one-shot greedy baseline
                // (any VM placed there is unreachable for later
                // neighbors), which would abort the comparison runs.
                AvailabilityBucket {
                    cores: (9, 16),
                    memory_mb: (17 * 1024, 30 * 1024),
                    bandwidth_mbps: (100, 1_500),
                },
                AvailabilityBucket {
                    cores: (6, 8),
                    memory_mb: (8 * 1024, 16 * 1024),
                    bandwidth_mbps: (2_000, 5_000),
                },
                AvailabilityBucket {
                    cores: (0, 5),
                    memory_mb: (0, 7 * 1024),
                    bandwidth_mbps: (6_000, 8_000),
                },
                AvailabilityBucket {
                    cores: (16, 16),
                    memory_mb: (32 * 1024, 32 * 1024),
                    bandwidth_mbps: (10_000, 10_000),
                },
            ],
        }
    }

    /// A custom profile.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is empty.
    #[must_use]
    pub fn custom(buckets: Vec<AvailabilityBucket>) -> Self {
        assert!(!buckets.is_empty(), "a profile needs at least one bucket");
        AvailabilityProfile { buckets }
    }

    /// The buckets of this profile.
    #[must_use]
    pub fn buckets(&self) -> &[AvailabilityBucket] {
        &self.buckets
    }

    /// Builds a [`CapacityState`] in which each rack's hosts are split
    /// evenly across the buckets (in host order) with availability
    /// sampled uniformly inside each bucket's ranges.
    ///
    /// Hosts left with less than full capacity are marked active
    /// (something is already running on them); disk is left untouched
    /// (Table IV does not constrain it).
    pub fn apply<R: Rng + ?Sized>(&self, infra: &Infrastructure, rng: &mut R) -> CapacityState {
        let mut state = CapacityState::new(infra);
        let k = self.buckets.len();
        for rack in infra.racks() {
            let per_bucket = rack.hosts().len().div_ceil(k);
            for (i, &host_id) in rack.hosts().iter().enumerate() {
                let bucket = &self.buckets[(i / per_bucket.max(1)).min(k - 1)];
                let host = infra.host(host_id);
                let cap = host.capacity();
                let avail_cores = sample(rng, bucket.cores.0, bucket.cores.1).min(cap.vcpus);
                let avail_mem =
                    sample(rng, bucket.memory_mb.0, bucket.memory_mb.1).min(cap.memory_mb);
                let avail_bw = Bandwidth::from_mbps(
                    sample(rng, bucket.bandwidth_mbps.0, bucket.bandwidth_mbps.1)
                        .min(host.nic().as_mbps()),
                );
                // Cannot fail: the samples are clamped to capacity
                // above. Checked in debug builds only — a fresh state
                // with clamped preloads has no runtime failure path.
                let used = Resources::new(cap.vcpus - avail_cores, cap.memory_mb - avail_mem, 0);
                if !used.is_zero() {
                    let reserved = state.reserve_node(host_id, used);
                    debug_assert!(reserved.is_ok(), "preload within capacity by construction");
                }
                let used_bw = host.nic() - avail_bw;
                if !used_bw.is_zero() {
                    let preloaded = state.preload_link(LinkRef::HostNic(host_id), used_bw);
                    debug_assert!(preloaded.is_ok(), "preload within NIC capacity by construction");
                }
            }
        }
        state
    }
}

fn sample<R: Rng + ?Sized, T: Copy + PartialOrd + rand::distributions::uniform::SampleUniform>(
    rng: &mut R,
    lo: T,
    hi: T,
) -> T {
    if lo >= hi {
        lo
    } else {
        rng.gen_range(lo..=hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ostro_datacenter::InfrastructureBuilder;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn infra() -> Infrastructure {
        InfrastructureBuilder::flat(
            "dc",
            3,
            16,
            Resources::new(16, 32 * 1024, 1_000),
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap()
    }

    #[test]
    fn table_iv_leaves_a_quarter_of_each_rack_idle() {
        let infra = infra();
        let mut rng = SmallRng::seed_from_u64(3);
        let state = AvailabilityProfile::table_iv().apply(&infra, &mut rng);
        for rack in infra.racks() {
            let idle = rack.hosts().iter().filter(|&&h| !state.is_active(h)).count();
            // The last 4 hosts of each 16-host rack are the idle bucket.
            assert_eq!(idle, 4, "rack {}", rack.name());
            for &h in &rack.hosts()[12..] {
                assert_eq!(state.available(h), infra.host(h).capacity());
                assert_eq!(state.nic_available(h), Bandwidth::from_gbps(10));
            }
        }
    }

    #[test]
    fn sampled_availability_stays_in_bucket_ranges() {
        let infra = infra();
        let mut rng = SmallRng::seed_from_u64(11);
        let profile = AvailabilityProfile::table_iv();
        let state = profile.apply(&infra, &mut rng);
        let rack = &infra.racks()[0];
        // Bucket 0: hosts 0..4 keep 9..=16 cores and <= 1.5 Gbps NIC.
        for &h in &rack.hosts()[..4] {
            let avail = state.available(h);
            assert!((9..=16).contains(&avail.vcpus), "{}", avail.vcpus);
            assert!(state.nic_available(h) <= Bandwidth::from_mbps(1_500));
            assert!(state.is_active(h));
        }
        // Bucket 2: hosts 8..12 are heavily loaded.
        for &h in &rack.hosts()[8..12] {
            assert!(state.available(h).vcpus <= 5);
        }
    }

    #[test]
    fn disk_is_untouched() {
        let infra = infra();
        let mut rng = SmallRng::seed_from_u64(5);
        let state = AvailabilityProfile::table_iv().apply(&infra, &mut rng);
        for host in infra.hosts() {
            assert_eq!(state.available(host.id()).disk_gb, 1_000);
        }
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let infra = infra();
        let a = AvailabilityProfile::table_iv().apply(&infra, &mut SmallRng::seed_from_u64(9));
        let b = AvailabilityProfile::table_iv().apply(&infra, &mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn uneven_rack_sizes_are_handled() {
        let infra = InfrastructureBuilder::flat(
            "dc",
            1,
            5, // not divisible by 4 buckets
            Resources::new(16, 32 * 1024, 1_000),
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let state = AvailabilityProfile::table_iv().apply(&infra, &mut rng);
        // ceil(5/4) = 2 hosts per bucket: the 5th host lands in the
        // third (constrained) bucket.
        assert!(state.available(infra.hosts()[4].id()).vcpus <= 5);
    }
}
