//! Concurrent arrival/departure stream generation for the placement
//! service.
//!
//! The churn simulator ([`run_churn`](crate::run_churn)) drives one
//! scheduler through a tick loop; the *service* benchmark and `ostro
//! serve` instead need a pre-materialized schedule of tenant arrivals
//! and departures that can be submitted concurrently — many requests
//! in flight at once, departures racing arrivals — while staying
//! deterministic for a given seed so two runs (or a serve run and a
//! serial replay) see the same offered load.
//!
//! [`arrival_stream`] produces that schedule: a fixed shape catalog
//! (the same recurring-template regime as the stream benchmark) plus
//! an event list where each arrival may be followed by departures of
//! uniformly-chosen still-resident tenants. Departures reference the
//! *arrival index* — the consumer resolves it to a placement once the
//! arrival's own request has been acknowledged, which is exactly the
//! dependency structure a real tenant lifecycle has (you can only
//! tear down what was stood up).

use ostro_model::{ApplicationTopology, ModelError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::requirements::RequirementMix;
use crate::workloads::{mesh, multi_tier};

/// Knobs for one generated stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamConfig {
    /// Tenant arrivals in the stream.
    pub requests: usize,
    /// After each arrival, the probability of drawing a departure
    /// (repeated until the draw fails, so bursts of departures occur);
    /// `0.0` is arrivals-only, values near `1.0` churn hard.
    pub depart_prob: f64,
    /// Seed for both the shape catalog and the event draws.
    pub seed: u64,
    /// Arrivals per submission wave; `0` keeps the whole plan a single
    /// wave. A driver that dumps each wave at once and drains between
    /// waves turns the schedule into an overload burst pattern — the
    /// wave size over the service's batch size is the burst factor.
    pub burst: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig { requests: 64, depart_prob: 0.3, seed: 0x5EED_57AE, burst: 0 }
    }
}

/// One scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamEvent {
    /// Tenant `arrival` (its ordinal among arrivals) requests
    /// placement of `shapes[shape]`.
    Arrive {
        /// The arrival's ordinal, `0..requests`.
        arrival: usize,
        /// Index into [`StreamPlan::shapes`].
        shape: usize,
    },
    /// The tenant admitted as arrival `arrival` departs. Never emitted
    /// before that tenant's own [`StreamEvent::Arrive`]; a consumer
    /// whose arrival was *rejected* simply skips the departure.
    Depart {
        /// The departing tenant's arrival ordinal.
        arrival: usize,
    },
}

/// A deterministic offered-load schedule: the shape catalog and the
/// interleaved arrival/departure events.
#[derive(Debug)]
pub struct StreamPlan {
    /// The application-topology catalog arrivals draw from. The same
    /// values recur across the stream — the recurring-template regime
    /// a long-running service sees.
    pub shapes: Vec<ApplicationTopology>,
    /// The schedule, in submission order.
    pub events: Vec<StreamEvent>,
    /// The shape index of each arrival: `shape_of[a]` for arrival `a`.
    pub shape_of: Vec<usize>,
    /// Event-index starts of the submission waves, in order; always
    /// `[0]` when [`StreamConfig::burst`] is `0` (one wave).
    pub wave_starts: Vec<usize>,
}

impl StreamPlan {
    /// Arrivals in the plan.
    #[must_use]
    pub fn arrivals(&self) -> usize {
        self.shape_of.len()
    }

    /// Departures in the plan.
    #[must_use]
    pub fn departures(&self) -> usize {
        self.events.len() - self.arrivals()
    }

    /// The submission waves, in order: contiguous event slices whose
    /// concatenation is exactly [`events`](Self::events).
    pub fn waves(&self) -> impl Iterator<Item = &[StreamEvent]> {
        let ends = self.wave_starts.iter().copied().skip(1).chain([self.events.len()]);
        self.wave_starts.iter().copied().zip(ends).map(|(start, end)| &self.events[start..end])
    }
}

/// Builds the fixed shape catalog for `seed`: two multi-tier stacks,
/// a mesh, and a small pair — enough size variance that concurrent
/// plans touch overlapping host sets and the service's conflict path
/// actually runs.
///
/// # Errors
///
/// Propagates [`ModelError`] from workload construction (only possible
/// if the fixed sizes here are made invalid).
pub fn shape_catalog(seed: u64) -> Result<Vec<ApplicationTopology>, ModelError> {
    let mix = RequirementMix::homogeneous();
    let mut rng = SmallRng::seed_from_u64(seed);
    Ok(vec![
        multi_tier(25, &mix, &mut rng)?,
        mesh(5, &mix, &mut rng)?,
        multi_tier(50, &mix, &mut rng)?,
        mesh(3, &mix, &mut rng)?,
    ])
}

/// Generates a deterministic arrival/departure schedule.
///
/// Each arrival draws its shape uniformly; after it, departures of
/// uniformly-chosen resident tenants are drawn while a
/// [`StreamConfig::depart_prob`] coin keeps landing heads. Tenants
/// still resident when arrivals run out stay resident — sustained
/// load, not a drain-to-empty cycle.
///
/// # Errors
///
/// Propagates [`ModelError`] from [`shape_catalog`].
pub fn arrival_stream(config: &StreamConfig) -> Result<StreamPlan, ModelError> {
    let shapes = shape_catalog(config.seed ^ 0x057A_EA44)?;
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut events = Vec::with_capacity(config.requests * 2);
    let mut shape_of = Vec::with_capacity(config.requests);
    let mut resident: Vec<usize> = Vec::new();
    let mut wave_starts = vec![0];
    for arrival in 0..config.requests {
        if config.burst > 0 && arrival > 0 && arrival % config.burst == 0 {
            wave_starts.push(events.len());
        }
        let shape = rng.gen_range(0..shapes.len());
        shape_of.push(shape);
        events.push(StreamEvent::Arrive { arrival, shape });
        resident.push(arrival);
        while !resident.is_empty() && config.depart_prob > 0.0 && rng.gen_bool(config.depart_prob) {
            let k = rng.gen_range(0..resident.len());
            let departing = resident.swap_remove(k);
            events.push(StreamEvent::Depart { arrival: departing });
        }
    }
    Ok(StreamPlan { shapes, events, shape_of, wave_starts })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let config = StreamConfig { requests: 40, depart_prob: 0.4, seed: 7, burst: 0 };
        let a = arrival_stream(&config).unwrap();
        let b = arrival_stream(&config).unwrap();
        assert_eq!(a.events, b.events);
        assert_eq!(a.shape_of, b.shape_of);
        assert_eq!(a.shapes, b.shapes);
    }

    #[test]
    fn departures_follow_their_arrivals_exactly_once() {
        let config = StreamConfig { requests: 60, depart_prob: 0.5, seed: 11, burst: 0 };
        let plan = arrival_stream(&config).unwrap();
        assert_eq!(plan.arrivals(), 60);
        let mut arrived = vec![false; plan.arrivals()];
        let mut departed = vec![false; plan.arrivals()];
        for event in &plan.events {
            match *event {
                StreamEvent::Arrive { arrival, shape } => {
                    assert!(!arrived[arrival]);
                    arrived[arrival] = true;
                    assert!(shape < plan.shapes.len());
                    assert_eq!(plan.shape_of[arrival], shape);
                }
                StreamEvent::Depart { arrival } => {
                    assert!(arrived[arrival], "departure before arrival {arrival}");
                    assert!(!departed[arrival], "double departure of {arrival}");
                    departed[arrival] = true;
                }
            }
        }
        assert_eq!(plan.departures(), departed.iter().filter(|&&d| d).count());
    }

    #[test]
    fn burst_waves_partition_the_event_list() {
        let config = StreamConfig { requests: 10, depart_prob: 0.5, seed: 9, burst: 4 };
        let plan = arrival_stream(&config).unwrap();
        assert_eq!(plan.wave_starts.len(), 3, "10 arrivals at 4 per wave is 3 waves");
        let rejoined: Vec<StreamEvent> = plan.waves().flatten().copied().collect();
        assert_eq!(rejoined, plan.events, "waves must concatenate back to the schedule");
        for (i, wave) in plan.waves().enumerate() {
            let arrivals = wave.iter().filter(|e| matches!(e, StreamEvent::Arrive { .. })).count();
            assert!(arrivals <= 4, "wave {i} holds {arrivals} arrivals");
        }
        // The same seed without bursts produces the same events in one
        // wave — the burst knob only re-partitions, never re-draws.
        let single = arrival_stream(&StreamConfig { burst: 0, ..config.clone() }).unwrap();
        assert_eq!(single.events, plan.events);
        assert_eq!(single.wave_starts, vec![0]);
    }

    #[test]
    fn zero_depart_prob_is_arrivals_only() {
        let plan =
            arrival_stream(&StreamConfig { requests: 10, depart_prob: 0.0, seed: 3, burst: 0 })
                .unwrap();
        assert_eq!(plan.events.len(), 10);
        assert_eq!(plan.departures(), 0);
    }
}
