use ostro_model::{Bandwidth, Resources};
use serde::{Deserialize, Serialize};

use crate::error::CapacityError;
use crate::ids::{HostId, PodId, RackId, SiteId};
use crate::path::LinkRef;
use crate::structure::Infrastructure;

/// Mutable availability bookkeeping over an [`Infrastructure`]: what is
/// left on every host and every network link, and which hosts are
/// *active* (running at least one placed node).
///
/// All reservations validate before mutating: a failed reserve leaves
/// the state untouched. Flows reserve bandwidth on every link of the
/// route between the two hosts (§II-B2's path constraint).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapacityState {
    host_avail: Vec<Resources>,
    nic_avail: Vec<Bandwidth>,
    tor_avail: Vec<Bandwidth>,
    pod_avail: Vec<Bandwidth>,
    site_avail: Vec<Bandwidth>,
    node_count: Vec<u32>,
}

impl CapacityState {
    /// A fully available state: every host idle, every link empty.
    #[must_use]
    pub fn new(infra: &Infrastructure) -> Self {
        CapacityState {
            host_avail: infra.hosts().iter().map(|h| h.capacity()).collect(),
            nic_avail: infra.hosts().iter().map(|h| h.nic()).collect(),
            tor_avail: infra.racks().iter().map(|r| r.uplink()).collect(),
            pod_avail: infra.pods().iter().map(|p| p.uplink()).collect(),
            site_avail: infra.sites().iter().map(|s| s.uplink()).collect(),
            node_count: vec![0; infra.host_count()],
        }
    }

    /// Remaining host-local capacity.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range for the underlying infrastructure.
    #[must_use]
    pub fn available(&self, host: HostId) -> Resources {
        self.host_avail[host.index()]
    }

    /// Remaining bandwidth on a host's NIC.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    #[must_use]
    pub fn nic_available(&self, host: HostId) -> Bandwidth {
        self.nic_avail[host.index()]
    }

    /// Remaining bandwidth on a link.
    ///
    /// # Panics
    ///
    /// Panics if the link's id is out of range.
    #[must_use]
    pub fn link_available(&self, link: LinkRef) -> Bandwidth {
        match link {
            LinkRef::HostNic(h) => self.nic_avail[h.index()],
            LinkRef::TorUplink(r) => self.tor_avail[r.index()],
            LinkRef::PodUplink(p) => self.pod_avail[p.index()],
            LinkRef::SiteUplink(s) => self.site_avail[s.index()],
        }
    }

    /// Remaining bandwidth on a rack's ToR uplink.
    ///
    /// # Panics
    ///
    /// Panics if `rack` is out of range.
    #[must_use]
    pub fn tor_available(&self, rack: RackId) -> Bandwidth {
        self.tor_avail[rack.index()]
    }

    /// Remaining bandwidth on a pod switch's uplink.
    ///
    /// # Panics
    ///
    /// Panics if `pod` is out of range.
    #[must_use]
    pub fn pod_available(&self, pod: PodId) -> Bandwidth {
        self.pod_avail[pod.index()]
    }

    /// Remaining bandwidth on a site's backbone uplink.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    #[must_use]
    pub fn site_available(&self, site: SiteId) -> Bandwidth {
        self.site_avail[site.index()]
    }

    /// `true` if at least one node is currently placed on `host`.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    #[must_use]
    pub fn is_active(&self, host: HostId) -> bool {
        self.node_count[host.index()] > 0
    }

    /// Number of nodes currently placed on `host`.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    #[must_use]
    pub fn node_count(&self, host: HostId) -> u32 {
        self.node_count[host.index()]
    }

    /// Number of hosts with at least one placed node.
    #[must_use]
    pub fn active_host_count(&self) -> usize {
        self.node_count.iter().filter(|&&c| c > 0).count()
    }

    /// Number of hosts this state tracks — used to validate that a
    /// deserialized state actually matches an infrastructure before any
    /// indexed access can go wrong.
    #[must_use]
    pub fn host_count(&self) -> usize {
        self.host_avail.len()
    }

    /// Reserves host-local resources for one node and marks the host
    /// active.
    ///
    /// # Errors
    ///
    /// [`CapacityError::InsufficientHost`] if the request does not fit;
    /// the state is unchanged on error.
    pub fn reserve_node(&mut self, host: HostId, req: Resources) -> Result<(), CapacityError> {
        let avail = &mut self.host_avail[host.index()];
        match avail.checked_sub(req) {
            Some(rest) => {
                *avail = rest;
                self.node_count[host.index()] += 1;
                Ok(())
            }
            None => Err(CapacityError::InsufficientHost { host, needed: req, available: *avail }),
        }
    }

    /// Releases one node's host-local resources.
    ///
    /// # Errors
    ///
    /// [`CapacityError::ReleaseUnderflowHost`] if the release exceeds
    /// what is reserved (including if no node is placed on the host).
    pub fn release_node(
        &mut self,
        infra: &Infrastructure,
        host: HostId,
        req: Resources,
    ) -> Result<(), CapacityError> {
        if self.node_count[host.index()] == 0 {
            return Err(CapacityError::ReleaseUnderflowHost(host));
        }
        let total = infra.host(host).capacity();
        let restored = self.host_avail[host.index()] + req;
        if !restored.fits_within(&total) {
            return Err(CapacityError::ReleaseUnderflowHost(host));
        }
        self.host_avail[host.index()] = restored;
        self.node_count[host.index()] -= 1;
        Ok(())
    }

    /// Bandwidth remaining along the whole route between `a` and `b`
    /// (the minimum over its links), or `None` when `a == b` (infinite
    /// intra-host bandwidth).
    #[must_use]
    pub fn route_headroom(
        &self,
        infra: &Infrastructure,
        a: HostId,
        b: HostId,
    ) -> Option<Bandwidth> {
        infra.route_pair(a, b).iter().map(|l| self.link_available(l)).min()
    }

    /// `true` if a flow of `demand` fits on every link between `a` and `b`.
    #[must_use]
    pub fn flow_fits(
        &self,
        infra: &Infrastructure,
        a: HostId,
        b: HostId,
        demand: Bandwidth,
    ) -> bool {
        match self.route_headroom(infra, a, b) {
            None => true,
            Some(headroom) => demand <= headroom,
        }
    }

    /// Reserves `demand` on every link between `a` and `b`. A flow
    /// between co-located nodes reserves nothing.
    ///
    /// # Errors
    ///
    /// [`CapacityError::InsufficientLink`] naming the first saturated
    /// link; the state is unchanged on error.
    pub fn reserve_flow(
        &mut self,
        infra: &Infrastructure,
        a: HostId,
        b: HostId,
        demand: Bandwidth,
    ) -> Result<(), CapacityError> {
        let route = infra.route_pair(a, b);
        for link in route.iter() {
            let available = self.link_available(link);
            if demand > available {
                return Err(CapacityError::InsufficientLink { link, needed: demand, available });
            }
        }
        for link in route.iter() {
            *self.link_available_mut(link) -= demand;
        }
        Ok(())
    }

    /// Releases `demand` on every link between `a` and `b`.
    ///
    /// # Errors
    ///
    /// [`CapacityError::ReleaseUnderflowLink`] if any link would exceed
    /// its total capacity; the state is unchanged on error.
    pub fn release_flow(
        &mut self,
        infra: &Infrastructure,
        a: HostId,
        b: HostId,
        demand: Bandwidth,
    ) -> Result<(), CapacityError> {
        let route = infra.route_pair(a, b);
        for link in route.iter() {
            let total = link_total(infra, link);
            if self.link_available(link) + demand > total {
                return Err(CapacityError::ReleaseUnderflowLink(link));
            }
        }
        for link in route.iter() {
            *self.link_available_mut(link) += demand;
        }
        Ok(())
    }

    /// Takes a host out of service: whatever capacity and NIC
    /// bandwidth it still has is marked used, so no placement can
    /// select it. Resources already reserved on the host remain
    /// reserved (release them by releasing their placements).
    ///
    /// Note that the frozen capacity counts as *used* in aggregate
    /// metrics such as
    /// [`total_reserved_bandwidth`](Self::total_reserved_bandwidth).
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    pub fn quarantine_host(&mut self, host: HostId) {
        self.host_avail[host.index()] = Resources::ZERO;
        self.nic_avail[host.index()] = Bandwidth::ZERO;
    }

    /// Forces one host's local books to an externally observed truth:
    /// `used` resources reserved and `count` nodes resident. The
    /// anti-entropy sweep uses this to repair a host whose session view
    /// drifted from the Nova ground truth; NIC and fabric bandwidth are
    /// left untouched (link truth is reconciled separately, if at all).
    ///
    /// # Errors
    ///
    /// [`CapacityError::InsufficientHost`] if `used` exceeds the host's
    /// total capacity; the state is unchanged on error.
    pub fn resync_host(
        &mut self,
        infra: &Infrastructure,
        host: HostId,
        used: Resources,
        count: u32,
    ) -> Result<(), CapacityError> {
        let total = infra.host(host).capacity();
        let avail = total.checked_sub(used).ok_or(CapacityError::InsufficientHost {
            host,
            needed: used,
            available: total,
        })?;
        self.host_avail[host.index()] = avail;
        self.node_count[host.index()] = count;
        Ok(())
    }

    /// Marks pre-existing bandwidth usage on a single link, for
    /// modeling workloads that were running before any placement this
    /// state tracks (e.g. the paper's Table IV availability profiles).
    ///
    /// Unlike [`reserve_flow`](Self::reserve_flow) this touches exactly
    /// one link and is not tied to a host pair.
    ///
    /// # Errors
    ///
    /// [`CapacityError::InsufficientLink`] if `used` exceeds the link's
    /// remaining bandwidth.
    pub fn preload_link(&mut self, link: LinkRef, used: Bandwidth) -> Result<(), CapacityError> {
        let available = self.link_available(link);
        if used > available {
            return Err(CapacityError::InsufficientLink { link, needed: used, available });
        }
        *self.link_available_mut(link) -= used;
        Ok(())
    }

    pub(crate) fn debit_link_unchecked(&mut self, link: LinkRef, amount: Bandwidth) {
        *self.link_available_mut(link) -= amount;
    }

    pub(crate) fn bump_node_count(&mut self, host: HostId, extra: u32) {
        self.node_count[host.index()] += extra;
    }

    fn link_available_mut(&mut self, link: LinkRef) -> &mut Bandwidth {
        match link {
            LinkRef::HostNic(h) => &mut self.nic_avail[h.index()],
            LinkRef::TorUplink(r) => &mut self.tor_avail[r.index()],
            LinkRef::PodUplink(p) => &mut self.pod_avail[p.index()],
            LinkRef::SiteUplink(s) => &mut self.site_avail[s.index()],
        }
    }

    /// Total bandwidth currently reserved across all links — the
    /// objective's `ubw` measured on live state.
    #[must_use]
    pub fn total_reserved_bandwidth(&self, infra: &Infrastructure) -> Bandwidth {
        let mut total = Bandwidth::ZERO;
        for host in infra.hosts() {
            total += host.nic() - self.nic_avail[host.id().index()];
        }
        for rack in infra.racks() {
            total += rack.uplink() - self.tor_avail[rack.id().index()];
        }
        for pod in infra.pods() {
            total += pod.uplink() - self.pod_avail[pod.id().index()];
        }
        for site in infra.sites() {
            total += site.uplink() - self.site_avail[site.id().index()];
        }
        total
    }
}

pub(crate) fn link_total(infra: &Infrastructure, link: LinkRef) -> Bandwidth {
    match link {
        LinkRef::HostNic(h) => infra.host(h).nic(),
        LinkRef::TorUplink(r) => infra.rack(r).uplink(),
        LinkRef::PodUplink(p) => infra.pod(p).uplink(),
        LinkRef::SiteUplink(s) => infra.site(s).uplink(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::InfrastructureBuilder;

    fn setup() -> (Infrastructure, CapacityState) {
        let infra = InfrastructureBuilder::flat(
            "dc",
            2,
            2,
            Resources::new(8, 16_384, 500),
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap();
        let state = CapacityState::new(&infra);
        (infra, state)
    }

    fn h(i: u32) -> HostId {
        HostId::from_index(i)
    }

    #[test]
    fn fresh_state_is_idle_and_full() {
        let (infra, state) = setup();
        assert_eq!(state.active_host_count(), 0);
        for host in infra.hosts() {
            assert_eq!(state.available(host.id()), host.capacity());
            assert_eq!(state.nic_available(host.id()), host.nic());
            assert!(!state.is_active(host.id()));
        }
        assert_eq!(state.total_reserved_bandwidth(&infra), Bandwidth::ZERO);
    }

    #[test]
    fn reserve_and_release_node_round_trip() {
        let (infra, mut state) = setup();
        let req = Resources::new(4, 8_192, 100);
        state.reserve_node(h(0), req).unwrap();
        assert!(state.is_active(h(0)));
        assert_eq!(state.node_count(h(0)), 1);
        assert_eq!(state.active_host_count(), 1);
        assert_eq!(state.available(h(0)), Resources::new(4, 8_192, 400));
        state.release_node(&infra, h(0), req).unwrap();
        assert!(!state.is_active(h(0)));
        assert_eq!(state.available(h(0)), Resources::new(8, 16_384, 500));
    }

    #[test]
    fn reserve_node_rejects_overcommit_without_mutating() {
        let (_, mut state) = setup();
        let before = state.clone();
        let err = state.reserve_node(h(0), Resources::new(9, 1, 1)).unwrap_err();
        assert!(matches!(err, CapacityError::InsufficientHost { host, .. } if host == h(0)));
        assert_eq!(state, before);
    }

    #[test]
    fn release_node_guards_underflow() {
        let (infra, mut state) = setup();
        assert!(matches!(
            state.release_node(&infra, h(0), Resources::new(1, 1, 1)).unwrap_err(),
            CapacityError::ReleaseUnderflowHost(_)
        ));
        state.reserve_node(h(0), Resources::new(1, 1, 1)).unwrap();
        assert!(matches!(
            state.release_node(&infra, h(0), Resources::new(2, 1, 1)).unwrap_err(),
            CapacityError::ReleaseUnderflowHost(_)
        ));
    }

    #[test]
    fn flow_reservation_spans_route() {
        let (infra, mut state) = setup();
        // h0 and h2 are in different racks: 2 NICs + 2 ToR uplinks.
        let bw = Bandwidth::from_gbps(1);
        state.reserve_flow(&infra, h(0), h(2), bw).unwrap();
        assert_eq!(state.nic_available(h(0)), Bandwidth::from_gbps(9));
        assert_eq!(state.nic_available(h(2)), Bandwidth::from_gbps(9));
        assert_eq!(state.tor_available(RackId::from_index(0)), Bandwidth::from_gbps(99));
        assert_eq!(state.tor_available(RackId::from_index(1)), Bandwidth::from_gbps(99));
        // ubw counts every traversed link once.
        assert_eq!(state.total_reserved_bandwidth(&infra), Bandwidth::from_gbps(4));
        state.release_flow(&infra, h(0), h(2), bw).unwrap();
        assert_eq!(state.total_reserved_bandwidth(&infra), Bandwidth::ZERO);
    }

    #[test]
    fn same_host_flow_is_free() {
        let (infra, mut state) = setup();
        state.reserve_flow(&infra, h(0), h(0), Bandwidth::from_gbps(99)).unwrap();
        assert_eq!(state.total_reserved_bandwidth(&infra), Bandwidth::ZERO);
        assert!(state.flow_fits(&infra, h(0), h(0), Bandwidth::from_gbps(10_000)));
        assert_eq!(state.route_headroom(&infra, h(0), h(0)), None);
    }

    #[test]
    fn flow_rejection_is_atomic() {
        let (infra, mut state) = setup();
        // Saturate h0's NIC.
        state.reserve_flow(&infra, h(0), h(1), Bandwidth::from_gbps(10)).unwrap();
        let before = state.clone();
        let err = state.reserve_flow(&infra, h(0), h(2), Bandwidth::from_mbps(1)).unwrap_err();
        assert!(matches!(
            err,
            CapacityError::InsufficientLink { link: LinkRef::HostNic(host), .. } if host == h(0)
        ));
        assert_eq!(state, before);
    }

    #[test]
    fn headroom_is_min_over_route() {
        let (infra, mut state) = setup();
        state.reserve_flow(&infra, h(0), h(1), Bandwidth::from_gbps(4)).unwrap();
        // h0's NIC now has 6 left; ToR uplinks are untouched by the
        // intra-rack flow.
        assert_eq!(state.route_headroom(&infra, h(0), h(2)), Some(Bandwidth::from_gbps(6)));
        assert!(state.flow_fits(&infra, h(0), h(2), Bandwidth::from_gbps(6)));
        assert!(!state.flow_fits(&infra, h(0), h(2), Bandwidth::from_mbps(6_001)));
    }

    #[test]
    fn quarantine_blocks_all_new_use() {
        let (infra, mut state) = setup();
        state.reserve_node(h(0), Resources::new(2, 1_024, 10)).unwrap();
        state.quarantine_host(h(0));
        assert!(state.available(h(0)).is_zero());
        assert_eq!(state.nic_available(h(0)), Bandwidth::ZERO);
        assert!(state.reserve_node(h(0), Resources::new(1, 1, 0)).is_err());
        assert!(state.reserve_flow(&infra, h(0), h(1), Bandwidth::from_mbps(1)).is_err());
        // The resident node is still accounted.
        assert_eq!(state.node_count(h(0)), 1);
        assert!(state.is_active(h(0)));
    }

    #[test]
    fn resync_host_forces_books_to_truth() {
        let (infra, mut state) = setup();
        assert_eq!(state.host_count(), infra.host_count());
        state.reserve_node(h(0), Resources::new(4, 8_192, 100)).unwrap();
        // Ground truth says only half of that is real.
        let truth = Resources::new(2, 4_096, 50);
        state.resync_host(&infra, h(0), truth, 1).unwrap();
        assert_eq!(state.available(h(0)), Resources::new(6, 12_288, 450));
        assert_eq!(state.node_count(h(0)), 1);
        // Truth exceeding capacity is rejected without mutating.
        let before = state.clone();
        let err = state.resync_host(&infra, h(0), Resources::new(99, 1, 1), 1).unwrap_err();
        assert!(matches!(err, CapacityError::InsufficientHost { host, .. } if host == h(0)));
        assert_eq!(state, before);
    }

    #[test]
    fn preload_link_consumes_exactly_one_link() {
        let (infra, mut state) = setup();
        state.preload_link(LinkRef::HostNic(h(0)), Bandwidth::from_gbps(4)).unwrap();
        assert_eq!(state.nic_available(h(0)), Bandwidth::from_gbps(6));
        assert_eq!(state.tor_available(RackId::from_index(0)), Bandwidth::from_gbps(100));
        let err = state.preload_link(LinkRef::HostNic(h(0)), Bandwidth::from_gbps(7)).unwrap_err();
        assert!(matches!(err, CapacityError::InsufficientLink { .. }));
        assert_eq!(state.nic_available(h(0)), Bandwidth::from_gbps(6));
        let _ = infra;
    }

    #[test]
    fn release_flow_guards_underflow() {
        let (infra, mut state) = setup();
        assert!(matches!(
            state.release_flow(&infra, h(0), h(2), Bandwidth::from_gbps(1)).unwrap_err(),
            CapacityError::ReleaseUnderflowLink(_)
        ));
    }
}
