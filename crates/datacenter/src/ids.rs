use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Creates an id from a raw dense index.
            ///
            /// Ordinarily ids come from
            /// [`InfrastructureBuilder`](crate::InfrastructureBuilder);
            /// this is for deserialization and tests.
            #[must_use]
            pub const fn from_index(index: u32) -> Self {
                $name(index)
            }

            /// The dense index of this id.
            #[must_use]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type! {
    /// Identifier of a host server within one [`Infrastructure`](crate::Infrastructure).
    HostId, "h"
}
id_type! {
    /// Identifier of a rack (equivalently, its ToR switch).
    RackId, "rack"
}
id_type! {
    /// Identifier of a pod (equivalently, its pod switch).
    PodId, "pod"
}
id_type! {
    /// Identifier of a data-center site.
    SiteId, "site"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_and_display() {
        assert_eq!(HostId::from_index(3).index(), 3);
        assert_eq!(HostId::from_index(3).to_string(), "h3");
        assert_eq!(RackId::from_index(1).to_string(), "rack1");
        assert_eq!(PodId::from_index(0).to_string(), "pod0");
        assert_eq!(SiteId::from_index(2).to_string(), "site2");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(HostId::from_index(1) < HostId::from_index(2));
    }
}
