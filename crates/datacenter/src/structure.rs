use ostro_model::{Bandwidth, DiversityLevel, Proximity, Resources};
use serde::{Deserialize, Serialize};

use crate::error::BuildError;
use crate::ids::{HostId, PodId, RackId, SiteId};
use crate::path::{LinkRef, Separation};

/// Where one host sits in the hierarchy, flattened into a single cache
/// line so the hot path resolves rack, pod, and site without chasing
/// three `Vec` lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct HostLoc {
    pub(crate) rack: RackId,
    pub(crate) pod: PodId,
    pub(crate) site: SiteId,
    /// `false` for transparent pods, which carry no uplink capacity.
    pub(crate) pod_real: bool,
}

/// The capacity-bearing links a flow between two hosts traverses, as a
/// fixed-size stack value (a route is never longer than 8 links: two
/// NICs, two ToR uplinks, up to two pod uplinks, two site uplinks).
///
/// Produced by [`Infrastructure::route_pair`]; the whole point is that
/// building one allocates nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    links: [LinkRef; Route::MAX_LEN],
    len: u8,
}

impl Route {
    /// The longest possible route on any infrastructure.
    pub const MAX_LEN: usize = 8;

    const EMPTY: Route =
        Route { links: [LinkRef::HostNic(HostId::from_index(0)); Route::MAX_LEN], len: 0 };

    #[inline]
    fn push(&mut self, link: LinkRef) {
        self.links[self.len as usize] = link;
        self.len += 1;
    }

    /// The links of the route, in canonical (source-then-destination,
    /// bottom-up) order.
    #[must_use]
    pub fn as_slice(&self) -> &[LinkRef] {
        &self.links[..self.len as usize]
    }

    /// Number of links on the route.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` for the intra-host route.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the route's links by value.
    pub fn iter(&self) -> impl Iterator<Item = LinkRef> + '_ {
        self.as_slice().iter().copied()
    }
}

impl std::ops::Deref for Route {
    type Target = [LinkRef];

    fn deref(&self) -> &[LinkRef] {
        self.as_slice()
    }
}

impl<'a> IntoIterator for &'a Route {
    type Item = LinkRef;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, LinkRef>>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter().copied()
    }
}

/// A physical host server: compute capacity, local disk, and one NIC
/// connecting it to its rack's ToR switch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Host {
    pub(crate) id: HostId,
    pub(crate) name: String,
    pub(crate) rack: RackId,
    pub(crate) capacity: Resources,
    pub(crate) nic: Bandwidth,
}

impl Host {
    /// This host's id.
    #[must_use]
    pub const fn id(&self) -> HostId {
        self.id
    }

    /// The operator-assigned host name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The rack this host sits in.
    #[must_use]
    pub const fn rack(&self) -> RackId {
        self.rack
    }

    /// Total (not remaining) host-local capacity.
    #[must_use]
    pub const fn capacity(&self) -> Resources {
        self.capacity
    }

    /// Total bandwidth of the host's NIC (host ↔ ToR link).
    #[must_use]
    pub const fn nic(&self) -> Bandwidth {
        self.nic
    }
}

/// A rack: a ToR switch plus the hosts behind it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rack {
    pub(crate) id: RackId,
    pub(crate) name: String,
    pub(crate) pod: PodId,
    pub(crate) uplink: Bandwidth,
    pub(crate) hosts: Vec<HostId>,
}

impl Rack {
    /// This rack's id.
    #[must_use]
    pub const fn id(&self) -> RackId {
        self.id
    }

    /// The operator-assigned rack name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The pod this rack belongs to (possibly a *transparent* pod if the
    /// site has no pod-switch layer).
    #[must_use]
    pub const fn pod(&self) -> PodId {
        self.pod
    }

    /// Total capacity of the ToR switch's uplink toward its parent.
    #[must_use]
    pub const fn uplink(&self) -> Bandwidth {
        self.uplink
    }

    /// The hosts in this rack.
    #[must_use]
    pub fn hosts(&self) -> &[HostId] {
        &self.hosts
    }
}

/// A pod: a pod switch plus the racks under it.
///
/// A *transparent* pod models a site without a pod-switch layer: its
/// racks connect directly to the site's root switch, so the pod carries
/// no uplink capacity and adds no hops to any path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pod {
    pub(crate) id: PodId,
    pub(crate) name: String,
    pub(crate) site: SiteId,
    pub(crate) uplink: Bandwidth,
    pub(crate) transparent: bool,
    pub(crate) racks: Vec<RackId>,
}

impl Pod {
    /// This pod's id.
    #[must_use]
    pub const fn id(&self) -> PodId {
        self.id
    }

    /// The operator-assigned pod name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The site this pod belongs to.
    #[must_use]
    pub const fn site(&self) -> SiteId {
        self.site
    }

    /// Total capacity of the pod switch's uplink to the root switch.
    /// Zero (and unused) for transparent pods.
    #[must_use]
    pub const fn uplink(&self) -> Bandwidth {
        self.uplink
    }

    /// `true` if this pod only exists structurally (no pod switch).
    #[must_use]
    pub const fn is_transparent(&self) -> bool {
        self.transparent
    }

    /// The racks under this pod.
    #[must_use]
    pub fn racks(&self) -> &[RackId] {
        &self.racks
    }
}

/// A data-center site: a root switch, its pods, and an uplink to the
/// inter-site backbone.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Site {
    pub(crate) id: SiteId,
    pub(crate) name: String,
    pub(crate) uplink: Bandwidth,
    pub(crate) pods: Vec<PodId>,
}

impl Site {
    /// This site's id.
    #[must_use]
    pub const fn id(&self) -> SiteId {
        self.id
    }

    /// The operator-assigned site name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total capacity of the site's uplink to the inter-site backbone.
    #[must_use]
    pub const fn uplink(&self) -> Bandwidth {
        self.uplink
    }

    /// The pods in this site.
    #[must_use]
    pub fn pods(&self) -> &[PodId] {
        &self.pods
    }
}

/// The immutable physical structure of one or more interconnected data
/// centers — the paper's `T_p`.
///
/// Build one with [`InfrastructureBuilder`](crate::InfrastructureBuilder).
/// All capacity *bookkeeping* lives in
/// [`CapacityState`](crate::CapacityState), not here.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(try_from = "InfraData", into = "InfraData")]
pub struct Infrastructure {
    pub(crate) sites: Vec<Site>,
    pub(crate) pods: Vec<Pod>,
    pub(crate) racks: Vec<Rack>,
    pub(crate) hosts: Vec<Host>,
    /// Dense per-host location table, derived from the vectors above at
    /// construction time. Everything on the search hot path (routes,
    /// separation, hop costs) reads only this.
    pub(crate) locs: Vec<HostLoc>,
    /// Precomputed [`max_hop_cost`](Self::max_hop_cost).
    pub(crate) max_hop: u64,
}

/// The serialized shape of an [`Infrastructure`]: just the four entity
/// vectors. The derived tables are rebuilt on deserialization, keeping
/// the JSON format free of redundant data.
#[derive(Clone, Serialize, Deserialize)]
pub(crate) struct InfraData {
    sites: Vec<Site>,
    pods: Vec<Pod>,
    racks: Vec<Rack>,
    hosts: Vec<Host>,
}

impl From<Infrastructure> for InfraData {
    fn from(infra: Infrastructure) -> InfraData {
        InfraData { sites: infra.sites, pods: infra.pods, racks: infra.racks, hosts: infra.hosts }
    }
}

impl TryFrom<InfraData> for Infrastructure {
    type Error = BuildError;

    fn try_from(data: InfraData) -> Result<Infrastructure, BuildError> {
        // Deserialized data may contain dangling indices; `assemble`
        // trusts its inputs, so check every cross-reference it follows.
        let dangling = |what: String| BuildError::DanglingReference(what);
        for pod in &data.pods {
            if pod.site.index() >= data.sites.len() {
                return Err(dangling(format!(
                    "pod `{}` names missing site {}",
                    pod.name, pod.site
                )));
            }
        }
        for rack in &data.racks {
            if rack.pod.index() >= data.pods.len() {
                return Err(dangling(format!(
                    "rack `{}` names missing pod {}",
                    rack.name, rack.pod
                )));
            }
        }
        for host in &data.hosts {
            if host.rack.index() >= data.racks.len() {
                return Err(dangling(format!(
                    "host `{}` names missing rack {}",
                    host.name, host.rack
                )));
            }
        }
        Ok(Infrastructure::assemble(data.sites, data.pods, data.racks, data.hosts))
    }
}

impl Infrastructure {
    /// Builds an infrastructure from its entity vectors, deriving the
    /// dense location table and precomputed hop-cost bound. The sole
    /// constructor — both the builder and deserialization funnel
    /// through here, so the tables can never be stale.
    pub(crate) fn assemble(
        sites: Vec<Site>,
        pods: Vec<Pod>,
        racks: Vec<Rack>,
        hosts: Vec<Host>,
    ) -> Self {
        let locs = hosts
            .iter()
            .map(|host| {
                let rack = host.rack;
                let pod = racks[rack.index()].pod;
                let site = pods[pod.index()].site;
                HostLoc { rack, pod, site, pod_real: !pods[pod.index()].transparent }
            })
            .collect();
        let mut infra = Infrastructure { sites, pods, racks, hosts, locs, max_hop: 0 };
        infra.max_hop = infra.compute_max_hop_cost();
        infra
    }
    /// All sites.
    #[must_use]
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// All pods (including transparent ones).
    #[must_use]
    pub fn pods(&self) -> &[Pod] {
        &self.pods
    }

    /// All racks.
    #[must_use]
    pub fn racks(&self) -> &[Rack] {
        &self.racks
    }

    /// All hosts.
    #[must_use]
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// Looks up a host by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this infrastructure.
    #[must_use]
    pub fn host(&self, id: HostId) -> &Host {
        &self.hosts[id.index()]
    }

    /// Looks up a rack by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this infrastructure.
    #[must_use]
    pub fn rack(&self, id: RackId) -> &Rack {
        &self.racks[id.index()]
    }

    /// Looks up a pod by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this infrastructure.
    #[must_use]
    pub fn pod(&self, id: PodId) -> &Pod {
        &self.pods[id.index()]
    }

    /// Looks up a site by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this infrastructure.
    #[must_use]
    pub fn site(&self, id: SiteId) -> &Site {
        &self.sites[id.index()]
    }

    /// Number of hosts across all sites.
    #[must_use]
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// The rack, pod, and site of a host, in one lookup.
    #[must_use]
    pub fn location(&self, host: HostId) -> (RackId, PodId, SiteId) {
        let loc = self.locs[host.index()];
        (loc.rack, loc.pod, loc.site)
    }

    /// How far apart two hosts are in the hierarchy.
    #[must_use]
    pub fn separation(&self, a: HostId, b: HostId) -> Separation {
        if a == b {
            return Separation::SameHost;
        }
        let la = self.locs[a.index()];
        let lb = self.locs[b.index()];
        if la.rack == lb.rack {
            Separation::SameRack
        } else if la.pod == lb.pod {
            Separation::SamePod
        } else if la.site == lb.site {
            Separation::SameSite
        } else {
            Separation::CrossSite
        }
    }

    /// Whether hosts `a` and `b` are in *different* units at `level` —
    /// i.e. whether co-members of a diversity zone at that level may be
    /// placed on `a` and `b`.
    #[must_use]
    pub fn satisfies_diversity(&self, a: HostId, b: HostId, level: DiversityLevel) -> bool {
        if a == b {
            return false;
        }
        let la = self.locs[a.index()];
        let lb = self.locs[b.index()];
        match level {
            DiversityLevel::Host => true,
            DiversityLevel::Rack => la.rack != lb.rack,
            DiversityLevel::Pod => la.pod != lb.pod,
            DiversityLevel::DataCenter => la.site != lb.site,
        }
    }

    /// Whether hosts `a` and `b` share the infrastructure unit named
    /// by `proximity` — i.e. whether a latency-bounded link between
    /// nodes on `a` and `b` meets its bound.
    #[must_use]
    pub fn within(&self, a: HostId, b: HostId, proximity: Proximity) -> bool {
        if a == b {
            return true;
        }
        let la = self.locs[a.index()];
        let lb = self.locs[b.index()];
        match proximity {
            Proximity::Host => false,
            Proximity::Rack => la.rack == lb.rack,
            Proximity::Pod => la.pod == lb.pod,
            Proximity::DataCenter => la.site == lb.site,
        }
    }

    /// The capacity-bearing network links a flow between hosts `a` and
    /// `b` traverses, as an allocation-free stack value. Empty when
    /// `a == b`; transparent pods contribute no link.
    #[must_use]
    pub fn route_pair(&self, a: HostId, b: HostId) -> Route {
        let mut route = Route::EMPTY;
        if a == b {
            return route;
        }
        route.push(LinkRef::HostNic(a));
        route.push(LinkRef::HostNic(b));
        let la = self.locs[a.index()];
        let lb = self.locs[b.index()];
        if la.rack == lb.rack {
            return route;
        }
        route.push(LinkRef::TorUplink(la.rack));
        route.push(LinkRef::TorUplink(lb.rack));
        if la.pod != lb.pod {
            if la.pod_real {
                route.push(LinkRef::PodUplink(la.pod));
            }
            if lb.pod_real {
                route.push(LinkRef::PodUplink(lb.pod));
            }
        }
        if la.site != lb.site {
            route.push(LinkRef::SiteUplink(la.site));
            route.push(LinkRef::SiteUplink(lb.site));
        }
        route
    }

    /// [`route_pair`](Self::route_pair) collected into a `Vec`, for
    /// callers that want an owned list.
    #[must_use]
    pub fn route(&self, a: HostId, b: HostId) -> Vec<LinkRef> {
        self.route_pair(a, b).as_slice().to_vec()
    }

    /// Like [`route`](Self::route) but appends into a caller-provided
    /// buffer.
    pub fn route_into(&self, a: HostId, b: HostId, out: &mut Vec<LinkRef>) {
        out.extend_from_slice(self.route_pair(a, b).as_slice());
    }

    /// The number of capacity-bearing links between `a` and `b` — the
    /// hop weight used by the objective's bandwidth term.
    #[must_use]
    pub fn hop_cost(&self, a: HostId, b: HostId) -> u64 {
        if a == b {
            return 0;
        }
        let la = self.locs[a.index()];
        let lb = self.locs[b.index()];
        if la.rack == lb.rack {
            return 2;
        }
        let mut cost = 4;
        if la.pod != lb.pod {
            cost += u64::from(la.pod_real) + u64::from(lb.pod_real);
        }
        if la.site != lb.site {
            cost += 2;
        }
        cost
    }

    /// The worst hop cost any flow can incur on this infrastructure;
    /// used to normalize the objective's bandwidth term. Precomputed at
    /// construction.
    #[must_use]
    pub const fn max_hop_cost(&self) -> u64 {
        self.max_hop
    }

    fn compute_max_hop_cost(&self) -> u64 {
        let has_pod_switches = self.pods.iter().any(|p| !p.transparent);
        let mut cost = 4; // NICs + ToR uplinks (cross-rack)
        if has_pod_switches {
            cost += 2;
        }
        if self.sites.len() > 1 {
            cost += 2;
        }
        if self.racks.len() == 1 {
            // A single rack can never pay more than the NIC hops.
            cost = 2;
        }
        if self.hosts.len() == 1 {
            cost = 0;
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::InfrastructureBuilder;

    /// Two sites; site 0 has 2 pods of 2 racks x 2 hosts, site 1 is flat
    /// (transparent pod) with 2 racks x 2 hosts.
    fn infra() -> Infrastructure {
        let mut b = InfrastructureBuilder::new();
        let cap = Resources::new(16, 32_768, 1_000);
        let s0 = b.site("s0", Bandwidth::from_gbps(200));
        for p in 0..2 {
            let pod = b.pod(s0, format!("s0p{p}"), Bandwidth::from_gbps(40)).unwrap();
            for r in 0..2 {
                let rack =
                    b.rack_in_pod(pod, format!("s0p{p}r{r}"), Bandwidth::from_gbps(100)).unwrap();
                for h in 0..2 {
                    b.host(rack, format!("s0p{p}r{r}h{h}"), cap, Bandwidth::from_gbps(10)).unwrap();
                }
            }
        }
        let s1 = b.site("s1", Bandwidth::from_gbps(200));
        for r in 0..2 {
            let rack = b.rack(s1, format!("s1r{r}"), Bandwidth::from_gbps(100)).unwrap();
            for h in 0..2 {
                b.host(rack, format!("s1r{r}h{h}"), cap, Bandwidth::from_gbps(10)).unwrap();
            }
        }
        b.build().unwrap()
    }

    fn h(i: u32) -> HostId {
        HostId::from_index(i)
    }

    #[test]
    fn separation_levels() {
        let i = infra();
        assert_eq!(i.separation(h(0), h(0)), Separation::SameHost);
        assert_eq!(i.separation(h(0), h(1)), Separation::SameRack);
        assert_eq!(i.separation(h(0), h(2)), Separation::SamePod);
        assert_eq!(i.separation(h(0), h(4)), Separation::SameSite);
        assert_eq!(i.separation(h(0), h(8)), Separation::CrossSite);
    }

    #[test]
    fn diversity_checks_match_levels() {
        let i = infra();
        assert!(!i.satisfies_diversity(h(0), h(0), DiversityLevel::Host));
        assert!(i.satisfies_diversity(h(0), h(1), DiversityLevel::Host));
        assert!(!i.satisfies_diversity(h(0), h(1), DiversityLevel::Rack));
        assert!(i.satisfies_diversity(h(0), h(2), DiversityLevel::Rack));
        assert!(!i.satisfies_diversity(h(0), h(2), DiversityLevel::Pod));
        assert!(i.satisfies_diversity(h(0), h(4), DiversityLevel::Pod));
        assert!(!i.satisfies_diversity(h(0), h(4), DiversityLevel::DataCenter));
        assert!(i.satisfies_diversity(h(0), h(8), DiversityLevel::DataCenter));
    }

    #[test]
    fn routes_grow_with_separation() {
        let i = infra();
        assert!(i.route(h(0), h(0)).is_empty());
        // Same rack: both NICs.
        assert_eq!(i.route(h(0), h(1)), vec![LinkRef::HostNic(h(0)), LinkRef::HostNic(h(1))]);
        // Same pod, different rack: NICs + ToR uplinks.
        assert_eq!(i.route(h(0), h(2)).len(), 4);
        // Different pods with real pod switches: + pod uplinks.
        assert_eq!(i.route(h(0), h(4)).len(), 6);
        // Cross-site: + site uplinks; site 1's pod is transparent, so
        // only one pod uplink appears.
        let cross = i.route(h(0), h(8));
        assert_eq!(cross.len(), 7);
        assert!(cross.contains(&LinkRef::SiteUplink(SiteId::from_index(0))));
        assert!(cross.contains(&LinkRef::SiteUplink(SiteId::from_index(1))));
    }

    #[test]
    fn transparent_pod_racks_pay_no_pod_hop() {
        let i = infra();
        // h8 and h10 are in different racks of flat site 1 (same
        // transparent pod): NICs + ToR uplinks only.
        assert_eq!(i.separation(h(8), h(10)), Separation::SamePod);
        assert_eq!(i.route(h(8), h(10)).len(), 4);
        assert_eq!(i.hop_cost(h(8), h(10)), 4);
    }

    #[test]
    fn hop_cost_equals_route_len() {
        let i = infra();
        for a in 0..12u32 {
            for b in 0..12u32 {
                assert_eq!(
                    i.hop_cost(h(a), h(b)),
                    i.route(h(a), h(b)).len() as u64,
                    "hosts {a},{b}"
                );
            }
        }
    }

    #[test]
    fn max_hop_cost_bounds_all_pairs() {
        let i = infra();
        let max = i.max_hop_cost();
        for a in 0..12u32 {
            for b in 0..12u32 {
                assert!(i.hop_cost(h(a), h(b)) <= max);
            }
        }
        assert_eq!(max, 8);
    }

    #[test]
    fn route_pair_matches_route_and_fits_bound() {
        let i = infra();
        for a in 0..12u32 {
            for b in 0..12u32 {
                let pair = i.route_pair(h(a), h(b));
                assert_eq!(pair.as_slice(), i.route(h(a), h(b)).as_slice(), "hosts {a},{b}");
                assert!(pair.len() <= Route::MAX_LEN);
                assert_eq!(pair.len() as u64, i.hop_cost(h(a), h(b)));
                assert_eq!(pair.is_empty(), a == b);
                assert_eq!(pair.iter().count(), pair.len());
            }
        }
    }

    #[test]
    fn serde_round_trip_rebuilds_derived_tables() {
        let i = infra();
        let json = serde_json::to_string(&i).unwrap();
        let back: Infrastructure = serde_json::from_str(&json).unwrap();
        assert_eq!(back, i);
        assert_eq!(back.locs, i.locs);
        assert_eq!(back.max_hop_cost(), i.max_hop_cost());
        // The derived tables stay out of the wire format.
        assert!(!json.contains("locs"));
        assert!(!json.contains("max_hop"));
    }

    #[test]
    fn deserializing_dangling_rack_reference_errors() {
        let i = infra();
        let rack_count = i.racks.len();
        // Point one host at a rack index past the end of the vector.
        let json = serde_json::to_string(&i)
            .unwrap()
            .replace("\"rack\":0", &format!("\"rack\":{}", rack_count + 7));
        let err = serde_json::from_str::<Infrastructure>(&json).unwrap_err();
        assert!(err.to_string().contains("dangling reference"), "got: {err}");
    }

    #[test]
    fn location_is_consistent() {
        let i = infra();
        let (rack, pod, site) = i.location(h(5));
        assert!(i.rack(rack).hosts().contains(&h(5)));
        assert!(i.pod(pod).racks().contains(&rack));
        assert!(i.site(site).pods().contains(&pod));
        assert_eq!(i.host_count(), 12);
    }
}
