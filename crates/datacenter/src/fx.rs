//! A minimal FxHash-style hasher (the rustc/firefox multiply-rotate
//! hash) for the search kernel's hot maps. Keys here are small ids, so
//! SipHash's DoS resistance buys nothing and costs measurably on every
//! overlay lookup.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash word-at-a-time multiply-rotate hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_ne_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_ne_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_apart() {
        let hash = |n: u32| {
            let mut h = FxHasher::default();
            h.write_u32(n);
            h.finish()
        };
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u32 {
            assert!(seen.insert(hash(i)), "collision at {i}");
        }
    }

    #[test]
    fn map_round_trips() {
        let mut map: FxHashMap<u32, &str> = FxHashMap::default();
        map.insert(1, "one");
        map.insert(2, "two");
        assert_eq!(map.get(&1), Some(&"one"));
        assert_eq!(map.remove(&2), Some("two"));
        assert!(!map.contains_key(&2));
    }

    #[test]
    fn byte_stream_tail_is_hashed() {
        let mut a = FxHasher::default();
        a.write(b"abcdefghi");
        let mut b = FxHasher::default();
        b.write(b"abcdefghj");
        assert_ne!(a.finish(), b.finish());
    }
}
