//! Hierarchical data-center substrate for the Ostro placement scheduler.
//!
//! Models the paper's `T_p` (Fig. 3): hosts live in racks behind top-of-rack
//! (ToR) switches, racks group under pod switches, pods connect to a root
//! switch, and multiple data-center *sites* interconnect over a backbone.
//! The pod layer is optional per site — the paper's large-scale simulation
//! uses 150 racks directly under the root switch.
//!
//! Two layers are separated deliberately:
//!
//! * [`Infrastructure`] — the immutable physical structure (who is in which
//!   rack, total capacities).
//! * [`CapacityState`] — the mutable availability bookkeeping (what is left
//!   on each host and each network link), supporting reserve/release with
//!   validation, plus a cheap copy-on-write [`OverlayState`] used by search
//!   algorithms to branch placement hypotheses without cloning the world.
//!
//! # Example
//!
//! ```
//! use ostro_datacenter::{CapacityState, InfrastructureBuilder};
//! use ostro_model::{Bandwidth, Resources};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let infra = InfrastructureBuilder::flat(
//!     "dc",
//!     2,                                  // racks
//!     4,                                  // hosts per rack
//!     Resources::new(16, 32_768, 1_000),  // per-host capacity
//!     Bandwidth::from_gbps(10),           // host NIC
//!     Bandwidth::from_gbps(100),          // ToR uplink
//! )
//! .build()?;
//! let mut state = CapacityState::new(&infra);
//! let host = infra.hosts()[0].id();
//! state.reserve_node(host, Resources::new(4, 8_192, 100))?;
//! assert_eq!(state.available(host).vcpus, 12);
//! # Ok(())
//! # }
//! ```

mod builder;
mod error;
mod fx;
mod ids;
mod overlay;
mod path;
mod spec;
mod state;
mod structure;
mod table;

pub use builder::InfrastructureBuilder;
pub use error::{BuildError, CapacityError};
pub use fx::{FxHashMap, FxHashSet, FxHasher};
pub use ids::{HostId, PodId, RackId, SiteId};
pub use overlay::{OverlayMark, OverlayState};
pub use path::{LinkRef, Separation};
pub use spec::{HostSpec, InfraSpec, PodSpec, RackSpec, SiteSpec};
pub use state::CapacityState;
pub use structure::{Host, Infrastructure, Pod, Rack, Route, Site};
pub use table::CapacityTable;
