//! Declarative infrastructure descriptions: a serde-friendly mirror of
//! [`InfrastructureBuilder`] so data centers can be loaded from JSON
//! files (used by the `ostro-cli` tool and handy for tests).
//!
//! ```
//! use ostro_datacenter::InfraSpec;
//!
//! let spec: InfraSpec = serde_json::from_str(r#"{
//!   "sites": [{
//!     "name": "east",
//!     "backbone_uplink_mbps": 400000,
//!     "pods": [{
//!       "name": "p0",
//!       "uplink_mbps": 200000,
//!       "racks": [{
//!         "name": "r0",
//!         "uplink_mbps": 100000,
//!         "hosts": 4,
//!         "host": {"vcpus": 16, "memory_mb": 32768, "disk_gb": 1000,
//!                   "nic_mbps": 10000}
//!       }]
//!     }]
//!   }]
//! }"#).unwrap();
//! let infra = spec.build().unwrap();
//! assert_eq!(infra.host_count(), 4);
//! ```

use ostro_model::{Bandwidth, Resources};
use serde::{Deserialize, Serialize};

use crate::builder::InfrastructureBuilder;
use crate::error::BuildError;
use crate::structure::Infrastructure;

/// Host template shared by all hosts of one rack spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostSpec {
    /// CPU cores per host.
    pub vcpus: u32,
    /// Memory per host in MiB.
    pub memory_mb: u64,
    /// Disk per host in GiB.
    pub disk_gb: u64,
    /// NIC bandwidth per host in Mbps.
    pub nic_mbps: u64,
}

/// One rack: a count of identical hosts behind a ToR switch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RackSpec {
    /// Rack name (hosts are named `<rack>-h<i>`).
    pub name: String,
    /// ToR uplink capacity in Mbps.
    pub uplink_mbps: u64,
    /// Number of hosts.
    pub hosts: usize,
    /// The host template.
    pub host: HostSpec,
}

/// One pod of racks behind a pod switch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PodSpec {
    /// Pod name.
    pub name: String,
    /// Pod-switch uplink capacity in Mbps.
    pub uplink_mbps: u64,
    /// The racks under this pod.
    pub racks: Vec<RackSpec>,
}

/// One data-center site. Racks may hang off pods or directly off the
/// root switch (`racks`), mirroring the builder's two rack methods.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteSpec {
    /// Site name.
    pub name: String,
    /// Backbone uplink capacity in Mbps (only used with several sites).
    #[serde(default)]
    pub backbone_uplink_mbps: u64,
    /// Pods with pod switches.
    #[serde(default)]
    pub pods: Vec<PodSpec>,
    /// Racks directly under the root switch (no pod layer).
    #[serde(default)]
    pub racks: Vec<RackSpec>,
}

/// A whole infrastructure, ready to [`build`](Self::build).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InfraSpec {
    /// All sites.
    pub sites: Vec<SiteSpec>,
}

impl InfraSpec {
    /// Materializes the spec into an [`Infrastructure`].
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] for empty/duplicate/degenerate specs.
    pub fn build(&self) -> Result<Infrastructure, BuildError> {
        let mut b = InfrastructureBuilder::new();
        for site_spec in &self.sites {
            let site =
                b.site(&site_spec.name, Bandwidth::from_mbps(site_spec.backbone_uplink_mbps));
            let add_rack = |b: &mut InfrastructureBuilder,
                            rack_spec: &RackSpec,
                            pod: Option<crate::ids::PodId>|
             -> Result<(), BuildError> {
                let rack = match pod {
                    Some(pod) => b.rack_in_pod(
                        pod,
                        &rack_spec.name,
                        Bandwidth::from_mbps(rack_spec.uplink_mbps),
                    )?,
                    None => {
                        b.rack(site, &rack_spec.name, Bandwidth::from_mbps(rack_spec.uplink_mbps))?
                    }
                };
                let h = rack_spec.host;
                for i in 0..rack_spec.hosts {
                    b.host(
                        rack,
                        format!("{}-h{i}", rack_spec.name),
                        Resources::new(h.vcpus, h.memory_mb, h.disk_gb),
                        Bandwidth::from_mbps(h.nic_mbps),
                    )?;
                }
                Ok(())
            };
            for pod_spec in &site_spec.pods {
                let pod =
                    b.pod(site, &pod_spec.name, Bandwidth::from_mbps(pod_spec.uplink_mbps))?;
                for rack_spec in &pod_spec.racks {
                    add_rack(&mut b, rack_spec, Some(pod))?;
                }
            }
            for rack_spec in &site_spec.racks {
                add_rack(&mut b, rack_spec, None)?;
            }
        }
        b.build()
    }
}

impl From<&Infrastructure> for InfraSpec {
    /// Extracts a spec from an existing infrastructure (lossy only in
    /// that per-host heterogeneity collapses to each rack's first host,
    /// which is exact for spec-built infrastructures).
    fn from(infra: &Infrastructure) -> Self {
        let rack_spec = |rack: &crate::structure::Rack| -> RackSpec {
            let first = infra.host(rack.hosts()[0]);
            RackSpec {
                name: rack.name().to_owned(),
                uplink_mbps: rack.uplink().as_mbps(),
                hosts: rack.hosts().len(),
                host: HostSpec {
                    vcpus: first.capacity().vcpus,
                    memory_mb: first.capacity().memory_mb,
                    disk_gb: first.capacity().disk_gb,
                    nic_mbps: first.nic().as_mbps(),
                },
            }
        };
        InfraSpec {
            sites: infra
                .sites()
                .iter()
                .map(|site| SiteSpec {
                    name: site.name().to_owned(),
                    backbone_uplink_mbps: site.uplink().as_mbps(),
                    pods: site
                        .pods()
                        .iter()
                        .map(|&p| infra.pod(p))
                        .filter(|p| !p.is_transparent())
                        .map(|pod| PodSpec {
                            name: pod.name().to_owned(),
                            uplink_mbps: pod.uplink().as_mbps(),
                            racks: pod.racks().iter().map(|&r| rack_spec(infra.rack(r))).collect(),
                        })
                        .collect(),
                    racks: site
                        .pods()
                        .iter()
                        .map(|&p| infra.pod(p))
                        .filter(|p| p.is_transparent())
                        .flat_map(|pod| pod.racks().iter().map(|&r| rack_spec(infra.rack(r))))
                        .collect(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> InfraSpec {
        InfraSpec {
            sites: vec![SiteSpec {
                name: "east".into(),
                backbone_uplink_mbps: 400_000,
                pods: vec![PodSpec {
                    name: "p0".into(),
                    uplink_mbps: 200_000,
                    racks: vec![RackSpec {
                        name: "p0r0".into(),
                        uplink_mbps: 100_000,
                        hosts: 3,
                        host: HostSpec {
                            vcpus: 16,
                            memory_mb: 32_768,
                            disk_gb: 1_000,
                            nic_mbps: 10_000,
                        },
                    }],
                }],
                racks: vec![RackSpec {
                    name: "flat-r0".into(),
                    uplink_mbps: 100_000,
                    hosts: 2,
                    host: HostSpec { vcpus: 8, memory_mb: 16_384, disk_gb: 500, nic_mbps: 10_000 },
                }],
            }],
        }
    }

    #[test]
    fn builds_both_podded_and_flat_racks() {
        let infra = spec().build().unwrap();
        assert_eq!(infra.host_count(), 5);
        assert_eq!(infra.racks().len(), 2);
        // One real pod plus the transparent pod for the flat rack.
        assert_eq!(infra.pods().len(), 2);
        assert_eq!(infra.pods().iter().filter(|p| p.is_transparent()).count(), 1);
        assert_eq!(infra.host(crate::HostId::from_index(0)).name(), "p0r0-h0");
        assert_eq!(infra.host(crate::HostId::from_index(3)).name(), "flat-r0-h0");
        assert_eq!(
            infra.host(crate::HostId::from_index(4)).capacity(),
            Resources::new(8, 16_384, 500)
        );
    }

    #[test]
    fn json_round_trips() {
        let original = spec();
        let json = serde_json::to_string_pretty(&original).unwrap();
        let back: InfraSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn spec_extraction_round_trips_through_build() {
        let infra = spec().build().unwrap();
        let extracted = InfraSpec::from(&infra);
        let rebuilt = extracted.build().unwrap();
        assert_eq!(rebuilt, infra);
    }

    #[test]
    fn empty_spec_is_rejected() {
        let empty = InfraSpec { sites: vec![] };
        assert_eq!(empty.build().unwrap_err(), BuildError::NoHosts);
    }

    #[test]
    fn optional_fields_default() {
        let json = r#"{"sites": [{"name": "s",
            "racks": [{"name": "r", "uplink_mbps": 1000, "hosts": 1,
                        "host": {"vcpus": 4, "memory_mb": 4096,
                                  "disk_gb": 100, "nic_mbps": 1000}}]}]}"#;
        let spec: InfraSpec = serde_json::from_str(json).unwrap();
        assert!(spec.sites[0].pods.is_empty());
        assert_eq!(spec.sites[0].backbone_uplink_mbps, 0);
        assert_eq!(spec.build().unwrap().host_count(), 1);
    }
}
