use std::error::Error;
use std::fmt;

use ostro_model::{Bandwidth, Resources};

use crate::ids::HostId;
use crate::path::LinkRef;

/// Errors produced while assembling an [`Infrastructure`](crate::Infrastructure).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// The infrastructure contains no hosts.
    NoHosts,
    /// A site was declared without any racks.
    EmptySite(String),
    /// A rack was declared without any hosts.
    EmptyRack(String),
    /// Two elements at the same level share a name.
    DuplicateName(String),
    /// A host was declared with zero capacity in every dimension.
    ZeroCapacityHost(String),
    /// A host was declared with a zero-bandwidth NIC.
    ZeroNic(String),
    /// A serialized infrastructure references an entity that does not
    /// exist (e.g. a host naming a rack index beyond the rack vector).
    DanglingReference(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoHosts => write!(f, "infrastructure contains no hosts"),
            Self::EmptySite(s) => write!(f, "site `{s}` contains no racks"),
            Self::EmptyRack(r) => write!(f, "rack `{r}` contains no hosts"),
            Self::DuplicateName(n) => write!(f, "duplicate name `{n}`"),
            Self::ZeroCapacityHost(h) => write!(f, "host `{h}` has zero capacity"),
            Self::ZeroNic(h) => write!(f, "host `{h}` has a zero-bandwidth NIC"),
            Self::DanglingReference(what) => write!(f, "dangling reference: {what}"),
        }
    }
}

impl Error for BuildError {}

/// Errors produced by capacity bookkeeping: a reservation that does not
/// fit, or a release that was never reserved.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CapacityError {
    /// A host cannot satisfy a node's resource requirement.
    InsufficientHost {
        /// The host that was asked.
        host: HostId,
        /// What the node needs.
        needed: Resources,
        /// What the host still has.
        available: Resources,
    },
    /// A network link along a flow's path cannot carry the demand.
    InsufficientLink {
        /// The saturated link.
        link: LinkRef,
        /// The bandwidth demanded.
        needed: Bandwidth,
        /// The bandwidth still available on the link.
        available: Bandwidth,
    },
    /// A release exceeded what was reserved on a host.
    ReleaseUnderflowHost(HostId),
    /// A release exceeded what was reserved on a link.
    ReleaseUnderflowLink(LinkRef),
}

impl fmt::Display for CapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InsufficientHost { host, needed, available } => {
                write!(f, "host {host} cannot fit request ({needed}); only {available} available")
            }
            Self::InsufficientLink { link, needed, available } => {
                write!(f, "link {link} cannot carry {needed}; only {available} available")
            }
            Self::ReleaseUnderflowHost(h) => {
                write!(f, "release on host {h} exceeds reserved amount")
            }
            Self::ReleaseUnderflowLink(l) => {
                write!(f, "release on link {l} exceeds reserved amount")
            }
        }
    }
}

impl Error for CapacityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = CapacityError::InsufficientHost {
            host: HostId::from_index(3),
            needed: Resources::new(4, 4096, 0),
            available: Resources::new(2, 8192, 100),
        };
        let s = e.to_string();
        assert!(s.contains("h3"));
        assert!(s.contains("4 vCPU"));
        assert!(BuildError::NoHosts.to_string().contains("no hosts"));
    }
}
