use ostro_model::{Bandwidth, Resources};

use crate::error::CapacityError;
use crate::fx::FxHashMap;
use crate::ids::HostId;
use crate::path::LinkRef;
use crate::state::{link_total, CapacityState};
use crate::structure::Infrastructure;

/// A cheap copy-on-write view over a [`CapacityState`].
///
/// Search algorithms branch thousands of placement hypotheses; cloning
/// the full availability vectors for each would dominate runtime. An
/// overlay records only the *additional* usage of one hypothesis in
/// small hash maps, so cloning costs O(nodes placed so far), not
/// O(hosts in the data center).
///
/// On top of that, every reservation is journaled, so a search can
/// speculatively apply a child expansion and revert it in O(edges of
/// that child) via [`checkpoint`](Self::checkpoint) /
/// [`rollback`](Self::rollback) instead of cloning at all.
///
/// Overlays are additive-only (a hypothesis never un-places a node
/// except by rolling back to a checkpoint); releases happen on the
/// underlying [`CapacityState`] after a decision is committed.
///
/// ```
/// use ostro_datacenter::{CapacityState, InfrastructureBuilder, OverlayState};
/// use ostro_model::{Bandwidth, Resources};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let infra = InfrastructureBuilder::flat(
///     "dc", 1, 2, Resources::new(8, 8_192, 100),
///     Bandwidth::from_gbps(10), Bandwidth::from_gbps(100),
/// ).build()?;
/// let base = CapacityState::new(&infra);
/// let h0 = infra.hosts()[0].id();
///
/// let mut hypothesis = OverlayState::new(&infra, &base);
/// let mark = hypothesis.checkpoint();
/// hypothesis.reserve_node(h0, Resources::new(2, 2_048, 0))?;
/// assert_eq!(hypothesis.available(h0).vcpus, 6);
/// assert_eq!(base.available(h0).vcpus, 8); // base untouched
/// hypothesis.rollback(mark);
/// assert_eq!(hypothesis.available(h0).vcpus, 8); // hypothesis undone
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct OverlayState<'a> {
    infra: &'a Infrastructure,
    base: &'a CapacityState,
    used_host: FxHashMap<HostId, Resources>,
    used_link: FxHashMap<LinkRef, Bandwidth>,
    added_nodes: FxHashMap<HostId, u32>,
    journal: Vec<OverlayOp>,
    /// Process-unique identity of this overlay's journal stream; fresh
    /// on `new`, `clone`, and `fork` so a [`CapacityTable`] cursor from
    /// one overlay can never silently apply to another.
    ///
    /// [`CapacityTable`]: crate::CapacityTable
    generation: u64,
    /// Total journal mutations ever performed: pushes *and* rollback
    /// pops both count. A consumer that saw `(ops, journal_len)` can
    /// tell "appended only" (`Δops == Δlen`) from "rolled back in
    /// between" (`Δops > Δlen`) without scanning anything.
    ops: u64,
}

impl Clone for OverlayState<'_> {
    fn clone(&self) -> Self {
        OverlayState {
            infra: self.infra,
            base: self.base,
            used_host: self.used_host.clone(),
            used_link: self.used_link.clone(),
            added_nodes: self.added_nodes.clone(),
            journal: self.journal.clone(),
            generation: next_generation(),
            ops: self.ops,
        }
    }
}

/// Monotonic source of overlay generations; generation 0 is reserved
/// for "never synced" table cursors.
fn next_generation() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// splitmix64 finalizer: a cheap bijective scrambler for signature
/// construction (group signatures must not collide between "host 3
/// touched twice" and "host 6 touched once" style neighbors).
/// Crate-visible so [`CapacityTable`](crate::CapacityTable) can build
/// bit-identical signature columns.
pub(crate) fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One journaled mutation, inverted on rollback. Crate-visible so
/// [`CapacityTable`](crate::CapacityTable) can replay appended tails.
#[derive(Debug, Clone, Copy)]
pub(crate) enum OverlayOp {
    Host { host: HostId, req: Resources },
    Link { link: LinkRef, amount: Bandwidth },
}

/// A point in an overlay's journal, returned by
/// [`OverlayState::checkpoint`] and consumed by
/// [`OverlayState::rollback`]. Marks must be unwound in LIFO order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverlayMark(usize);

impl<'a> OverlayState<'a> {
    /// An overlay that initially mirrors `base` exactly.
    #[must_use]
    pub fn new(infra: &'a Infrastructure, base: &'a CapacityState) -> Self {
        OverlayState {
            infra,
            base,
            used_host: FxHashMap::default(),
            used_link: FxHashMap::default(),
            added_nodes: FxHashMap::default(),
            journal: Vec::new(),
            generation: next_generation(),
            ops: 0,
        }
    }

    /// The infrastructure this overlay is defined over.
    #[must_use]
    pub fn infrastructure(&self) -> &'a Infrastructure {
        self.infra
    }

    /// The base state this overlay extends.
    #[must_use]
    pub fn base(&self) -> &'a CapacityState {
        self.base
    }

    /// A copy of this overlay that starts its own journal. Equivalent
    /// to `clone()` for every query, but cheaper when the parent has a
    /// long history: the journal is not carried over, so the fork can
    /// only roll back to its own checkpoints.
    #[must_use]
    pub fn fork(&self) -> Self {
        OverlayState {
            infra: self.infra,
            base: self.base,
            used_host: self.used_host.clone(),
            used_link: self.used_link.clone(),
            added_nodes: self.added_nodes.clone(),
            journal: Vec::new(),
            generation: next_generation(),
            ops: 0,
        }
    }

    /// Identity of this overlay's journal stream (see the field docs).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Lifetime count of journal pushes plus rollback pops.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Current journal length (also exposed as [`checkpoint`](Self::checkpoint)).
    #[must_use]
    pub fn journal_len(&self) -> usize {
        self.journal.len()
    }

    /// The journal suffix starting at `from`, for incremental replay.
    pub(crate) fn journal_tail(&self, from: usize) -> &[OverlayOp] {
        &self.journal[from..]
    }

    /// Per-host resource usage entries of this hypothesis.
    pub(crate) fn used_host_entries(&self) -> impl Iterator<Item = (HostId, Resources)> + '_ {
        self.used_host.iter().map(|(&h, &r)| (h, r))
    }

    /// Per-link bandwidth usage entries of this hypothesis.
    pub(crate) fn used_link_entries(&self) -> impl Iterator<Item = (LinkRef, Bandwidth)> + '_ {
        self.used_link.iter().map(|(&l, &b)| (l, b))
    }

    /// Per-host added-node counts of this hypothesis.
    pub(crate) fn added_node_entries(&self) -> impl Iterator<Item = (HostId, u32)> + '_ {
        self.added_nodes.iter().map(|(&h, &c)| (h, c))
    }

    /// Marks the current journal position. Reservations made after the
    /// checkpoint can be reverted with [`rollback`](Self::rollback).
    #[must_use]
    pub fn checkpoint(&self) -> OverlayMark {
        OverlayMark(self.journal.len())
    }

    /// Reverts every reservation made since `mark`, restoring the
    /// overlay to exactly the state observed at the checkpoint.
    ///
    /// Nested marks must be unwound innermost-first; rolling back to an
    /// outer mark discards any inner marks taken after it.
    ///
    /// # Panics
    ///
    /// Panics if `mark` lies beyond the current journal (i.e. it was
    /// already rolled back, or it came from a different overlay).
    pub fn rollback(&mut self, mark: OverlayMark) {
        assert!(
            mark.0 <= self.journal.len(),
            "rollback past the journal: mark {} > len {}",
            mark.0,
            self.journal.len()
        );
        while self.journal.len() > mark.0 {
            self.ops += 1;
            match self.journal.pop().unwrap() {
                OverlayOp::Host { host, req } => {
                    let used = self.used_host.get_mut(&host).expect("journaled host present");
                    *used -= req;
                    let count = self.added_nodes.get_mut(&host).expect("journaled count present");
                    *count -= 1;
                    if *count == 0 {
                        // Drop empty entries: `newly_active_hosts` and
                        // `is_active` key off map membership.
                        self.added_nodes.remove(&host);
                        self.used_host.remove(&host);
                    }
                }
                OverlayOp::Link { link, amount } => {
                    let used = self.used_link.get_mut(&link).expect("journaled link present");
                    *used -= amount;
                    if *used == Bandwidth::ZERO {
                        self.used_link.remove(&link);
                    }
                }
            }
        }
    }

    /// Remaining host-local capacity under this hypothesis.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    #[must_use]
    pub fn available(&self, host: HostId) -> Resources {
        let base = self.base.available(host);
        match self.used_host.get(&host) {
            Some(&extra) => base.saturating_sub(extra),
            None => base,
        }
    }

    /// Remaining bandwidth on a link under this hypothesis.
    ///
    /// # Panics
    ///
    /// Panics if the link's id is out of range.
    #[must_use]
    pub fn link_available(&self, link: LinkRef) -> Bandwidth {
        let base = self.base.link_available(link);
        match self.used_link.get(&link) {
            Some(&extra) => base.saturating_sub(extra),
            None => base,
        }
    }

    /// `true` if the host runs any node, in the base state or in this
    /// hypothesis.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    #[must_use]
    pub fn is_active(&self, host: HostId) -> bool {
        self.base.is_active(host) || self.added_nodes.contains_key(&host)
    }

    /// Number of nodes this hypothesis itself placed on `host`.
    #[must_use]
    pub fn added_node_count(&self, host: HostId) -> u32 {
        self.added_nodes.get(&host).copied().unwrap_or(0)
    }

    /// Mutation epoch of `host`'s availability under this hypothesis:
    /// the number of *live* (not rolled back) node reservations
    /// touching the host. Zero means this overlay never changed the
    /// host, so its availability is exactly the base state's.
    ///
    /// The epoch is bumped only by [`reserve_node`](Self::reserve_node)
    /// — flow reservations change link headroom, not host capacity —
    /// and [`rollback`](Self::rollback) restores it through the op
    /// journal, so an epoch observed before a checkpoint is valid again
    /// after rolling back to it. Heuristic memoization keys off this:
    /// under a fixed placement signature, an unchanged epoch implies
    /// unchanged availability.
    #[must_use]
    pub fn host_epoch(&self, host: HostId) -> u64 {
        u64::from(self.added_node_count(host))
    }

    /// Order-independent signature of the availability *group* `host`
    /// belongs to, for memoizing per-host heuristic evaluations:
    ///
    /// * an untouched host (epoch 0) is grouped by its base
    ///   availability — every idle host with the same remaining
    ///   capacity shares one signature, so one evaluation covers all
    ///   of them;
    /// * a touched host is its own group, keyed by `(host, epoch)` —
    ///   combined with a placement signature this pins its exact
    ///   availability.
    #[must_use]
    pub fn host_group_signature(&self, host: HostId) -> u64 {
        let epoch = self.host_epoch(host);
        if epoch > 0 {
            mix64(mix64(u64::from(host.index() as u32) + 1) ^ epoch)
        } else {
            let avail = self.base.available(host);
            let a = mix64(u64::from(avail.vcpus));
            let b = mix64(a ^ avail.memory_mb);
            mix64(b ^ avail.disk_gb)
        }
    }

    /// Hosts that were idle in the base state but are used by this
    /// hypothesis — the objective's `uc` numerator.
    #[must_use]
    pub fn newly_active_hosts(&self) -> usize {
        self.added_nodes.keys().filter(|&&h| !self.base.is_active(h)).count()
    }

    /// Total additional bandwidth this hypothesis reserved across all
    /// links — its contribution to `ubw`.
    #[must_use]
    pub fn added_reserved_bandwidth(&self) -> Bandwidth {
        self.used_link.values().copied().sum()
    }

    /// Reserves host-local resources for one node under this hypothesis.
    ///
    /// # Errors
    ///
    /// [`CapacityError::InsufficientHost`] if the node does not fit on
    /// top of base usage plus this overlay's usage; the overlay is
    /// unchanged on error.
    pub fn reserve_node(&mut self, host: HostId, req: Resources) -> Result<(), CapacityError> {
        let available = self.available(host);
        if !req.fits_within(&available) {
            return Err(CapacityError::InsufficientHost { host, needed: req, available });
        }
        *self.used_host.entry(host).or_insert(Resources::ZERO) += req;
        *self.added_nodes.entry(host).or_insert(0) += 1;
        self.journal.push(OverlayOp::Host { host, req });
        self.ops += 1;
        Ok(())
    }

    /// Bandwidth remaining along the route between `a` and `b`, or
    /// `None` when `a == b`.
    #[must_use]
    pub fn route_headroom(&self, a: HostId, b: HostId) -> Option<Bandwidth> {
        self.infra.route_pair(a, b).iter().map(|l| self.link_available(l)).min()
    }

    /// `true` if a flow of `demand` fits on every link between `a` and `b`.
    #[must_use]
    pub fn flow_fits(&self, a: HostId, b: HostId, demand: Bandwidth) -> bool {
        match self.route_headroom(a, b) {
            None => true,
            Some(headroom) => demand <= headroom,
        }
    }

    /// Reserves `demand` on every link between `a` and `b` under this
    /// hypothesis.
    ///
    /// # Errors
    ///
    /// [`CapacityError::InsufficientLink`] naming the first saturated
    /// link; the overlay is unchanged on error.
    pub fn reserve_flow(
        &mut self,
        a: HostId,
        b: HostId,
        demand: Bandwidth,
    ) -> Result<(), CapacityError> {
        let route = self.infra.route_pair(a, b);
        for link in route.iter() {
            let available = self.link_available(link);
            if demand > available {
                return Err(CapacityError::InsufficientLink { link, needed: demand, available });
            }
        }
        for link in route.iter() {
            *self.used_link.entry(link).or_insert(Bandwidth::ZERO) += demand;
            self.journal.push(OverlayOp::Link { link, amount: demand });
            self.ops += 1;
        }
        Ok(())
    }

    /// Commits this hypothesis into a real capacity state, which must be
    /// equal to the overlay's base (same usage).
    ///
    /// # Errors
    ///
    /// Propagates the first reservation failure; `target` may then hold
    /// a partial commit, so callers should treat an error as fatal for
    /// that state (in practice this cannot fail when `target` equals
    /// the overlay's base, because every reservation was validated).
    pub fn commit(&self, target: &mut CapacityState) -> Result<(), CapacityError> {
        for (&host, &used) in &self.used_host {
            let avail = target.available(host);
            if !used.fits_within(&avail) {
                return Err(CapacityError::InsufficientHost {
                    host,
                    needed: used,
                    available: avail,
                });
            }
        }
        for (&link, &used) in &self.used_link {
            let available = target.link_available(link);
            if used > available {
                return Err(CapacityError::InsufficientLink { link, needed: used, available });
            }
        }
        for (&host, &used) in &self.used_host {
            let count = self.added_nodes.get(&host).copied().unwrap_or(0);
            target.reserve_node(host, used)?;
            if count > 1 {
                target.bump_node_count(host, count - 1);
            }
        }
        for (&link, &used) in &self.used_link {
            debug_assert!(target.link_available(link) <= link_total(self.infra, link));
            target.debit_link_unchecked(link, used);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::InfrastructureBuilder;
    use crate::ids::RackId;

    fn setup() -> (Infrastructure, CapacityState) {
        let infra = InfrastructureBuilder::flat(
            "dc",
            2,
            2,
            Resources::new(8, 16_384, 500),
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap();
        let state = CapacityState::new(&infra);
        (infra, state)
    }

    fn h(i: u32) -> HostId {
        HostId::from_index(i)
    }

    #[test]
    fn overlay_shadows_base_without_mutating_it() {
        let (infra, base) = setup();
        let mut ov = OverlayState::new(&infra, &base);
        ov.reserve_node(h(0), Resources::new(4, 4_096, 0)).unwrap();
        assert_eq!(ov.available(h(0)).vcpus, 4);
        assert_eq!(base.available(h(0)).vcpus, 8);
        assert!(ov.is_active(h(0)));
        assert!(!base.is_active(h(0)));
        assert_eq!(ov.newly_active_hosts(), 1);
    }

    #[test]
    fn overlay_sees_base_usage() {
        let (infra, mut base) = setup();
        base.reserve_node(h(1), Resources::new(6, 1, 1)).unwrap();
        let mut ov = OverlayState::new(&infra, &base);
        assert!(ov.is_active(h(1)));
        assert_eq!(ov.newly_active_hosts(), 0);
        let err = ov.reserve_node(h(1), Resources::new(3, 1, 1)).unwrap_err();
        assert!(matches!(err, CapacityError::InsufficientHost { .. }));
        ov.reserve_node(h(1), Resources::new(2, 1, 1)).unwrap();
        assert_eq!(ov.newly_active_hosts(), 0);
        assert_eq!(ov.added_node_count(h(1)), 1);
    }

    #[test]
    fn overlay_flow_accounting() {
        let (infra, base) = setup();
        let mut ov = OverlayState::new(&infra, &base);
        let bw = Bandwidth::from_gbps(2);
        ov.reserve_flow(h(0), h(2), bw).unwrap();
        // 2 NICs + 2 ToR uplinks.
        assert_eq!(ov.added_reserved_bandwidth(), Bandwidth::from_gbps(8));
        assert_eq!(ov.link_available(LinkRef::HostNic(h(0))), Bandwidth::from_gbps(8));
        assert_eq!(
            ov.link_available(LinkRef::TorUplink(RackId::from_index(0))),
            Bandwidth::from_gbps(98)
        );
        assert!(ov.flow_fits(h(0), h(2), Bandwidth::from_gbps(8)));
        assert!(!ov.flow_fits(h(0), h(2), Bandwidth::from_gbps(9)));
        assert_eq!(ov.route_headroom(h(0), h(1)), Some(Bandwidth::from_gbps(8)));
    }

    #[test]
    fn overlay_flow_rejection_is_atomic() {
        let (infra, base) = setup();
        let mut ov = OverlayState::new(&infra, &base);
        ov.reserve_flow(h(0), h(1), Bandwidth::from_gbps(10)).unwrap();
        let snapshot = ov.added_reserved_bandwidth();
        assert!(ov.reserve_flow(h(0), h(2), Bandwidth::from_mbps(1)).is_err());
        assert_eq!(ov.added_reserved_bandwidth(), snapshot);
    }

    #[test]
    fn clone_branches_independently() {
        let (infra, base) = setup();
        let mut a = OverlayState::new(&infra, &base);
        a.reserve_node(h(0), Resources::new(2, 2_048, 0)).unwrap();
        let mut b = a.clone();
        b.reserve_node(h(0), Resources::new(2, 2_048, 0)).unwrap();
        assert_eq!(a.available(h(0)).vcpus, 6);
        assert_eq!(b.available(h(0)).vcpus, 4);
    }

    #[test]
    fn fork_branches_independently_with_fresh_journal() {
        let (infra, base) = setup();
        let mut a = OverlayState::new(&infra, &base);
        a.reserve_node(h(0), Resources::new(2, 2_048, 0)).unwrap();
        let mut b = a.fork();
        assert_eq!(b.checkpoint(), OverlayMark(0));
        let mark = b.checkpoint();
        b.reserve_node(h(0), Resources::new(2, 2_048, 0)).unwrap();
        assert_eq!(a.available(h(0)).vcpus, 6);
        assert_eq!(b.available(h(0)).vcpus, 4);
        b.rollback(mark);
        assert_eq!(b.available(h(0)).vcpus, 6);
        assert_eq!(b.added_node_count(h(0)), 1);
    }

    #[test]
    fn rollback_restores_activation_accounting() {
        let (infra, base) = setup();
        let mut ov = OverlayState::new(&infra, &base);
        let mark = ov.checkpoint();
        ov.reserve_node(h(0), Resources::new(1, 1_024, 0)).unwrap();
        ov.reserve_node(h(0), Resources::new(1, 1_024, 0)).unwrap();
        ov.reserve_flow(h(0), h(2), Bandwidth::from_gbps(1)).unwrap();
        assert_eq!(ov.newly_active_hosts(), 1);
        assert_eq!(ov.added_node_count(h(0)), 2);
        ov.rollback(mark);
        assert_eq!(ov.newly_active_hosts(), 0);
        assert_eq!(ov.added_node_count(h(0)), 0);
        assert!(!ov.is_active(h(0)));
        assert_eq!(ov.added_reserved_bandwidth(), Bandwidth::ZERO);
        assert_eq!(ov.available(h(0)), base.available(h(0)));
    }

    #[test]
    fn partial_rollback_keeps_earlier_reservations() {
        let (infra, base) = setup();
        let mut ov = OverlayState::new(&infra, &base);
        ov.reserve_node(h(0), Resources::new(2, 2_048, 0)).unwrap();
        let mark = ov.checkpoint();
        ov.reserve_node(h(0), Resources::new(3, 3_072, 0)).unwrap();
        ov.reserve_node(h(1), Resources::new(1, 1_024, 0)).unwrap();
        ov.rollback(mark);
        assert_eq!(ov.available(h(0)).vcpus, 6);
        assert_eq!(ov.added_node_count(h(0)), 1);
        assert_eq!(ov.added_node_count(h(1)), 0);
        assert!(!ov.is_active(h(1)));
        assert_eq!(ov.newly_active_hosts(), 1);
    }

    #[test]
    #[should_panic(expected = "rollback past the journal")]
    fn stale_mark_panics() {
        let (infra, base) = setup();
        let mut ov = OverlayState::new(&infra, &base);
        ov.reserve_node(h(0), Resources::new(1, 1, 0)).unwrap();
        let mark = ov.checkpoint();
        ov.rollback(OverlayMark(0));
        ov.rollback(mark); // now beyond the journal
    }

    #[test]
    fn commit_transfers_usage_to_real_state() {
        let (infra, mut base) = setup();
        let committed = {
            let snapshot = base.clone();
            let mut ov = OverlayState::new(&infra, &snapshot);
            ov.reserve_node(h(0), Resources::new(4, 4_096, 100)).unwrap();
            ov.reserve_node(h(0), Resources::new(1, 1_024, 0)).unwrap();
            ov.reserve_node(h(2), Resources::new(2, 2_048, 0)).unwrap();
            ov.reserve_flow(h(0), h(2), Bandwidth::from_gbps(1)).unwrap();
            let mut target = snapshot.clone();
            ov.commit(&mut target).unwrap();
            target
        };
        base = committed;
        assert_eq!(base.available(h(0)), Resources::new(3, 11_264, 400));
        assert_eq!(base.node_count(h(0)), 2);
        assert_eq!(base.node_count(h(2)), 1);
        assert_eq!(base.total_reserved_bandwidth(&infra), Bandwidth::from_gbps(4));
    }

    #[test]
    fn epochs_track_availability_mutations_and_rollback() {
        let (infra, base) = setup();
        let mut ov = OverlayState::new(&infra, &base);
        assert_eq!(ov.host_epoch(h(0)), 0);
        let mark = ov.checkpoint();
        ov.reserve_node(h(0), Resources::new(1, 1_024, 0)).unwrap();
        assert_eq!(ov.host_epoch(h(0)), 1);
        let sig_one = ov.host_group_signature(h(0));
        ov.reserve_node(h(0), Resources::new(1, 1_024, 0)).unwrap();
        assert_eq!(ov.host_epoch(h(0)), 2);
        assert_ne!(ov.host_group_signature(h(0)), sig_one);
        // Flow reservations leave host availability — and epochs — alone.
        ov.reserve_flow(h(0), h(2), Bandwidth::from_gbps(1)).unwrap();
        assert_eq!(ov.host_epoch(h(0)), 2);
        ov.rollback(mark);
        assert_eq!(ov.host_epoch(h(0)), 0, "rollback restores the epoch via the journal");
    }

    #[test]
    fn group_signatures_merge_untouched_hosts_and_split_touched_ones() {
        let (infra, mut base) = setup();
        base.reserve_node(h(3), Resources::new(2, 2_048, 0)).unwrap();
        let ov2 = {
            let mut ov = OverlayState::new(&infra, &base);
            ov.reserve_node(h(0), Resources::new(1, 1_024, 0)).unwrap();
            ov
        };
        // Untouched hosts with identical base availability share one group.
        assert_eq!(ov2.host_group_signature(h(1)), ov2.host_group_signature(h(2)));
        // A base-loaded host has different availability, hence a
        // different group, even though its epoch is still zero.
        assert_eq!(ov2.host_epoch(h(3)), 0);
        assert_ne!(ov2.host_group_signature(h(3)), ov2.host_group_signature(h(1)));
        // A touched host is its own group.
        assert_ne!(ov2.host_group_signature(h(0)), ov2.host_group_signature(h(1)));
        // Epoch-restoring rollback restores the signature too.
        let mut ov = ov2.clone();
        let mark = ov.checkpoint();
        let before = ov.host_group_signature(h(1));
        ov.reserve_node(h(1), Resources::new(1, 1, 0)).unwrap();
        assert_ne!(ov.host_group_signature(h(1)), before);
        ov.rollback(mark);
        assert_eq!(ov.host_group_signature(h(1)), before);
    }

    #[test]
    fn same_host_flow_is_free_in_overlay() {
        let (infra, base) = setup();
        let mut ov = OverlayState::new(&infra, &base);
        ov.reserve_flow(h(0), h(0), Bandwidth::from_gbps(1_000)).unwrap();
        assert_eq!(ov.added_reserved_bandwidth(), Bandwidth::ZERO);
    }
}
