//! Structure-of-arrays capacity columns for bulk candidate filtering.
//!
//! The search hot loop asks the same four questions for every host in
//! the data center: does the node's resource request fit, does its NIC
//! demand fit, and do proximity/diversity constraints hold. Answering
//! them through [`OverlayState`] costs a hash probe per host per
//! question. [`CapacityTable`] flattens the *effective* availability
//! (base state minus overlay usage) into contiguous per-resource
//! columns so a scoring kernel can sweep all hosts with branch-free,
//! autovectorization-friendly compares and produce a candidate bitmask.
//!
//! # Sync protocol
//!
//! A table is built against a [`CapacityState`] (all columns mirror the
//! base exactly) and then kept in sync with one overlay at a time via
//! [`sync`](CapacityTable::sync), driven by the overlay's op journal:
//!
//! * same generation, `Δops == Δjournal_len` — the overlay only
//!   *appended* since the last sync; replay the journal tail onto the
//!   columns (O(new ops)).
//! * same generation, `Δops > Δjournal_len` — a rollback happened in
//!   between; the popped ops are gone, so replay is impossible. Rebuild
//!   sparsely: restore every previously-touched column entry from the
//!   base state, then re-apply the overlay's (small) usage maps
//!   (O(touched before + touched now)).
//! * different generation — the table last tracked a different overlay
//!   (or none); same sparse rebuild.
//!
//! Saturating-sub chains compose per dimension
//! (`(b ∸ u1) ∸ u2 == b ∸ (u1 + u2)`), so incremental tail replay and
//! the sparse rebuild land on bit-identical columns — a property test
//! below churns randomly and checks exactly that.
//!
//! The group-signature column reproduces
//! [`OverlayState::host_group_signature`] bit-for-bit so memo keys
//! computed from the table match keys computed through the overlay.

use ostro_model::{Bandwidth, Resources};

use crate::ids::HostId;
use crate::overlay::{mix64, OverlayOp, OverlayState};
use crate::path::LinkRef;
use crate::state::CapacityState;
use crate::structure::Infrastructure;

/// Flat per-host columns of effective availability plus topology
/// coordinates, synced to one [`OverlayState`] at a time.
#[derive(Debug, Clone)]
pub struct CapacityTable {
    // Effective availability: base minus overlay usage, saturating.
    vcpus: Vec<u32>,
    memory_mb: Vec<u64>,
    disk_gb: Vec<u64>,
    nic_mbps: Vec<u64>,
    /// Live overlay node reservations per host (the overlay epoch).
    epoch: Vec<u32>,
    /// Mirror of [`OverlayState::host_group_signature`].
    group_sig: Vec<u64>,
    /// `true` where the host runs nodes in base state or overlay.
    active: Vec<u8>,
    // Topology coordinates, for dense proximity/diversity compares.
    rack: Vec<u32>,
    pod: Vec<u32>,
    site: Vec<u32>,
    /// Hosts whose columns deviate from the base state (plus possibly
    /// some that deviated earlier; cleared lazily on rebuild).
    touched: Vec<u32>,
    touched_flag: Vec<bool>,
    // Sync cursor into the tracked overlay's journal. Generation 0 is
    // reserved: no overlay ever has it, so a fresh table always takes
    // the sparse-rebuild path on first sync.
    generation: u64,
    ops: u64,
    journal_len: usize,
}

impl CapacityTable {
    /// Builds a table mirroring `base` exactly (no overlay usage).
    #[must_use]
    pub fn new(infra: &Infrastructure, base: &CapacityState) -> Self {
        let n = infra.host_count();
        let mut table = CapacityTable {
            vcpus: vec![0; n],
            memory_mb: vec![0; n],
            disk_gb: vec![0; n],
            nic_mbps: vec![0; n],
            epoch: vec![0; n],
            group_sig: vec![0; n],
            active: vec![0; n],
            rack: Vec::with_capacity(n),
            pod: Vec::with_capacity(n),
            site: Vec::with_capacity(n),
            touched: Vec::new(),
            touched_flag: vec![false; n],
            generation: 0,
            ops: 0,
            journal_len: 0,
        };
        for i in 0..n {
            let host = HostId::from_index(i as u32);
            let (rack, pod, site) = infra.location(host);
            table.rack.push(rack.index() as u32);
            table.pod.push(pod.index() as u32);
            table.site.push(site.index() as u32);
            table.load_base(base, i);
        }
        table
    }

    /// Rewrites one host's columns from the base state.
    ///
    /// Used for session dirty-host refresh after commits/releases land
    /// on the underlying [`CapacityState`]. The table must not be
    /// tracking overlay usage on that host (session-shared tables never
    /// are; per-request copies resync from their own overlay instead).
    pub fn refresh_base_host(&mut self, base: &CapacityState, host: HostId) {
        debug_assert!(!self.touched_flag[host.index()], "refreshing an overlay-touched host");
        self.load_base(base, host.index());
    }

    fn load_base(&mut self, base: &CapacityState, i: usize) {
        let host = HostId::from_index(i as u32);
        let avail = base.available(host);
        self.vcpus[i] = avail.vcpus;
        self.memory_mb[i] = avail.memory_mb;
        self.disk_gb[i] = avail.disk_gb;
        self.nic_mbps[i] = base.nic_available(host).as_mbps();
        self.epoch[i] = 0;
        self.group_sig[i] = base_group_signature(avail);
        self.active[i] = u8::from(base.is_active(host));
    }

    /// Brings the columns up to date with `overlay` (see module docs
    /// for the journal-cursor protocol).
    pub fn sync(&mut self, overlay: &OverlayState<'_>) {
        let generation = overlay.generation();
        let ops = overlay.ops();
        let journal_len = overlay.journal_len();
        if generation == self.generation {
            if ops == self.ops {
                return; // Nothing happened since the last sync.
            }
            let appended_only = journal_len >= self.journal_len
                && ops - self.ops == (journal_len - self.journal_len) as u64;
            if appended_only {
                for &op in overlay.journal_tail(self.journal_len) {
                    self.apply(op);
                }
                self.ops = ops;
                self.journal_len = journal_len;
                return;
            }
        }
        self.rebuild(overlay);
        self.generation = generation;
        self.ops = ops;
        self.journal_len = journal_len;
    }

    /// Applies one journaled reservation to the columns.
    fn apply(&mut self, op: OverlayOp) {
        match op {
            OverlayOp::Host { host, req } => {
                let i = host.index();
                self.vcpus[i] = self.vcpus[i].saturating_sub(req.vcpus);
                self.memory_mb[i] = self.memory_mb[i].saturating_sub(req.memory_mb);
                self.disk_gb[i] = self.disk_gb[i].saturating_sub(req.disk_gb);
                self.epoch[i] += 1;
                self.group_sig[i] = touched_group_signature(host, u64::from(self.epoch[i]));
                self.active[i] = 1;
                self.mark_touched(i);
            }
            OverlayOp::Link { link: LinkRef::HostNic(host), amount } => {
                let i = host.index();
                self.nic_mbps[i] = self.nic_mbps[i].saturating_sub(amount.as_mbps());
                self.mark_touched(i);
            }
            // ToR/pod/site uplinks have no per-host column.
            OverlayOp::Link { .. } => {}
        }
    }

    /// Sparse rebuild: restore touched hosts to base, then re-apply the
    /// overlay's usage maps.
    fn rebuild(&mut self, overlay: &OverlayState<'_>) {
        let base = overlay.base();
        for i in std::mem::take(&mut self.touched) {
            let i = i as usize;
            self.touched_flag[i] = false;
            self.load_base(base, i);
        }
        for (host, used) in overlay.used_host_entries() {
            let i = host.index();
            self.vcpus[i] = self.vcpus[i].saturating_sub(used.vcpus);
            self.memory_mb[i] = self.memory_mb[i].saturating_sub(used.memory_mb);
            self.disk_gb[i] = self.disk_gb[i].saturating_sub(used.disk_gb);
            self.mark_touched(i);
        }
        for (host, count) in overlay.added_node_entries() {
            let i = host.index();
            self.epoch[i] = count;
            self.group_sig[i] = touched_group_signature(host, u64::from(count));
            self.active[i] = 1;
            self.mark_touched(i);
        }
        for (link, used) in overlay.used_link_entries() {
            if let LinkRef::HostNic(host) = link {
                let i = host.index();
                self.nic_mbps[i] = self.nic_mbps[i].saturating_sub(used.as_mbps());
                self.mark_touched(i);
            }
        }
    }

    fn mark_touched(&mut self, i: usize) {
        if !self.touched_flag[i] {
            self.touched_flag[i] = true;
            self.touched.push(i as u32);
        }
    }

    /// Number of hosts (the length of every column).
    #[must_use]
    pub fn host_count(&self) -> usize {
        self.vcpus.len()
    }

    /// Effective available vCPUs per host.
    #[must_use]
    pub fn vcpus(&self) -> &[u32] {
        &self.vcpus
    }

    /// Effective available memory (MB) per host.
    #[must_use]
    pub fn memory_mb(&self) -> &[u64] {
        &self.memory_mb
    }

    /// Effective available disk (GB) per host.
    #[must_use]
    pub fn disk_gb(&self) -> &[u64] {
        &self.disk_gb
    }

    /// Effective available NIC bandwidth (Mbps) per host.
    #[must_use]
    pub fn nic_mbps(&self) -> &[u64] {
        &self.nic_mbps
    }

    /// Overlay epoch (live node reservations) per host.
    #[must_use]
    pub fn epochs(&self) -> &[u32] {
        &self.epoch
    }

    /// Availability-group signatures, bit-identical to
    /// [`OverlayState::host_group_signature`] as of the last `sync`.
    #[must_use]
    pub fn group_sigs(&self) -> &[u64] {
        &self.group_sig
    }

    /// Group signature of one host.
    #[must_use]
    pub fn group_sig(&self, host: HostId) -> u64 {
        self.group_sig[host.index()]
    }

    /// Host activity (1 where any node runs, base or overlay).
    #[must_use]
    pub fn active(&self) -> &[u8] {
        &self.active
    }

    /// Rack index per host.
    #[must_use]
    pub fn racks(&self) -> &[u32] {
        &self.rack
    }

    /// Pod index per host.
    #[must_use]
    pub fn pods(&self) -> &[u32] {
        &self.pod
    }

    /// Site index per host.
    #[must_use]
    pub fn sites(&self) -> &[u32] {
        &self.site
    }

    /// Effective availability of one host as a [`Resources`] bundle.
    #[must_use]
    pub fn available(&self, host: HostId) -> Resources {
        let i = host.index();
        Resources::new(self.vcpus[i], self.memory_mb[i], self.disk_gb[i])
    }

    /// Effective NIC headroom of one host.
    #[must_use]
    pub fn nic_available(&self, host: HostId) -> Bandwidth {
        Bandwidth::from_mbps(self.nic_mbps[host.index()])
    }
}

/// Epoch-0 group signature: the base-availability chain from
/// [`OverlayState::host_group_signature`].
fn base_group_signature(avail: Resources) -> u64 {
    let a = mix64(u64::from(avail.vcpus));
    let b = mix64(a ^ avail.memory_mb);
    mix64(b ^ avail.disk_gb)
}

/// Touched-host group signature (`epoch > 0`), mirroring
/// [`OverlayState::host_group_signature`].
fn touched_group_signature(host: HostId, epoch: u64) -> u64 {
    mix64(mix64(u64::from(host.index() as u32) + 1) ^ epoch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::InfrastructureBuilder;
    use crate::path::LinkRef;

    fn setup() -> (Infrastructure, CapacityState) {
        let infra = InfrastructureBuilder::flat(
            "dc",
            4,
            8,
            Resources::new(16, 32_768, 1_000),
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap();
        let state = CapacityState::new(&infra);
        (infra, state)
    }

    fn h(i: u32) -> HostId {
        HostId::from_index(i)
    }

    /// Full-table equality against the ground truth: every column entry
    /// must match what the overlay (or base) reports host by host.
    fn assert_matches_overlay(table: &CapacityTable, infra: &Infrastructure, ov: &OverlayState) {
        for i in 0..infra.host_count() {
            let host = h(i as u32);
            let avail = ov.available(host);
            assert_eq!(table.available(host), avail, "host {i} resources");
            assert_eq!(
                table.nic_available(host),
                ov.link_available(LinkRef::HostNic(host)),
                "host {i} nic"
            );
            assert_eq!(u64::from(table.epochs()[i]), ov.host_epoch(host), "host {i} epoch");
            assert_eq!(table.group_sig(host), ov.host_group_signature(host), "host {i} sig");
            assert_eq!(table.active()[i] != 0, ov.is_active(host), "host {i} active");
            let (rack, pod, site) = infra.location(host);
            assert_eq!(table.racks()[i], rack.index() as u32);
            assert_eq!(table.pods()[i], pod.index() as u32);
            assert_eq!(table.sites()[i], site.index() as u32);
        }
    }

    #[test]
    fn fresh_table_mirrors_base() {
        let (infra, mut base) = setup();
        base.reserve_node(h(3), Resources::new(4, 4_096, 100)).unwrap();
        let table = CapacityTable::new(&infra, &base);
        let ov = OverlayState::new(&infra, &base);
        assert_matches_overlay(&table, &infra, &ov);
    }

    #[test]
    fn sync_replays_appended_journal_tail() {
        let (infra, base) = setup();
        let mut table = CapacityTable::new(&infra, &base);
        let mut ov = OverlayState::new(&infra, &base);
        ov.reserve_node(h(0), Resources::new(2, 2_048, 50)).unwrap();
        table.sync(&ov);
        assert_matches_overlay(&table, &infra, &ov);
        // Incremental: only the new tail is applied.
        ov.reserve_node(h(0), Resources::new(1, 1_024, 0)).unwrap();
        ov.reserve_flow(h(0), h(9), Bandwidth::from_gbps(2)).unwrap();
        table.sync(&ov);
        assert_matches_overlay(&table, &infra, &ov);
    }

    #[test]
    fn sync_survives_rollback_via_sparse_rebuild() {
        let (infra, base) = setup();
        let mut table = CapacityTable::new(&infra, &base);
        let mut ov = OverlayState::new(&infra, &base);
        ov.reserve_node(h(1), Resources::new(4, 4_096, 0)).unwrap();
        let mark = ov.checkpoint();
        ov.reserve_node(h(2), Resources::new(8, 8_192, 200)).unwrap();
        ov.reserve_flow(h(1), h(2), Bandwidth::from_gbps(3)).unwrap();
        table.sync(&ov);
        assert_matches_overlay(&table, &infra, &ov);
        ov.rollback(mark);
        table.sync(&ov);
        assert_matches_overlay(&table, &infra, &ov);
        // Rollback plus fresh appends in between syncs also degrade to
        // the sparse rebuild (Δops > Δlen), and still land exactly.
        let mark = ov.checkpoint();
        ov.reserve_node(h(2), Resources::new(1, 1, 1)).unwrap();
        ov.rollback(mark);
        ov.reserve_node(h(3), Resources::new(2, 2_048, 0)).unwrap();
        table.sync(&ov);
        assert_matches_overlay(&table, &infra, &ov);
    }

    #[test]
    fn sync_detects_overlay_switch_by_generation() {
        let (infra, base) = setup();
        let mut table = CapacityTable::new(&infra, &base);
        let mut a = OverlayState::new(&infra, &base);
        a.reserve_node(h(0), Resources::new(8, 8_192, 0)).unwrap();
        table.sync(&a);
        let mut b = OverlayState::new(&infra, &base);
        b.reserve_node(h(5), Resources::new(2, 2_048, 0)).unwrap();
        table.sync(&b);
        assert_matches_overlay(&table, &infra, &b);
        // Clones and forks get fresh generations, so a table synced to
        // the parent never mistakes the child's journal for its own.
        let mut c = b.clone();
        c.reserve_node(h(5), Resources::new(2, 2_048, 0)).unwrap();
        table.sync(&c);
        assert_matches_overlay(&table, &infra, &c);
        let mut d = c.fork();
        d.reserve_node(h(6), Resources::new(1, 1_024, 0)).unwrap();
        table.sync(&d);
        assert_matches_overlay(&table, &infra, &d);
    }

    #[test]
    fn refresh_base_host_tracks_state_mutations() {
        let (infra, mut base) = setup();
        let mut table = CapacityTable::new(&infra, &base);
        base.reserve_node(h(7), Resources::new(6, 6_144, 300)).unwrap();
        table.refresh_base_host(&base, h(7));
        let ov = OverlayState::new(&infra, &base);
        assert_matches_overlay(&table, &infra, &ov);
        base.release_node(&infra, h(7), Resources::new(6, 6_144, 300)).unwrap();
        table.refresh_base_host(&base, h(7));
        let ov = OverlayState::new(&infra, &base);
        assert_matches_overlay(&table, &infra, &ov);
    }

    /// Randomized churn: interleaved reserves, flows, rollbacks, and
    /// overlay switches; after every sync the columns must be
    /// bit-identical to a freshly built table put through one sync.
    #[test]
    fn columns_match_fresh_rebuild_under_random_churn() {
        let (infra, base) = setup();
        let mut table = CapacityTable::new(&infra, &base);
        let mut ov = OverlayState::new(&infra, &base);
        let mut marks = Vec::new();
        let mut rng = 0x5EED_u64;
        let mut next = |bound: u64| {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (rng >> 33) % bound
        };
        for step in 0..400 {
            match next(10) {
                0..=3 => {
                    let host = h(next(infra.host_count() as u64) as u32);
                    let req =
                        Resources::new(next(4) as u32 + 1, 1_024 * (next(4) + 1), 10 * next(5));
                    let _ = ov.reserve_node(host, req);
                }
                4..=5 => {
                    let a = h(next(infra.host_count() as u64) as u32);
                    let b = h(next(infra.host_count() as u64) as u32);
                    let _ = ov.reserve_flow(a, b, Bandwidth::from_mbps(50 * (next(8) + 1)));
                }
                6 => marks.push(ov.checkpoint()),
                7 => {
                    if let Some(mark) = marks.pop() {
                        ov.rollback(mark);
                    }
                }
                8 => {
                    ov = ov.fork();
                    marks.clear();
                }
                _ => {
                    ov = ov.clone();
                    // Clone keeps the journal, so old marks stay valid.
                }
            }
            if step % 7 == 0 {
                table.sync(&ov);
                let mut fresh = CapacityTable::new(&infra, &base);
                fresh.sync(&ov);
                assert_eq!(table.vcpus(), fresh.vcpus(), "step {step}");
                assert_eq!(table.memory_mb(), fresh.memory_mb(), "step {step}");
                assert_eq!(table.disk_gb(), fresh.disk_gb(), "step {step}");
                assert_eq!(table.nic_mbps(), fresh.nic_mbps(), "step {step}");
                assert_eq!(table.epochs(), fresh.epochs(), "step {step}");
                assert_eq!(table.group_sigs(), fresh.group_sigs(), "step {step}");
                assert_eq!(table.active(), fresh.active(), "step {step}");
                assert_matches_overlay(&table, &infra, &ov);
            }
        }
    }
}
