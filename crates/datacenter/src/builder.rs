use std::collections::HashSet;

use ostro_model::{Bandwidth, Resources};

use crate::error::BuildError;
use crate::ids::{HostId, PodId, RackId, SiteId};
use crate::structure::{Host, Infrastructure, Pod, Rack, Site};

/// Incremental constructor for [`Infrastructure`].
///
/// Supports both a full host → rack → pod → root hierarchy and flat
/// sites where racks hang directly off the root switch (the paper's
/// simulated data center); in the latter case racks are grouped under a
/// per-site *transparent* pod that carries no capacity and no hops.
///
/// ```
/// use ostro_datacenter::InfrastructureBuilder;
/// use ostro_model::{Bandwidth, Resources};
///
/// # fn main() -> Result<(), ostro_datacenter::BuildError> {
/// let mut b = InfrastructureBuilder::new();
/// let site = b.site("east", Bandwidth::from_gbps(400));
/// let rack = b.rack(site, "r0", Bandwidth::from_gbps(100))?;
/// b.host(rack, "h0", Resources::new(16, 32_768, 1_000), Bandwidth::from_gbps(10))?;
/// let infra = b.build()?;
/// assert_eq!(infra.host_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct InfrastructureBuilder {
    sites: Vec<Site>,
    pods: Vec<Pod>,
    racks: Vec<Rack>,
    hosts: Vec<Host>,
    transparent_pod: Vec<Option<PodId>>, // per site
    names: HashSet<String>,
}

impl InfrastructureBuilder {
    /// Starts an empty infrastructure.
    #[must_use]
    pub fn new() -> Self {
        InfrastructureBuilder::default()
    }

    /// Convenience constructor for the common single-site flat layout:
    /// `racks` racks of `hosts_per_rack` identical hosts, no pod layer.
    ///
    /// # Panics
    ///
    /// Panics if names collide, which cannot happen for the generated
    /// names.
    #[must_use]
    pub fn flat(
        site_name: &str,
        racks: usize,
        hosts_per_rack: usize,
        host_capacity: Resources,
        nic: Bandwidth,
        tor_uplink: Bandwidth,
    ) -> Self {
        let mut b = InfrastructureBuilder::new();
        let site = b.site(site_name, Bandwidth::ZERO);
        for r in 0..racks {
            let rack = b
                .rack(site, format!("{site_name}-r{r}"), tor_uplink)
                .expect("generated rack names are unique");
            for h in 0..hosts_per_rack {
                b.host(rack, format!("{site_name}-r{r}-h{h}"), host_capacity, nic)
                    .expect("generated host names are unique");
            }
        }
        b
    }

    fn claim_name(&mut self, name: &str) -> Result<(), BuildError> {
        if !self.names.insert(name.to_owned()) {
            return Err(BuildError::DuplicateName(name.to_owned()));
        }
        Ok(())
    }

    /// Adds a data-center site with the given backbone uplink capacity.
    /// The uplink only matters when more than one site exists.
    pub fn site(&mut self, name: impl Into<String>, uplink: Bandwidth) -> SiteId {
        let name = name.into();
        let id = SiteId(self.sites.len() as u32);
        // Site names share the global namespace but a duplicate is
        // caught at build() to keep this constructor infallible.
        self.sites.push(Site { id, name, uplink, pods: Vec::new() });
        self.transparent_pod.push(None);
        id
    }

    /// Adds a pod (pod switch) to a site.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::DuplicateName`] on a name collision.
    pub fn pod(
        &mut self,
        site: SiteId,
        name: impl Into<String>,
        uplink: Bandwidth,
    ) -> Result<PodId, BuildError> {
        let name = name.into();
        self.claim_name(&name)?;
        let id = PodId(self.pods.len() as u32);
        self.pods.push(Pod { id, name, site, uplink, transparent: false, racks: Vec::new() });
        self.sites[site.index()].pods.push(id);
        Ok(id)
    }

    /// Adds a rack directly under a site's root switch (no pod switch);
    /// the rack joins the site's transparent pod.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::DuplicateName`] on a name collision.
    pub fn rack(
        &mut self,
        site: SiteId,
        name: impl Into<String>,
        uplink: Bandwidth,
    ) -> Result<RackId, BuildError> {
        let pod = match self.transparent_pod[site.index()] {
            Some(p) => p,
            None => {
                let id = PodId(self.pods.len() as u32);
                self.pods.push(Pod {
                    id,
                    name: format!("{}-root", self.sites[site.index()].name),
                    site,
                    uplink: Bandwidth::ZERO,
                    transparent: true,
                    racks: Vec::new(),
                });
                self.sites[site.index()].pods.push(id);
                self.transparent_pod[site.index()] = Some(id);
                id
            }
        };
        self.rack_in_pod(pod, name, uplink)
    }

    /// Adds a rack under an explicit pod.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::DuplicateName`] on a name collision.
    pub fn rack_in_pod(
        &mut self,
        pod: PodId,
        name: impl Into<String>,
        uplink: Bandwidth,
    ) -> Result<RackId, BuildError> {
        let name = name.into();
        self.claim_name(&name)?;
        let id = RackId(self.racks.len() as u32);
        self.racks.push(Rack { id, name, pod, uplink, hosts: Vec::new() });
        self.pods[pod.index()].racks.push(id);
        Ok(id)
    }

    /// Adds a host to a rack.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::DuplicateName`], [`BuildError::ZeroCapacityHost`],
    /// or [`BuildError::ZeroNic`].
    pub fn host(
        &mut self,
        rack: RackId,
        name: impl Into<String>,
        capacity: Resources,
        nic: Bandwidth,
    ) -> Result<HostId, BuildError> {
        let name = name.into();
        if capacity.is_zero() {
            return Err(BuildError::ZeroCapacityHost(name));
        }
        if nic.is_zero() {
            return Err(BuildError::ZeroNic(name));
        }
        self.claim_name(&name)?;
        let id = HostId(self.hosts.len() as u32);
        self.hosts.push(Host { id, name, rack, capacity, nic });
        self.racks[rack.index()].hosts.push(id);
        Ok(id)
    }

    /// Finalizes the infrastructure.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::NoHosts`], [`BuildError::EmptySite`],
    /// [`BuildError::EmptyRack`], or [`BuildError::DuplicateName`] (for
    /// site names, which are checked here).
    pub fn build(self) -> Result<Infrastructure, BuildError> {
        if self.hosts.is_empty() {
            return Err(BuildError::NoHosts);
        }
        let mut site_names = HashSet::new();
        for site in &self.sites {
            if !site_names.insert(site.name.clone()) {
                return Err(BuildError::DuplicateName(site.name.clone()));
            }
            if site.pods.is_empty() {
                return Err(BuildError::EmptySite(site.name.clone()));
            }
        }
        for rack in &self.racks {
            if rack.hosts.is_empty() {
                return Err(BuildError::EmptyRack(rack.name.clone()));
            }
        }
        Ok(Infrastructure::assemble(self.sites, self.pods, self.racks, self.hosts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap() -> Resources {
        Resources::new(8, 16_384, 500)
    }

    #[test]
    fn flat_layout_generates_transparent_pod() {
        let infra = InfrastructureBuilder::flat(
            "dc",
            3,
            4,
            cap(),
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap();
        assert_eq!(infra.host_count(), 12);
        assert_eq!(infra.racks().len(), 3);
        assert_eq!(infra.pods().len(), 1);
        assert!(infra.pods()[0].is_transparent());
        assert_eq!(infra.sites().len(), 1);
        assert_eq!(infra.max_hop_cost(), 4);
    }

    #[test]
    fn rejects_empty_structures() {
        assert_eq!(InfrastructureBuilder::new().build().unwrap_err(), BuildError::NoHosts);

        let mut b = InfrastructureBuilder::new();
        let s = b.site("s", Bandwidth::ZERO);
        let _r = b.rack(s, "r", Bandwidth::from_gbps(1)).unwrap();
        // Rack without hosts is rejected even though a host exists elsewhere.
        let r2 = b.rack(s, "r2", Bandwidth::from_gbps(1)).unwrap();
        b.host(r2, "h", cap(), Bandwidth::from_gbps(1)).unwrap();
        assert_eq!(b.build().unwrap_err(), BuildError::EmptyRack("r".into()));
    }

    #[test]
    fn rejects_empty_site() {
        let mut b = InfrastructureBuilder::new();
        let s = b.site("good", Bandwidth::ZERO);
        let r = b.rack(s, "r", Bandwidth::from_gbps(1)).unwrap();
        b.host(r, "h", cap(), Bandwidth::from_gbps(1)).unwrap();
        b.site("empty", Bandwidth::ZERO);
        assert_eq!(b.build().unwrap_err(), BuildError::EmptySite("empty".into()));
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut b = InfrastructureBuilder::new();
        let s = b.site("s", Bandwidth::ZERO);
        let r = b.rack(s, "x", Bandwidth::from_gbps(1)).unwrap();
        assert_eq!(
            b.host(r, "x", cap(), Bandwidth::from_gbps(1)).unwrap_err(),
            BuildError::DuplicateName("x".into())
        );
        let mut b2 = InfrastructureBuilder::new();
        let s1 = b2.site("dup", Bandwidth::ZERO);
        b2.site("dup", Bandwidth::ZERO);
        let r = b2.rack(s1, "r", Bandwidth::from_gbps(1)).unwrap();
        b2.host(r, "h", cap(), Bandwidth::from_gbps(1)).unwrap();
        assert_eq!(b2.build().unwrap_err(), BuildError::DuplicateName("dup".into()));
    }

    #[test]
    fn rejects_degenerate_hosts() {
        let mut b = InfrastructureBuilder::new();
        let s = b.site("s", Bandwidth::ZERO);
        let r = b.rack(s, "r", Bandwidth::from_gbps(1)).unwrap();
        assert_eq!(
            b.host(r, "h", Resources::ZERO, Bandwidth::from_gbps(1)).unwrap_err(),
            BuildError::ZeroCapacityHost("h".into())
        );
        assert_eq!(
            b.host(r, "h", cap(), Bandwidth::ZERO).unwrap_err(),
            BuildError::ZeroNic("h".into())
        );
    }

    #[test]
    fn mixed_flat_and_podded_racks_in_one_site() {
        let mut b = InfrastructureBuilder::new();
        let s = b.site("s", Bandwidth::ZERO);
        let pod = b.pod(s, "p0", Bandwidth::from_gbps(40)).unwrap();
        let r0 = b.rack_in_pod(pod, "r0", Bandwidth::from_gbps(100)).unwrap();
        let r1 = b.rack(s, "r1", Bandwidth::from_gbps(100)).unwrap();
        b.host(r0, "h0", cap(), Bandwidth::from_gbps(10)).unwrap();
        b.host(r1, "h1", cap(), Bandwidth::from_gbps(10)).unwrap();
        let infra = b.build().unwrap();
        assert_eq!(infra.pods().len(), 2);
        assert_eq!(infra.pods().iter().filter(|p| p.is_transparent()).count(), 1);
        // Cross-pod path includes only the non-transparent pod's uplink.
        let route = infra.route(HostId::from_index(0), HostId::from_index(1));
        assert_eq!(route.len(), 5);
    }
}
