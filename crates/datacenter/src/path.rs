use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::{HostId, PodId, RackId, SiteId};

/// How far apart two hosts sit in the physical hierarchy.
///
/// Ordered from closest to farthest; useful for comparisons like
/// "at least rack-separated".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Separation {
    /// The very same host.
    SameHost,
    /// Different hosts behind one ToR switch.
    SameRack,
    /// Different racks under one pod.
    SamePod,
    /// Different pods within one site.
    SameSite,
    /// Different data-center sites.
    CrossSite,
}

impl fmt::Display for Separation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Separation::SameHost => "same host",
            Separation::SameRack => "same rack",
            Separation::SamePod => "same pod",
            Separation::SameSite => "same site",
            Separation::CrossSite => "cross-site",
        };
        f.write_str(s)
    }
}

/// One capacity-bearing network link in the hierarchy.
///
/// A flow's route is a set of these; reserving a flow decrements the
/// available bandwidth on each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LinkRef {
    /// The NIC connecting a host to its ToR switch.
    HostNic(HostId),
    /// The uplink from a ToR switch to its parent (pod or root).
    TorUplink(RackId),
    /// The uplink from a pod switch to the site's root switch.
    PodUplink(PodId),
    /// The uplink from a site's root switch to the inter-site backbone.
    SiteUplink(SiteId),
}

impl fmt::Display for LinkRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkRef::HostNic(h) => write!(f, "nic({h})"),
            LinkRef::TorUplink(r) => write!(f, "tor({r})"),
            LinkRef::PodUplink(p) => write!(f, "pod({p})"),
            LinkRef::SiteUplink(s) => write!(f, "site({s})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separation_is_ordered_near_to_far() {
        assert!(Separation::SameHost < Separation::SameRack);
        assert!(Separation::SameRack < Separation::SamePod);
        assert!(Separation::SamePod < Separation::SameSite);
        assert!(Separation::SameSite < Separation::CrossSite);
        assert_eq!(Separation::SamePod.to_string(), "same pod");
    }

    #[test]
    fn link_display() {
        assert_eq!(LinkRef::HostNic(HostId::from_index(2)).to_string(), "nic(h2)");
        assert_eq!(LinkRef::TorUplink(RackId::from_index(1)).to_string(), "tor(rack1)");
        assert_eq!(LinkRef::PodUplink(PodId::from_index(0)).to_string(), "pod(pod0)");
        assert_eq!(LinkRef::SiteUplink(SiteId::from_index(3)).to_string(), "site(site3)");
    }
}
