//! Randomized property tests for the capacity-accounting substrate:
//! routing invariants, reserve/release round trips, overlay/base
//! agreement, and delta-undo (checkpoint/rollback) equivalence.
//!
//! Cases are generated from a seeded [`SmallRng`], so every run checks
//! the same corpus deterministically.

use ostro_datacenter::{
    CapacityState, HostId, Infrastructure, InfrastructureBuilder, LinkRef, OverlayState,
};
use ostro_model::{Bandwidth, Resources};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

fn random_infra(rng: &mut SmallRng) -> Infrastructure {
    let sites = rng.gen_range(1usize..4);
    let racks = rng.gen_range(1usize..4);
    let hosts = rng.gen_range(1usize..5);
    let mut b = InfrastructureBuilder::new();
    for s in 0..sites {
        let site = b.site(format!("s{s}"), Bandwidth::from_gbps(100));
        for r in 0..racks {
            let rack = b.rack(site, format!("s{s}r{r}"), Bandwidth::from_gbps(40)).unwrap();
            for h in 0..hosts {
                b.host(
                    rack,
                    format!("s{s}r{r}h{h}"),
                    Resources::new(16, 32_768, 1_000),
                    Bandwidth::from_gbps(10),
                )
                .unwrap();
            }
        }
    }
    b.build().unwrap()
}

/// Routes are symmetric and their length equals the hop cost used by
/// the objective, for every host pair.
#[test]
fn routes_are_symmetric_and_cost_consistent() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xdc00_0000 + case);
        let infra = random_infra(&mut rng);
        let n = infra.host_count() as u32;
        for a in 0..n {
            for b in 0..n {
                let (ha, hb) = (HostId::from_index(a), HostId::from_index(b));
                let mut r1 = infra.route(ha, hb);
                let mut r2 = infra.route(hb, ha);
                r1.sort();
                r2.sort();
                assert_eq!(r1, r2, "case {case}: {a},{b}");
                assert_eq!(r1.len() as u64, infra.hop_cost(ha, hb), "case {case}");
                assert!(infra.hop_cost(ha, hb) <= infra.max_hop_cost(), "case {case}");
            }
        }
    }
}

/// Separation is symmetric and consistent with diversity checks.
#[test]
fn separation_and_diversity_agree() {
    use ostro_datacenter::Separation as S;
    use ostro_model::DiversityLevel as L;
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xdc00_1000 + case);
        let infra = random_infra(&mut rng);
        let n = infra.host_count() as u32;
        for a in 0..n {
            for b in 0..n {
                let (ha, hb) = (HostId::from_index(a), HostId::from_index(b));
                let sep = infra.separation(ha, hb);
                assert_eq!(sep, infra.separation(hb, ha), "case {case}");
                assert_eq!(
                    infra.satisfies_diversity(ha, hb, L::Host),
                    sep >= S::SameRack,
                    "case {case}"
                );
                assert_eq!(
                    infra.satisfies_diversity(ha, hb, L::Rack),
                    sep >= S::SamePod,
                    "case {case}"
                );
                assert_eq!(
                    infra.satisfies_diversity(ha, hb, L::Pod),
                    sep >= S::SameSite,
                    "case {case}"
                );
                assert_eq!(
                    infra.satisfies_diversity(ha, hb, L::DataCenter),
                    sep >= S::CrossSite,
                    "case {case}"
                );
            }
        }
    }
}

/// A random interleaving of node and flow reservations, fully released
/// in reverse, restores the pristine state.
#[test]
fn reserve_release_round_trips() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xdc00_2000 + case);
        let infra = random_infra(&mut rng);
        let pristine = CapacityState::new(&infra);
        let mut state = pristine.clone();
        let n = infra.host_count() as u32;
        let mut done: Vec<(HostId, HostId, Bandwidth, bool)> = Vec::new();
        for _ in 0..rng.gen_range(1usize..20) {
            let ha = HostId::from_index(rng.gen_range(0..64u32) % n);
            let hb = HostId::from_index(rng.gen_range(0..64u32) % n);
            let amount = rng.gen_range(1u64..500);
            if rng.gen_bool(0.5) {
                let bw = Bandwidth::from_mbps(amount);
                if state.reserve_flow(&infra, ha, hb, bw).is_ok() {
                    done.push((ha, hb, bw, true));
                }
            } else {
                let req = Resources::new((amount % 4) as u32 + 1, amount, amount % 100);
                if state.reserve_node(ha, req).is_ok() {
                    done.push((ha, HostId::from_index(0), Bandwidth::from_mbps(amount), false));
                    // Encode req via amount; release below rebuilds it.
                }
            }
        }
        for (ha, hb, bw, is_flow) in done.into_iter().rev() {
            if is_flow {
                state.release_flow(&infra, ha, hb, bw).unwrap();
            } else {
                let amount = bw.as_mbps();
                let req = Resources::new((amount % 4) as u32 + 1, amount, amount % 100);
                state.release_node(&infra, ha, req).unwrap();
            }
        }
        assert_eq!(state, pristine, "case {case}");
    }
}

/// An overlay's view equals the base state after committing the same
/// operations directly.
#[test]
fn overlay_commit_matches_direct_reservation() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xdc00_3000 + case);
        let infra = random_infra(&mut rng);
        let base = CapacityState::new(&infra);
        let mut overlay = OverlayState::new(&infra, &base);
        let mut direct = base.clone();
        let n = infra.host_count() as u32;
        for _ in 0..rng.gen_range(1usize..15) {
            let ha = HostId::from_index(rng.gen_range(0..64u32) % n);
            let hb = HostId::from_index(rng.gen_range(0..64u32) % n);
            let amount = rng.gen_range(1u64..500);
            if rng.gen_bool(0.5) {
                let bw = Bandwidth::from_mbps(amount);
                let o = overlay.reserve_flow(ha, hb, bw).is_ok();
                let d = direct.reserve_flow(&infra, ha, hb, bw).is_ok();
                assert_eq!(o, d, "case {case}: flow admission must agree");
            } else {
                let req = Resources::new((amount % 8) as u32, amount, amount % 200);
                let o = overlay.reserve_node(ha, req).is_ok();
                let d = direct.reserve_node(ha, req).is_ok();
                assert_eq!(o, d, "case {case}: node admission must agree");
            }
        }
        let mut committed = base.clone();
        overlay.commit(&mut committed).unwrap();
        assert_eq!(committed, direct, "case {case}");
    }
}

/// Asserts that two overlays present byte-identical availability on
/// every host and every link, and agree on activation accounting.
fn assert_overlays_identical(
    infra: &Infrastructure,
    a: &OverlayState<'_>,
    b: &OverlayState<'_>,
    context: &str,
) {
    for host in infra.hosts() {
        let id = host.id();
        assert_eq!(a.available(id), b.available(id), "{context}: host {id}");
        assert_eq!(
            a.link_available(LinkRef::HostNic(id)),
            b.link_available(LinkRef::HostNic(id)),
            "{context}: nic {id}"
        );
        assert_eq!(a.is_active(id), b.is_active(id), "{context}: active {id}");
        assert_eq!(a.added_node_count(id), b.added_node_count(id), "{context}: node count {id}");
    }
    for rack in infra.racks() {
        let link = LinkRef::TorUplink(rack.id());
        assert_eq!(a.link_available(link), b.link_available(link), "{context}: {link}");
    }
    for pod in infra.pods() {
        let link = LinkRef::PodUplink(pod.id());
        assert_eq!(a.link_available(link), b.link_available(link), "{context}: {link}");
    }
    for site in infra.sites() {
        let link = LinkRef::SiteUplink(site.id());
        assert_eq!(a.link_available(link), b.link_available(link), "{context}: {link}");
    }
    assert_eq!(a.newly_active_hosts(), b.newly_active_hosts(), "{context}");
    assert_eq!(a.added_reserved_bandwidth(), b.added_reserved_bandwidth(), "{context}");
}

/// Applying a random batch of reservations and rolling it back leaves
/// the overlay byte-identical to a fresh clone taken at the checkpoint
/// — the delta-undo path never leaks or loses state.
#[test]
fn checkpoint_rollback_matches_fresh_clone() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xdc00_4000 + case);
        let infra = random_infra(&mut rng);
        let base = CapacityState::new(&infra);
        let mut overlay = OverlayState::new(&infra, &base);
        let n = infra.host_count() as u32;
        // Random prefix that stays in place across the checkpoint.
        for _ in 0..rng.gen_range(0usize..8) {
            let ha = HostId::from_index(rng.gen_range(0..n));
            let hb = HostId::from_index(rng.gen_range(0..n));
            if rng.gen_bool(0.5) {
                let _ =
                    overlay.reserve_flow(ha, hb, Bandwidth::from_mbps(rng.gen_range(1u64..500)));
            } else {
                let amount = rng.gen_range(1u64..500);
                let _ = overlay
                    .reserve_node(ha, Resources::new((amount % 8) as u32, amount, amount % 200));
            }
        }
        // Fresh clone = the reference for what rollback must restore.
        let reference = overlay.clone();
        for _round in 0..3 {
            let mark = overlay.checkpoint();
            for _ in 0..rng.gen_range(1usize..12) {
                let ha = HostId::from_index(rng.gen_range(0..n));
                let hb = HostId::from_index(rng.gen_range(0..n));
                if rng.gen_bool(0.5) {
                    let _ = overlay.reserve_flow(
                        ha,
                        hb,
                        Bandwidth::from_mbps(rng.gen_range(1u64..800)),
                    );
                } else {
                    let amount = rng.gen_range(1u64..500);
                    let _ = overlay.reserve_node(
                        ha,
                        Resources::new((amount % 8) as u32, amount, amount % 200),
                    );
                }
            }
            overlay.rollback(mark);
            assert_overlays_identical(
                &infra,
                &overlay,
                &reference,
                &format!("case {case} after rollback"),
            );
        }
    }
}

/// Nested checkpoints unwind correctly in LIFO order.
#[test]
fn nested_checkpoints_unwind_in_order() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xdc00_5000 + case);
        let infra = random_infra(&mut rng);
        let base = CapacityState::new(&infra);
        let mut overlay = OverlayState::new(&infra, &base);
        let n = infra.host_count() as u32;
        let h = |i: u32| HostId::from_index(i % n);

        overlay.reserve_node(h(0), Resources::new(1, 128, 1)).unwrap();
        let outer_reference = overlay.clone();
        let outer = overlay.checkpoint();

        overlay.reserve_node(h(1), Resources::new(2, 256, 2)).unwrap();
        let inner_reference = overlay.clone();
        let inner = overlay.checkpoint();

        let far = h(rng.gen_range(0..n));
        let _ = overlay.reserve_flow(h(1), far, Bandwidth::from_mbps(100));
        overlay.rollback(inner);
        assert_overlays_identical(
            &infra,
            &overlay,
            &inner_reference,
            &format!("case {case} inner"),
        );

        overlay.rollback(outer);
        assert_overlays_identical(
            &infra,
            &overlay,
            &outer_reference,
            &format!("case {case} outer"),
        );
    }
}
