//! Property tests for the capacity-accounting substrate: routing
//! invariants, reserve/release round trips, and overlay/base agreement.

use ostro_datacenter::{
    CapacityState, HostId, Infrastructure, InfrastructureBuilder, OverlayState,
};
use ostro_model::{Bandwidth, Resources};
use proptest::prelude::*;

fn infra_strategy() -> impl Strategy<Value = Infrastructure> {
    (1usize..4, 1usize..4, 1usize..5).prop_map(|(sites, racks, hosts)| {
        let mut b = InfrastructureBuilder::new();
        for s in 0..sites {
            let site = b.site(format!("s{s}"), Bandwidth::from_gbps(100));
            for r in 0..racks {
                let rack = b.rack(site, format!("s{s}r{r}"), Bandwidth::from_gbps(40)).unwrap();
                for h in 0..hosts {
                    b.host(
                        rack,
                        format!("s{s}r{r}h{h}"),
                        Resources::new(16, 32_768, 1_000),
                        Bandwidth::from_gbps(10),
                    )
                    .unwrap();
                }
            }
        }
        b.build().unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Routes are symmetric and their length equals the hop cost used
    /// by the objective, for every host pair.
    #[test]
    fn routes_are_symmetric_and_cost_consistent(infra in infra_strategy()) {
        let n = infra.host_count() as u32;
        for a in 0..n {
            for b in 0..n {
                let (ha, hb) = (HostId::from_index(a), HostId::from_index(b));
                let mut r1 = infra.route(ha, hb);
                let mut r2 = infra.route(hb, ha);
                r1.sort();
                r2.sort();
                prop_assert_eq!(&r1, &r2);
                prop_assert_eq!(r1.len() as u64, infra.hop_cost(ha, hb));
                prop_assert!(infra.hop_cost(ha, hb) <= infra.max_hop_cost());
            }
        }
    }

    /// Separation is symmetric and consistent with diversity checks.
    #[test]
    fn separation_and_diversity_agree(infra in infra_strategy()) {
        use ostro_model::DiversityLevel as L;
        use ostro_datacenter::Separation as S;
        let n = infra.host_count() as u32;
        for a in 0..n {
            for b in 0..n {
                let (ha, hb) = (HostId::from_index(a), HostId::from_index(b));
                let sep = infra.separation(ha, hb);
                prop_assert_eq!(sep, infra.separation(hb, ha));
                prop_assert_eq!(infra.satisfies_diversity(ha, hb, L::Host), sep >= S::SameRack);
                prop_assert_eq!(infra.satisfies_diversity(ha, hb, L::Rack), sep >= S::SamePod);
                prop_assert_eq!(infra.satisfies_diversity(ha, hb, L::Pod), sep >= S::SameSite);
                prop_assert_eq!(
                    infra.satisfies_diversity(ha, hb, L::DataCenter),
                    sep >= S::CrossSite
                );
            }
        }
    }

    /// A random interleaving of node and flow reservations, fully
    /// released in reverse, restores the pristine state.
    #[test]
    fn reserve_release_round_trips(
        infra in infra_strategy(),
        ops in prop::collection::vec((0u32..64, 0u32..64, 1u64..500, any::<bool>()), 1..20),
    ) {
        let pristine = CapacityState::new(&infra);
        let mut state = pristine.clone();
        let n = infra.host_count() as u32;
        let mut done: Vec<(HostId, HostId, Bandwidth, bool)> = Vec::new();
        for (a, b, amount, is_flow) in ops {
            let ha = HostId::from_index(a % n);
            let hb = HostId::from_index(b % n);
            if is_flow {
                let bw = Bandwidth::from_mbps(amount);
                if state.reserve_flow(&infra, ha, hb, bw).is_ok() {
                    done.push((ha, hb, bw, true));
                }
            } else {
                let req = Resources::new((amount % 4) as u32 + 1, amount, amount % 100);
                if state.reserve_node(ha, req).is_ok() {
                    done.push((ha, HostId::from_index(0), Bandwidth::from_mbps(amount), false));
                    // Encode req via amount; release below rebuilds it.
                }
            }
        }
        for (ha, hb, bw, is_flow) in done.into_iter().rev() {
            if is_flow {
                state.release_flow(&infra, ha, hb, bw).unwrap();
            } else {
                let amount = bw.as_mbps();
                let req = Resources::new((amount % 4) as u32 + 1, amount, amount % 100);
                state.release_node(&infra, ha, req).unwrap();
            }
        }
        prop_assert_eq!(&state, &pristine);
    }

    /// An overlay's view equals the base state after committing the
    /// same operations directly.
    #[test]
    fn overlay_commit_matches_direct_reservation(
        infra in infra_strategy(),
        ops in prop::collection::vec((0u32..64, 0u32..64, 1u64..500, any::<bool>()), 1..15),
    ) {
        let base = CapacityState::new(&infra);
        let mut overlay = OverlayState::new(&infra, &base);
        let mut direct = base.clone();
        let n = infra.host_count() as u32;
        for (a, b, amount, is_flow) in ops {
            let ha = HostId::from_index(a % n);
            let hb = HostId::from_index(b % n);
            if is_flow {
                let bw = Bandwidth::from_mbps(amount);
                let o = overlay.reserve_flow(ha, hb, bw).is_ok();
                let d = direct.reserve_flow(&infra, ha, hb, bw).is_ok();
                prop_assert_eq!(o, d, "flow admission must agree");
            } else {
                let req = Resources::new((amount % 8) as u32, amount, amount % 200);
                let o = overlay.reserve_node(ha, req).is_ok();
                let d = direct.reserve_node(ha, req).is_ok();
                prop_assert_eq!(o, d, "node admission must agree");
            }
        }
        let mut committed = base.clone();
        overlay.commit(&mut committed).unwrap();
        prop_assert_eq!(&committed, &direct);
    }
}
